"""Methodology check — emulated times are stable across generator scales.

The evaluation runs a scaled-down WatDiv graph but costs it "as if" it were
WatDiv100M (``data_scale = 100M / triples``). If that emulation is sound,
the simulated per-query times must be approximately *invariant* to the
generator scale: doubling the local dataset halves the multiplier and
doubles the local work, cancelling out. This benchmark runs PRoST's query
set at three scales and checks the per-class averages stay within a factor
of ~2.5 — drift beyond that would mean the cost model has super-linear
artifacts and Figures 2/3 could not be trusted.
"""

from repro.bench import BenchmarkConfig, BenchmarkSuite
from repro.watdiv.queries import QUERY_GROUPS

SCALES = (150, 300, 600)


def test_emulated_times_are_scale_invariant(benchmark, save_artifact):
    def run_all_scales():
        averages = {}
        for scale in SCALES:
            suite = BenchmarkSuite(BenchmarkConfig(scale=scale))
            run = suite.run_system(suite.make_prost())
            averages[scale] = run.average_by_group()
        return averages

    averages = benchmark.pedantic(run_all_scales, rounds=1, iterations=1)

    lines = ["Scaling check: PRoST per-class averages (ms) across generator scales"]
    lines.append(f"{'scale':<8}" + "".join(f"{g:>10}" for g in QUERY_GROUPS))
    for scale in SCALES:
        lines.append(
            f"{scale:<8}"
            + "".join(f"{averages[scale][g] * 1000:>10,.0f}" for g in QUERY_GROUPS)
        )
    save_artifact("scaling_invariance", "\n".join(lines))

    for group in QUERY_GROUPS:
        values = [averages[scale][group] for scale in SCALES]
        assert max(values) / min(values) < 2.5, (
            f"class {group} drifts {max(values) / min(values):.1f}x across scales"
        )
