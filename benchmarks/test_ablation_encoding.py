"""Ablation — run-length/dictionary encoding of the Property Table (§3.1).

The paper's answer to the PT's "very large number of NULLs" is storing it in
Parquet, "a format that uses run-length encoding". Loading the same PT with
the encoder restricted to PLAIN shows what that buys: the NULL-heavy wide
table must blow up by a large factor, while VP tables (dense, two columns)
gain much less.
"""

from repro.core.loader import load_prost_store
from repro.engine import EngineSession, SimulatedCluster


def test_ablation_property_table_encoding(benchmark, suite, save_artifact):
    def load_both():
        # Page compression off in both arms, so the comparison isolates the
        # RLE/dictionary encodings themselves.
        encoded_session = EngineSession(SimulatedCluster(suite.cluster_config()))
        encoded = load_prost_store(
            suite.dataset.graph, session=encoded_session, compress_pages=False
        )
        plain_session = EngineSession(SimulatedCluster(suite.cluster_config()))
        plain = load_prost_store(
            suite.dataset.graph,
            session=plain_session,
            allowed_encodings=("plain",),
            compress_pages=False,
        )
        return encoded, plain

    encoded, plain = benchmark.pedantic(load_both, rounds=1, iterations=1)

    def table_bytes(store, table_name):
        return store.session.catalog.get(table_name).file_stats.total_bytes

    pt_encoded = table_bytes(encoded, "property_table")
    pt_plain = table_bytes(plain, "property_table")
    vp_encoded = sum(
        table_bytes(encoded, info.table_name) for info in encoded.vp_tables.values()
    )
    vp_plain = sum(
        table_bytes(plain, info.table_name) for info in plain.vp_tables.values()
    )

    def sparse_column_bytes(store) -> int:
        """Bytes of PT columns that are >80% NULL (the paper's concern)."""
        stats = store.session.catalog.get("property_table").file_stats
        return sum(
            chunk.encoded_bytes
            for chunk in stats.chunks
            if chunk.num_values and chunk.null_count / chunk.num_values > 0.8
        )

    sparse_encoded = sparse_column_bytes(encoded)
    sparse_plain = sparse_column_bytes(plain)

    save_artifact(
        "ablation_encoding",
        "Ablation: columnar encodings, page compression off (RLE/dict vs plain)\n"
        f"{'table':<22}{'encoded':>12}{'plain':>12}{'ratio':>8}\n"
        f"{'Property Table':<22}{pt_encoded:>12,}{pt_plain:>12,}"
        f"{pt_plain / pt_encoded:>8.2f}\n"
        f"{'PT sparse columns':<22}{sparse_encoded:>12,}{sparse_plain:>12,}"
        f"{sparse_plain / sparse_encoded:>8.2f}\n"
        f"{'VP (all tables)':<22}{vp_encoded:>12,}{vp_plain:>12,}"
        f"{vp_plain / vp_encoded:>8.2f}",
    )

    # RLE/dictionary must pay off on the whole PT...
    assert pt_encoded < pt_plain
    # ... and most of all on its mostly-NULL columns — the paper's §3.1
    # rationale for storing the PT in a run-length-encoded format.
    assert sparse_plain / sparse_encoded > 1.4
    assert sparse_plain / sparse_encoded > pt_plain / pt_encoded
