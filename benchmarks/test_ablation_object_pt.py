"""Ablation — the future-work object-keyed Property Table (paper §5).

"A promising step might be to add another Property Table where, instead of
the subjects, the rows would be created around objects. This could be
beneficial for triple patterns that share the same object." We build it and
measure exactly that workload: object-star queries (patterns sharing an
object variable), comparing join counts and simulated time with and without.
"""

from repro.sparql.parser import parse_sparql
from repro.watdiv.schema import MO, REV, SORG, WSDBM

#: Object-star queries over the WatDiv schema: patterns share ?u (a user).
OBJECT_STAR_QUERIES = [
    # Products whose artist is also some review's reviewer.
    f"SELECT ?p ?r WHERE {{ ?p <{MO}artist> ?u . ?r <{REV}reviewer> ?u }}",
    # Users who are simultaneously artist, actor, and reviewer targets.
    f"SELECT ?u WHERE {{ ?a <{MO}artist> ?u . ?b <{SORG}actor> ?u . "
    f"?c <{REV}reviewer> ?u }}",
    # Popular users: followed and friended.
    f"SELECT ?u WHERE {{ ?x <{WSDBM}follows> ?u . ?y <{WSDBM}friendOf> ?u }}",
]


def test_ablation_object_property_table(benchmark, suite, save_artifact):
    baseline = suite.make_prost()
    baseline.load(suite.dataset.graph)
    with_object_pt = suite.make_prost(use_object_property_table=True)
    with_object_pt.load(suite.dataset.graph)

    def run_both():
        results = []
        for engine in (baseline, with_object_pt):
            simulated = 0.0
            joins = 0
            for text in OBJECT_STAR_QUERIES:
                parsed = parse_sparql(text)
                tree = engine.translate(parsed)
                joins += tree.num_joins
                simulated += engine.sparql(parsed).report.simulated_sec
            results.append((simulated, joins))
        return results

    (base_sec, base_joins), (opt_sec, opt_joins) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    save_artifact(
        "ablation_object_pt",
        "Ablation: object-keyed Property Table (object-star query totals)\n"
        f"{'configuration':<22}{'simulated':>12}{'joins':>8}\n"
        f"{'subject PT only':<22}{base_sec * 1000:>10,.0f}ms{base_joins:>8}\n"
        f"{'with object PT':<22}{opt_sec * 1000:>10,.0f}ms{opt_joins:>8}",
    )

    # The object PT merges same-object patterns: strictly fewer joins.
    assert opt_joins < base_joins
    # Both configurations agree on results.
    for text in OBJECT_STAR_QUERIES:
        parsed = parse_sparql(text)
        assert baseline.sparql(parsed).rows == with_object_pt.sparql(parsed).rows
