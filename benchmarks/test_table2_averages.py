"""Table 2 — average querying time per query-shape class.

Paper (ms): Complex 9364 / 3392 / 2195322 / 61363, Snowflake 5923 / 1564 /
369016 / 24046, Linear 2419 / 527 / 49044 / 18254, Star 1195 / 884 / 69606 /
21046 for PRoST / S2RDF / Rya / SPARQLGX. The reproduced shape: Rya is the
worst average in every class (catastrophically on Complex); PRoST beats
SPARQLGX in every class; PRoST and S2RDF are the two fastest throughout.
"""

from repro.bench import render_table2
from repro.watdiv.queries import QUERY_GROUPS


def test_table2_averages(benchmark, suite, system_runs, save_artifact):
    runs = benchmark.pedantic(lambda: system_runs, rounds=1, iterations=1)
    save_artifact("table2_averages", render_table2(runs))

    averages = {name: run.average_by_group() for name, run in runs.items()}

    for group in QUERY_GROUPS:
        per_system = {name: averages[name][group] for name in runs}
        # Rya is the worst average in every class.
        assert per_system["Rya"] == max(per_system.values()), group
        # PRoST beats SPARQLGX in every class.
        assert per_system["PRoST"] < per_system["SPARQLGX"], group

    # Complex queries are Rya's disaster class: ≥2 orders of magnitude.
    assert averages["Rya"]["C"] > 100 * averages["PRoST"]["C"]

    # Class ordering within PRoST matches the paper:
    # Complex > Snowflake > Linear ≳ Star.
    prost = averages["PRoST"]
    assert prost["C"] > prost["F"] > prost["L"]
    assert prost["S"] <= prost["F"]
