"""Paper claim — loading cost vs number of distinct predicates.

§2: "[S2RDF] trades off the performances with disk space and loading time.
For datasets with a large number of properties (e.g., DBpedia), the time
required may make the loading unfeasible." And §4.4: PRoST "relies on a
faster loading phase and its performances does not depend on the particular
input graph, i.e. number of predicates."

We synthesize graphs with a fixed triple count but a growing predicate
vocabulary and measure simulated loading time: S2RDF's pairwise ExtVP sweep
must grow superlinearly in the predicate count, while PRoST grows about
linearly (one table job per predicate).
"""

import random

from repro.baselines.s2rdf import S2Rdf
from repro.core.prost import ProstEngine
from repro.engine.cluster import ClusterConfig
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Triple

PREDICATE_COUNTS = (8, 16, 32)
TRIPLES = 4000


def synthetic_graph(num_predicates: int, seed: int = 5) -> Graph:
    """A fixed-size random graph over a configurable predicate vocabulary."""
    rng = random.Random(seed)
    subjects = [IRI(f"http://syn/s{i}") for i in range(400)]
    objects = [IRI(f"http://syn/o{i}") for i in range(400)]
    predicates = [IRI(f"http://syn/p{i}") for i in range(num_predicates)]
    graph = Graph()
    while len(graph) < TRIPLES:
        graph.add(
            Triple(rng.choice(subjects), rng.choice(predicates), rng.choice(objects))
        )
    return graph


def test_loading_vs_predicate_count(benchmark, save_artifact):
    config = ClusterConfig(num_workers=9, data_scale=100_000_000 / TRIPLES)

    def measure():
        results = {}
        for count in PREDICATE_COUNTS:
            graph = synthetic_graph(count)
            prost = ProstEngine(cluster_config=config)
            s2rdf = S2Rdf(cluster_config=config, selectivity_threshold=0.75)
            results[count] = (
                prost.load(graph).simulated_sec,
                s2rdf.load(graph).simulated_sec,
            )
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "Loading time vs predicate vocabulary (fixed 4k triples, simulated s)",
        f"{'predicates':<12}{'PRoST':>10}{'S2RDF':>12}{'S2RDF/PRoST':>14}",
    ]
    for count in PREDICATE_COUNTS:
        prost_sec, s2rdf_sec = results[count]
        lines.append(
            f"{count:<12}{prost_sec:>10,.0f}{s2rdf_sec:>12,.0f}"
            f"{s2rdf_sec / prost_sec:>14.1f}"
        )
    save_artifact("predicate_scaling", "\n".join(lines))

    smallest, largest = PREDICATE_COUNTS[0], PREDICATE_COUNTS[-1]
    vocabulary_growth = largest / smallest
    prost_growth = results[largest][0] / results[smallest][0]
    s2rdf_growth = results[largest][1] / results[smallest][1]
    # PRoST: about linear in the predicate count (per-table load jobs).
    assert prost_growth < vocabulary_growth * 1.5
    # S2RDF: clearly superlinear (the P² ExtVP sweep).
    assert s2rdf_growth > prost_growth * 1.5
    # And the gap widens with the vocabulary, the paper's DBpedia warning.
    assert results[largest][1] / results[largest][0] > (
        results[smallest][1] / results[smallest][0]
    )
