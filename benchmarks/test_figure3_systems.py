"""Figure 3 — per-query time: PRoST vs S2RDF vs Rya vs SPARQLGX (log scale).

Paper shape: PRoST beats SPARQLGX on every query, mostly by around an order
of magnitude; Rya is very fast on a few highly selective queries but orders
of magnitude slower on join-heavy ones (especially Complex); S2RDF and PRoST
are in the same band, S2RDF ahead on the Complex queries, PRoST ahead on
several Star/Snowflake queries (paper: F2, S1, S3, S5).
"""

from repro.bench import render_figure3, speedup_table


def test_figure3_systems(benchmark, suite, system_runs, save_artifact):
    runs = benchmark.pedantic(lambda: system_runs, rounds=1, iterations=1)
    save_artifact("figure3_systems", render_figure3(runs))

    prost = runs["PRoST"]
    rya = runs["Rya"]

    # PRoST beats SPARQLGX on every query.
    versus_gx = speedup_table(runs, "PRoST", "SPARQLGX")
    assert all(ratio > 1.0 for ratio in versus_gx.values()), versus_gx
    # ... by a large factor on most (median speedup well above 2x).
    assert sorted(versus_gx.values())[len(versus_gx) // 2] > 2.5

    # Rya collapses on the join-heavy Complex queries: orders of magnitude.
    for name in ("C1", "C2", "C3"):
        assert rya.queries[name].simulated_sec > 50 * prost.queries[name].simulated_sec

    # Rya's *best* query is much closer to the engines (its selective-query
    # strength), within ~2 orders of magnitude of PRoST.
    best_ratio = min(
        rya.queries[name].simulated_sec / prost.queries[name].simulated_sec
        for name in rya.queries
    )
    assert best_ratio < 100

    # PRoST and S2RDF live in the same band: within ~4x of each other on
    # average, with each winning some queries.
    versus_s2 = speedup_table(runs, "PRoST", "S2RDF")
    assert any(ratio > 1.0 for ratio in versus_s2.values())
    assert any(ratio < 1.0 for ratio in versus_s2.values())
    average = sum(versus_s2.values()) / len(versus_s2)
    assert 0.25 < average < 4.0
