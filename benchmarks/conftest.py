"""Shared benchmark fixtures.

One :class:`BenchmarkSuite` is generated per session (scale configurable via
``REPRO_BENCH_SCALE``, default 400 ≈ 16k triples emulating WatDiv100M), and
every rendered table/figure is both printed and written under
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import BenchmarkConfig, BenchmarkSuite

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite() -> BenchmarkSuite:
    scale = int(os.environ.get("REPRO_BENCH_SCALE", "400"))
    return BenchmarkSuite(BenchmarkConfig(scale=scale))


@pytest.fixture(scope="session")
def system_runs(suite):
    """Figure 3's runs (all four systems), computed once and shared with the
    Table 2 benchmark."""
    return suite.run_all_systems()


@pytest.fixture(scope="session")
def save_artifact():
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")

    return save
