"""Table 1 — storage size and loading time for all four systems.

Paper: PRoST 2.1 GB / 25m32s, SPARQLGX 0.9 GB / 20m01s,
S2RDF 6.2 GB / 3h11m44s, Rya 3.1 GB / 41m32s. The shape to reproduce:
SPARQLGX smallest; PRoST roughly double SPARQLGX (it stores the data twice);
S2RDF by far the largest and roughly an order of magnitude slower to load;
Rya between PRoST and S2RDF in size.
"""

from repro.bench import render_table1


def test_table1_loading(benchmark, suite, save_artifact):
    reports = benchmark.pedantic(
        suite.run_loading_comparison, rounds=1, iterations=1
    )
    save_artifact("table1_loading", render_table1(reports, suite.data_scale))

    by_system = {report.system: report for report in reports}
    sizes = {name: report.stored_bytes for name, report in by_system.items()}
    times = {name: report.simulated_sec for name, report in by_system.items()}

    # Shape assertions from the paper.
    assert sizes["SPARQLGX"] < sizes["PRoST"], "SPARQLGX stores the least"
    assert sizes["S2RDF"] == max(sizes.values()), "S2RDF stores the most"
    assert sizes["PRoST"] <= sizes["Rya"] <= sizes["S2RDF"] or (
        sizes["PRoST"] < sizes["S2RDF"]
    ), "Rya sits between PRoST and S2RDF"
    assert times["S2RDF"] > 5 * times["PRoST"], "S2RDF loading is far slower"
    assert times["PRoST"] < 2 * times["SPARQLGX"], "PRoST loads about as fast"
