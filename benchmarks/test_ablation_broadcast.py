"""Ablation — Catalyst's broadcast-join selection on vs off (paper §3.3).

The paper credits Spark SQL's optimizer with choosing broadcast joins "if one
of the relations involved is small". Setting the broadcast threshold to zero
forces every join through a full shuffle; total shuffle volume must rise
sharply and the query-set total must slow down.
"""

import dataclasses

from repro.core import ProstEngine
from repro.sparql.parser import parse_sparql


def test_ablation_broadcast_joins(benchmark, suite, save_artifact):
    with_broadcast = suite.make_prost()
    with_broadcast.load(suite.dataset.graph)

    no_broadcast_config = dataclasses.replace(
        suite.cluster_config(), broadcast_threshold_bytes=0
    )
    without_broadcast = ProstEngine(cluster_config=no_broadcast_config)
    without_broadcast.load(suite.dataset.graph)

    def run_both():
        totals = []
        for engine in (with_broadcast, without_broadcast):
            simulated = 0.0
            shuffle_bytes = 0
            broadcasts = 0
            for query in suite.queries:
                result = engine.sparql(parse_sparql(query.text))
                simulated += result.report.simulated_sec
                metrics = result.report.engine_report.metrics
                shuffle_bytes += metrics.shuffle_bytes
                broadcasts += metrics.broadcast_count
            totals.append((simulated, shuffle_bytes, broadcasts))
        return totals

    (on_sec, on_shuffle, on_bcasts), (off_sec, off_shuffle, off_bcasts) = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )
    save_artifact(
        "ablation_broadcast",
        "Ablation: broadcast-join selection (20-query totals)\n"
        f"{'threshold':<14}{'simulated':>14}{'shuffle bytes':>16}{'broadcasts':>12}\n"
        f"{'10MB (Spark)':<14}{on_sec * 1000:>12,.0f}ms{on_shuffle:>16,}{on_bcasts:>12}\n"
        f"{'disabled':<14}{off_sec * 1000:>12,.0f}ms{off_shuffle:>16,}{off_bcasts:>12}",
    )

    # Cartesian products replicate their small side whatever the threshold,
    # so a handful of "broadcasts" remain even when hash-join broadcasting is
    # disabled; hash joins themselves must all have become shuffles.
    assert on_bcasts > off_bcasts, "the threshold must drive broadcast joins"
    assert off_shuffle > on_shuffle * 1.4, "disabling broadcast inflates shuffles"
    assert off_sec > on_sec, "broadcast joins pay off overall"
