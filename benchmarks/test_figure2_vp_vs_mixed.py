"""Figure 2 — per-query time: Vertical Partitioning only vs mixed strategy.

Paper: "the introduction of the Property Table has a strong positive impact
on performances. For almost every type of query this version outperforms
abundantly the simple Vertical Partitioning approach" — strongly on Star,
Complex, and Snowflake queries; "for some of the Linear queries the results
are very similar between the two versions".
"""

from repro.bench import render_figure2
from repro.watdiv.queries import QUERY_GROUPS


def test_figure2_vp_vs_mixed(benchmark, suite, save_artifact):
    runs = benchmark.pedantic(suite.run_strategy_comparison, rounds=1, iterations=1)
    save_artifact("figure2_vp_vs_mixed", render_figure2(runs))

    vp_only = runs["VP only"]
    mixed = runs["Mixed (VP + PT)"]
    vp_avg = vp_only.average_by_group()
    mixed_avg = mixed.average_by_group()

    # Mixed wins every group on average...
    for group in QUERY_GROUPS:
        assert mixed_avg[group] <= vp_avg[group] * 1.10, group
    # ... strongly on Complex/Snowflake/Star:
    assert mixed_avg["C"] < 0.6 * vp_avg["C"]
    assert mixed_avg["F"] < 0.8 * vp_avg["F"]
    assert mixed_avg["S"] < 0.8 * vp_avg["S"]
    # ... and Linear queries stay close (mostly VP in both versions).
    assert mixed_avg["L"] > 0.5 * vp_avg["L"]

    # Per-query: mixed never loses badly anywhere.
    for name, result in mixed.queries.items():
        assert result.simulated_sec <= 1.5 * vp_only.queries[name].simulated_sec, name
