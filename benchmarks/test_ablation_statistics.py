"""Ablation — statistics-based join ordering on vs off (paper §3.3).

The paper sorts joins by loading-time statistics so selective sub-queries
compute first. Disabling the statistics keeps the grouping but assembles the
tree in query order; total work (shuffled bytes + processed rows) should not
improve, and on queries with selective literals it should get clearly worse.
"""

from repro.sparql.parser import parse_sparql


def _total_work(engine, queries) -> tuple[float, int]:
    simulated = 0.0
    shuffled = 0
    for query in queries:
        result = engine.sparql(parse_sparql(query.text))
        simulated += result.report.simulated_sec
        shuffled += result.report.engine_report.metrics.shuffle_bytes
    return simulated, shuffled


def test_ablation_statistics_ordering(benchmark, suite, save_artifact):
    with_stats = suite.make_prost()
    with_stats.load(suite.dataset.graph)
    without_stats = suite.make_prost(use_statistics=False)
    without_stats.load(suite.dataset.graph)

    def run_both():
        return (
            _total_work(with_stats, suite.queries),
            _total_work(without_stats, suite.queries),
        )

    (stats_sec, stats_bytes), (nostats_sec, nostats_bytes) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    save_artifact(
        "ablation_statistics",
        "Ablation: statistics-based join ordering (20-query totals)\n"
        f"{'ordering':<16}{'simulated total':>18}{'shuffle bytes':>16}\n"
        f"{'statistics':<16}{stats_sec * 1000:>16,.0f}ms{stats_bytes:>16,}\n"
        f"{'query order':<16}{nostats_sec * 1000:>16,.0f}ms{nostats_bytes:>16,}",
    )

    # Statistics-guided trees never do meaningfully more total work...
    assert stats_sec <= nostats_sec * 1.05
    # ... and both configurations stay correct (spot check one query).
    sample = parse_sparql(suite.queries[0].text)
    assert with_stats.sparql(sample).rows == without_stats.sparql(sample).rows
