"""The configuration contract: every knob, generated into one document.

The knob surface has three fronts: :class:`~repro.engine.cluster.
ClusterConfig` fields (each with a declarative validation rule), the
``REPRO_*`` environment variables, and the CLI flags that map onto them.
This module is the registry tying the three together, the same way
:mod:`repro.obs.metrics` ties counters to ``docs/METRICS.md``:

- the cluster-knob table is built **live** from ``ClusterConfig`` — field
  names, defaults, and validation rules come from the dataclass itself, so
  they cannot drift; only the one-line descriptions are curated here, and
  :func:`config_rows` *refuses* a field without one (or a description for
  a field that no longer exists);
- the environment-variable table is curated in :data:`ENV_VARS`; a test
  greps the source tree for ``REPRO_*`` literals and fails on any variable
  the registry does not know;
- ``docs/CONFIGURATION.md`` is the byte-exact output of
  ``prost-repro config --markdown``, held in sync by a tier-1 test
  mirroring the metrics-docs one.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields

from ..engine.cluster import ClusterConfig, _CONFIG_FIELD_RULES
from ..errors import ValidationError

#: Validation rule name → reader-facing constraint text.
_RULE_TEXT: dict[str, str] = {
    "positive_int": "integer > 0",
    "positive": "number > 0",
    "non_negative": "number >= 0",
    "optional_positive_int": "integer > 0, or unset",
    "optional_positive": "number > 0, or unset",
    "optional_int": "integer, or unset",
    "optional_str": "non-empty string, or unset",
    "min_attempts": "integer >= 1",
    "speculation": "number > 1.0",
}

#: Curated one-line description per ``ClusterConfig`` field. Defaults and
#: validation rules are *not* duplicated here — they are read live from the
#: dataclass — so this map only drifts if a field is added or removed, and
#: :func:`config_rows` turns that drift into a hard error.
_FIELD_DOCS: dict[str, str] = {
    "num_workers": "Simulated Spark workers (the paper's cluster has 9).",
    "partitions_per_worker": "Default shuffle partitions per worker.",
    "network_bytes_per_sec": "Per-node network bandwidth (Gigabit = 125e6).",
    "scan_bytes_per_sec": "Per-node storage scan bandwidth.",
    "rows_per_sec": "Per-core row-processing rate for narrow operators.",
    "task_overhead_sec": "Scheduling overhead charged per launched task wave.",
    "broadcast_threshold_bytes": "Max estimated build-side size for a broadcast join (divided by `data_scale` before comparing).",
    "data_scale": "Emulation factor: every byte/row counter is multiplied by this when costing, so a small dataset runs \"as if\" full-size.",
    "max_task_attempts": "A task failing this many times aborts the query (Spark `spark.task.maxFailures`).",
    "speculation_multiplier": "A task this many times slower than its siblings gets a speculative duplicate.",
    "fault_seed": "When set, every query runs under a seeded chaos fault plan drawn from this seed.",
    "memory_budget_bytes": "Per-query memory budget; tripping it degrades (broadcast->shuffle) or spills instead of failing.",
    "query_timeout_sec": "Cooperative per-query deadline, polled at stage boundaries.",
    "max_concurrent_queries": "Admission-control slots; queries beyond this queue (bounded) or are shed.",
    "spill_dir": "Directory for grace-hash spill files (system temp dir when unset).",
}

#: ``ClusterConfig`` field → environment-variable fallback, when one exists.
_FIELD_ENV: dict[str, str] = {
    "memory_budget_bytes": "REPRO_MEM_BUDGET",
    "query_timeout_sec": "REPRO_QUERY_TIMEOUT",
}

#: ``ClusterConfig`` field → CLI flag, when one exists.
_FIELD_FLAGS: dict[str, str] = {
    "num_workers": "--workers",
    "memory_budget_bytes": "--memory-budget",
    "query_timeout_sec": "--timeout",
}


@dataclass(frozen=True)
class ConfigRow:
    """One documented ``ClusterConfig`` knob."""

    name: str
    default: str
    rule: str
    env: str
    flag: str
    description: str


@dataclass(frozen=True)
class EnvVar:
    """One documented ``REPRO_*`` environment variable.

    Attributes:
        name: the variable, e.g. ``REPRO_VECTORIZE``.
        scope: ``runtime`` (read by the library/CLI) or ``tests`` (read
            only by the test suite).
        default: behavior when unset, as reader-facing text.
        consumer: the module that reads it.
        description: one line of documentation.
    """

    name: str
    scope: str
    default: str
    consumer: str
    description: str


#: The environment-variable registry. A completeness test greps the source
#: tree for ``REPRO_[A-Z_]*`` literals and fails on any name missing here,
#: so a new variable cannot ship undocumented.
ENV_VARS: tuple[EnvVar, ...] = (
    EnvVar(
        "REPRO_CHAOS_SEED", "runtime", "chaos off",
        "repro.testing.differential",
        "Enables chaos mode in the fuzz harness and picks the fault-plan base seed.",
    ),
    EnvVar(
        "REPRO_FUZZ_ITERATIONS", "runtime", "20",
        "repro.testing.differential",
        "Number of fuzz seeds `prost-repro fuzz` (and pytest) run.",
    ),
    EnvVar(
        "REPRO_FUZZ_SEED", "runtime", "0",
        "repro.testing.differential",
        "Base seed of the differential fuzz harness (one graph per seed).",
    ),
    EnvVar(
        "REPRO_INTERLEAVE_SEEDS", "tests", "5",
        "repro.testing.interleave",
        "Number of seeded thread schedules the interleaving tests sweep (CI uses 10).",
    ),
    EnvVar(
        "REPRO_MEM_BUDGET", "runtime", "memory governance off",
        "repro.governor",
        "Per-query memory budget in bytes, when `ClusterConfig.memory_budget_bytes` is unset.",
    ),
    EnvVar(
        "REPRO_PLAN_CHECK", "runtime", "1 (verify every plan)",
        "repro.analysis",
        "Set to 0 to skip the static plan verifier before query execution.",
    ),
    EnvVar(
        "REPRO_QUERY_TIMEOUT", "runtime", "deadlines off",
        "repro.governor",
        "Per-query deadline in seconds, when `ClusterConfig.query_timeout_sec` is unset.",
    ),
    EnvVar(
        "REPRO_SERVE_MODE", "runtime", "0 (direct engines)",
        "repro.testing.differential",
        "Set to 1 to route PRoST engines through a `QueryServer` in the fuzz harness and regression tests.",
    ),
    EnvVar(
        "REPRO_SERVE_PLAN_CACHE", "runtime", "64 entries",
        "repro.serve.server",
        "Default plan-cache capacity of a `QueryServer` (0 disables the cache).",
    ),
    EnvVar(
        "REPRO_SERVE_RESULT_CACHE", "runtime", "256 entries",
        "repro.serve.server",
        "Default result-cache capacity of a `QueryServer` (0 disables the cache).",
    ),
    EnvVar(
        "REPRO_TERM_IDS", "runtime", "1 (dictionary IDs on)",
        "repro.rdf.dictionary",
        "Set to 0 to run on legacy lexical string cells (the strings-vs-IDs ablation).",
    ),
    EnvVar(
        "REPRO_UPDATE_GOLDENS", "tests", "0 (assert, don't rewrite)",
        "tests/obs",
        "Set to 1 to rewrite golden EXPLAIN fixtures instead of asserting against them.",
    ),
    EnvVar(
        "REPRO_VECTORIZE", "runtime", "1 (vectorized executor on)",
        "repro.vector.batch",
        "Set to 0 to run the row-at-a-time executor (the vectorization ablation).",
    ),
)


def _format_default(value: object) -> str:
    """A field default as reader-facing text (``unset`` for ``None``)."""
    if value is None:
        return "unset"
    if isinstance(value, float) and value == int(value) and abs(value) >= 1e6:
        return f"{value:g}"
    return repr(value)


def config_rows() -> list[ConfigRow]:
    """One row per ``ClusterConfig`` field, built live from the dataclass.

    Raises :class:`~repro.errors.ValidationError` when the curated
    description map and the dataclass disagree — the completeness check
    that keeps this document honest as knobs come and go.
    """
    documented = set(_FIELD_DOCS)
    declared = {spec.name for spec in fields(ClusterConfig)}
    missing = declared - documented
    stale = documented - declared
    if missing:
        raise ValidationError(
            f"ClusterConfig fields lack a configdoc description: {sorted(missing)}"
        )
    if stale:
        raise ValidationError(
            f"configdoc describes unknown ClusterConfig fields: {sorted(stale)}"
        )
    rows: list[ConfigRow] = []
    for spec in fields(ClusterConfig):
        if spec.default is MISSING:  # pragma: no cover - all knobs default
            raise ValidationError(f"ClusterConfig.{spec.name} has no default")
        rule = _CONFIG_FIELD_RULES[spec.name]
        rows.append(
            ConfigRow(
                name=spec.name,
                default=_format_default(spec.default),
                rule=_RULE_TEXT.get(rule, rule),
                env=_FIELD_ENV.get(spec.name, ""),
                flag=_FIELD_FLAGS.get(spec.name, ""),
                description=_FIELD_DOCS[spec.name],
            )
        )
    return rows


def markdown() -> str:
    """The configuration reference (→ ``docs/CONFIGURATION.md``)."""
    lines = [
        "# Configuration reference",
        "",
        "Every knob the system exposes: `ClusterConfig` fields (defaults and",
        "validation rules read live from the dataclass) and the `REPRO_*`",
        "environment variables. Generated by `prost-repro config --markdown`;",
        "a tier-1 test asserts this file is byte-identical to the generator,",
        "so the document cannot drift from the code.",
        "",
        "## Cluster knobs (`ClusterConfig`)",
        "",
        "Construct with `ClusterConfig(...)` and pass to",
        "`ProstEngine(cluster_config=...)`; every field is validated at",
        "construction by the declarative rule shown. A blank env/flag cell",
        "means the knob is configurable only in code.",
        "",
        "| Knob | Default | Validation | Env fallback | CLI flag | Description |",
        "|---|---|---|---|---|---|",
    ]
    for row in config_rows():
        env = f"`{row.env}`" if row.env else ""
        flag = f"`{row.flag}`" if row.flag else ""
        lines.append(
            f"| `{row.name}` | `{row.default}` | {row.rule} | {env} | "
            f"{flag} | {row.description} |"
        )
    lines.extend(
        [
            "",
            "## Environment variables (`REPRO_*`)",
            "",
            "Explicit arguments and CLI flags always win over the environment.",
            "Scope `tests` means only the test suite reads the variable.",
            "",
            "| Variable | Scope | When unset | Read by | Description |",
            "|---|---|---|---|---|",
        ]
    )
    for variable in ENV_VARS:
        lines.append(
            f"| `{variable.name}` | {variable.scope} | {variable.default} | "
            f"`{variable.consumer}` | {variable.description} |"
        )
    lines.append("")
    return "\n".join(lines)


def render_text() -> str:
    """A terminal rendering of the same contract (``prost-repro config``)."""
    lines = ["[ClusterConfig]"]
    for row in config_rows():
        extras = []
        if row.env:
            extras.append(f"env {row.env}")
        if row.flag:
            extras.append(f"flag {row.flag}")
        suffix = f" ({', '.join(extras)})" if extras else ""
        lines.append(
            f"  {row.name:28} default={row.default:<12} {row.rule}{suffix}"
        )
    lines.append("[environment]")
    for variable in ENV_VARS:
        lines.append(
            f"  {variable.name:28} [{variable.scope}] unset -> {variable.default}"
        )
    return "\n".join(lines)
