"""Observability: span tracing, the metrics contract, and EXPLAIN ANALYZE.

Three pieces, all zero-dependency:

- :mod:`~repro.obs.tracer` — nestable :class:`Tracer`/:class:`Span` context
  managers recording wall-clock timings and counter deltas, serializable to
  JSON; threaded through loader → translator → optimizer → physical
  executor so every traced query yields a span tree aligned with its
  physical plan;
- :mod:`~repro.obs.metrics` — the :class:`MetricsRegistry` naming and
  documenting every counter the engine, fault-injection, serving, and HDFS
  layers emit (``docs/METRICS.md`` is generated from it);
- :mod:`~repro.obs.explain` — the ASCII Join-Tree renderer behind
  ``EXPLAIN`` / ``EXPLAIN ANALYZE`` (estimated vs actual rows, chosen join
  strategies, shuffle/broadcast bytes, recovery charges).

:mod:`~repro.obs.configdoc` is the sibling contract for configuration:
``docs/CONFIGURATION.md`` is generated from it the same way.
"""

from .explain import (
    JoinEdge,
    NodeRuntime,
    align_spans,
    estimate_node_rows,
    predict_join_strategy,
    render_join_tree,
    render_span_tree,
)
from .metrics import (
    REGISTRY,
    CounterSpec,
    MetricsRegistry,
    snapshot_cost,
    snapshot_execution_metrics,
    snapshot_hdfs,
    snapshot_server_stats,
)
from .tracer import Span, Tracer

__all__ = [
    "REGISTRY",
    "CounterSpec",
    "JoinEdge",
    "MetricsRegistry",
    "NodeRuntime",
    "Span",
    "Tracer",
    "align_spans",
    "estimate_node_rows",
    "predict_join_strategy",
    "render_join_tree",
    "render_span_tree",
    "snapshot_cost",
    "snapshot_execution_metrics",
    "snapshot_hdfs",
    "snapshot_server_stats",
]
