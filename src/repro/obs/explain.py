"""EXPLAIN / EXPLAIN ANALYZE: the Join Tree, annotated and rendered.

Two halves:

- **estimation** — :func:`estimate_node_rows` scores each Join-Tree node
  with the same loading-time statistics the translator uses for priorities,
  and :func:`predict_join_strategy` pre-plays the executor's broadcast
  threshold on those estimates (plain ``EXPLAIN``);
- **alignment** — :func:`align_spans` matches the span tree a traced
  execution produced (one span per physical operator) back onto the Join
  Tree, recovering each node's *actual* row count and each join's chosen
  strategy, shuffled/broadcast bytes, and recovery charges (``EXPLAIN
  ANALYZE``). Alignment leans on two invariants: the optimizer never
  reorders joins, and :class:`~repro.core.executor.JoinTreeExecutor` folds
  children left-deep in descending priority order.

:func:`render_join_tree` draws the annotated tree in plain ASCII, one node
block per Join-Tree node with its patterns, priority, estimated vs actual
rows, and the join edge that attaches it to its parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.join_tree import JoinTree, JoinTreeNode, PtNode, VpNode
from ..sparql.algebra import Variable
from .metrics import (
    ENGINE_BROADCAST_BYTES,
    ENGINE_BYTES_SCANNED,
    ENGINE_SHUFFLE_BYTES,
)
from .tracer import Span

#: Nominal in-memory bytes per result cell, used only to pre-play the
#: broadcast threshold on estimated row counts (plain EXPLAIN).
ESTIMATED_CELL_BYTES = 24

#: Span ``op`` values that wrap exactly one operator child and may sit
#: between two joins of the fold (pushed filters, pruning projections, ...).
_UNARY_OPS = ("filter", "project", "explode", "distinct", "sort", "limit", "aggregate")


# -- estimation ---------------------------------------------------------------


def estimate_node_rows(node: JoinTreeNode, statistics) -> int:
    """Estimated result rows of one node's own sub-query (children excluded).

    Mirrors the translator's priority scoring (`repro.core.translator`):
    VP nodes start from the predicate's triple count, PT nodes from the
    star-subject estimate, and every constant divides by the matching
    distinct count.
    """
    if isinstance(node, VpNode):
        pattern = node.pattern
        if isinstance(pattern.predicate, Variable):
            estimated = float(statistics.total_triples)
        else:
            stats = statistics.for_predicate(pattern.predicate.value)
            estimated = float(stats.triple_count)
            if pattern.has_constant_object:
                estimated /= max(1, stats.distinct_objects)
            if not isinstance(pattern.subject, Variable):
                estimated /= max(1, stats.distinct_subjects)
        return max(0, round(estimated))
    predicates = {
        p.predicate.value
        for p in node.patterns
        if not isinstance(p.predicate, Variable)
    }
    if not predicates:
        return statistics.total_subjects
    estimated = statistics.star_subject_estimate(predicates)
    if estimated is None:
        estimated = min(
            statistics.for_predicate(p).distinct_subjects for p in predicates
        )
    estimated = float(estimated)
    for pattern in node.patterns:
        if pattern.has_constant_object and not isinstance(
            pattern.predicate, Variable
        ):
            stats = statistics.for_predicate(pattern.predicate.value)
            estimated /= max(1, stats.distinct_objects)
    if not any(isinstance(p.subject, Variable) for p in node.patterns):
        estimated = min(estimated, 1.0)
    return max(0, round(estimated))


def predict_join_strategy(
    left_rows: int, right_rows: int, left_width: int, right_width: int, config
) -> str:
    """Pre-play the executor's size-based choice on *estimated* sizes.

    Only ``broadcast-hash`` vs ``shuffle-hash`` is predictable from
    estimates; colocated joins depend on partitioner lineage that only the
    runtime knows, so ANALYZE may upgrade a prediction to ``colocated``.
    """
    if config is None:
        return "?"
    threshold = config.broadcast_threshold_bytes / config.data_scale
    left_bytes = left_rows * left_width * ESTIMATED_CELL_BYTES
    right_bytes = right_rows * right_width * ESTIMATED_CELL_BYTES
    if min(left_bytes, right_bytes) <= threshold:
        return "broadcast-hash"
    return "shuffle-hash"


# -- runtime alignment --------------------------------------------------------


@dataclass
class JoinEdge:
    """Runtime facts about the join attaching one node to its parent."""

    strategy: str
    on: list[str]
    build: str | None = None
    shuffle_bytes: int = 0
    broadcast_bytes: int = 0
    rows_out: int | None = None
    recovery: dict = field(default_factory=dict)


@dataclass
class NodeRuntime:
    """Runtime facts about one Join-Tree node's own pipeline."""

    rows: int | None = None
    edge: JoinEdge | None = None  # None for the root
    recovery: dict = field(default_factory=dict)


def _operator_children(span: Span) -> list[Span]:
    """Sub-spans that are physical operators (skip optimizer/phase spans)."""
    return [child for child in span.children if "op" in child.attrs]


def _own_counters(span: Span) -> dict:
    """The span's counter deltas minus everything its child operators did."""
    own = dict(span.counters)
    for child in _operator_children(span):
        for name, value in child.counters.items():
            remaining = own.get(name, 0) - value
            if remaining:
                own[name] = remaining
            else:
                own.pop(name, None)
    return own


def _recovery_counters(counters: dict) -> dict:
    """The ``faults.*`` slice of a counter-delta mapping."""
    return {
        name: value for name, value in counters.items()
        if name.startswith("faults.")
    }


def _descend_to_join(span: Span) -> Span | None:
    """Skip through unary wrapper spans down to the next join span."""
    current = span
    while True:
        op = current.attrs.get("op")
        if op in ("join", "cross"):
            return current
        if op not in _UNARY_OPS:
            return None
        operators = _operator_children(current)
        if len(operators) != 1:
            return None
        current = operators[0]


def align_spans(tree: JoinTree, root_span: Span) -> dict[int, NodeRuntime] | None:
    """Map a traced physical execution back onto the Join Tree.

    ``root_span`` is the top physical-operator span of the executed plan
    (query modifiers included — they are skipped as unary wrappers).
    Returns ``{id(node): NodeRuntime}``, or ``None`` when the span tree does
    not have the expected left-deep shape (e.g. OPTIONAL/UNION queries).
    """
    runtime: dict[int, NodeRuntime] = {}
    if _align_node(tree.root, root_span, runtime):
        return runtime
    return None


def _align_node(node: JoinTreeNode, span: Span, runtime: dict[int, NodeRuntime]) -> bool:
    """Recursively unwind the left-deep join fold for one node's subtree."""
    # Children are joined in descending priority; the *last* joined child is
    # the outermost Join span, so unwind in reverse.
    order = sorted(node.children, key=lambda n: -n.priority)
    current: Span | None = span
    for child in reversed(order):
        current = _descend_to_join(current) if current is not None else None
        if current is None:
            return False
        operators = _operator_children(current)
        if len(operators) != 2:
            return False
        left_span, right_span = operators
        own = _own_counters(current)
        edge = JoinEdge(
            strategy=current.attrs.get("strategy", current.attrs["op"]),
            on=list(current.attrs.get("on", ())),
            build=current.attrs.get("build"),
            shuffle_bytes=own.get(ENGINE_SHUFFLE_BYTES, 0),
            broadcast_bytes=own.get(ENGINE_BROADCAST_BYTES, 0),
            rows_out=current.attrs.get("rows_out"),
            recovery=_recovery_counters(own),
        )
        if not _align_node(child, right_span, runtime):
            return False
        runtime[id(child)].edge = edge
        current = left_span
    if current is None:
        return False
    runtime[id(node)] = NodeRuntime(
        rows=current.attrs.get("rows_out"),
        recovery=_recovery_counters(current.counters)
        if not node.children
        else {},
    )
    return True


# -- rendering ----------------------------------------------------------------


def render_span_tree(span: Span, indent: int = 0) -> str:
    """Indented one-line-per-span rendering of a traced physical plan.

    Shows each operator's detail line, output cardinality, and non-zero
    counter deltas — the engine-level half of EXPLAIN ANALYZE (the Join-Tree
    half is :func:`render_join_tree`).
    """
    lines: list[str] = []
    _render_span(span, lines, indent)
    return "\n".join(lines)


def _render_span(span: Span, lines: list[str], indent: int) -> None:
    """Append one span line (and its subtree) to ``lines``."""
    pad = " " * indent
    head = span.attrs.get("detail", span.name)
    line = f"{pad}{head}"
    if "strategy" in span.attrs:
        line += f" [{span.attrs['strategy']}]"
    if "degraded" in span.attrs:
        line += f" [{span.attrs['degraded']}]"
    if "spill_partitions" in span.attrs:
        line += f" [spill: {span.attrs['spill_partitions']} partitions]"
    if "rows_out" in span.attrs:
        line += f"  rows={span.attrs['rows_out']}"
    deltas = []
    for name in (ENGINE_SHUFFLE_BYTES, ENGINE_BROADCAST_BYTES, ENGINE_BYTES_SCANNED):
        value = span.counters.get(name, 0)
        own = value - sum(child.counters.get(name, 0) for child in span.children)
        if own:
            deltas.append(f"{name.split('.', 1)[1]}={_format_bytes(own)}")
    recovery = _recovery_counters(_own_counters(span))
    if recovery:
        deltas.append(f"recovery: {_format_recovery(recovery)}")
    if deltas:
        line += "  (" + "  ".join(deltas) + ")"
    lines.append(line)
    for child in span.children:
        _render_span(child, lines, indent + 2)


def _format_bytes(count: int) -> str:
    """Humanize a byte count (``832 B``, ``1.2 KB``, ``3.4 MB``)."""
    if count < 1024:
        return f"{count} B"
    if count < 1024 * 1024:
        return f"{count / 1024:.1f} KB"
    return f"{count / (1024 * 1024):.1f} MB"


def _format_recovery(recovery: dict) -> str:
    """Compact ``name=value`` rendering of non-zero recovery deltas."""
    parts = []
    for name, value in recovery.items():
        short = name.split(".", 1)[1]
        if isinstance(value, float):
            parts.append(f"{short}={value:.2f}")
        else:
            parts.append(f"{short}={value}")
    return " ".join(parts)


def render_join_tree(
    tree: JoinTree,
    statistics,
    config=None,
    runtime: dict[int, NodeRuntime] | None = None,
) -> str:
    """Draw the (optionally runtime-annotated) Join Tree as ASCII art.

    Each node block shows its kind, priority, estimated rows, and patterns;
    with ``runtime`` (EXPLAIN ANALYZE) nodes gain actual rows and join edges
    gain the executed strategy, shuffled/broadcast bytes, and recovery
    charges. Without it, join edges carry the statistics-predicted strategy
    marked ``(est)``.
    """
    lines: list[str] = []
    _render_node(tree.root, statistics, config, runtime, lines, indent=0)
    return "\n".join(lines)


def _node_width(node: JoinTreeNode) -> int:
    """Number of variable columns the node's sub-query outputs."""
    return max(1, len(node.variables))


def _render_node(
    node: JoinTreeNode,
    statistics,
    config,
    runtime: dict[int, NodeRuntime] | None,
    lines: list[str],
    indent: int,
) -> int:
    """Append one node block (and its children) to ``lines``.

    Returns the estimated rows flowing *out* of the node's whole subtree,
    which the parent uses to predict its next join strategy.
    """
    pad = " " * indent
    est = estimate_node_rows(node, statistics)
    info = runtime.get(id(node)) if runtime is not None else None

    head = f"{pad}{node.label()}  priority={node.priority:.3f}  est={est} rows"
    if info is not None and info.rows is not None:
        head += f"  act={info.rows} rows"
    if info is not None and info.recovery:
        head += f"  [recovery: {_format_recovery(info.recovery)}]"
    lines.append(head)
    for pattern in node.patterns:
        lines.append(f"{pad} |  {pattern}")

    # Fold the children exactly as the executor will: descending priority,
    # accumulating the estimated left-side cardinality.
    accumulated_est = est
    accumulated_width = _node_width(node)
    order = sorted(node.children, key=lambda n: -n.priority)
    for child in order:
        child_est = estimate_node_rows(child, statistics)
        child_info = runtime.get(id(child)) if runtime is not None else None
        child_edge = child_info.edge if child_info is not None else None
        shared = sorted(
            {v.name for v in node.variables} & {v.name for v in child.variables}
        )
        if child_edge is not None:
            strategy = child_edge.strategy
            on = child_edge.on or shared
            join_line = f"{pad} +- join on {on}: {strategy}"
            if child_edge.build:
                join_line += f" (build={child_edge.build})"
            if child_edge.broadcast_bytes:
                join_line += f"  broadcast={_format_bytes(child_edge.broadcast_bytes)}"
            if child_edge.shuffle_bytes:
                join_line += f"  shuffle={_format_bytes(child_edge.shuffle_bytes)}"
            if child_edge.rows_out is not None:
                join_line += f"  out={child_edge.rows_out} rows"
            if child_edge.recovery:
                join_line += f"  [recovery: {_format_recovery(child_edge.recovery)}]"
        else:
            strategy = (
                predict_join_strategy(
                    accumulated_est,
                    child_est,
                    accumulated_width,
                    _node_width(child),
                    config,
                )
                if shared
                else "cartesian"
            )
            on = shared
            join_line = f"{pad} +- join on {on}: {strategy} (est)"
        lines.append(join_line)
        subtree_est = _render_node(
            child, statistics, config, runtime, lines, indent + 4
        )
        accumulated_est = max(accumulated_est, subtree_est)
        accumulated_width += _node_width(child)
    return accumulated_est
