"""Zero-dependency span tracing.

A :class:`Tracer` records a tree of :class:`Span` objects — one per traced
operation — with wall-clock timings, free-form attributes, and *counter
deltas* (how much each :mod:`repro.obs.metrics` counter grew while the span
was open). Spans nest through a context-manager stack, so the layers of one
query (load → translate → optimize → each physical operator) compose into a
single tree aligned with the physical plan, serializable to JSON with
:meth:`Tracer.to_dict` / :meth:`Tracer.write_json`.

The tracer is pure bookkeeping: no threads, no globals, no I/O until asked.
An untraced run pays nothing — every producer takes ``tracer=None`` and
skips all recording when no tracer is attached.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One traced operation: a name, attributes, children, and timings.

    Attributes:
        name: operator or phase name (e.g. ``Join``, ``translate``).
        attrs: free-form details (``op``, ``strategy``, ``rows_out``, ...).
        counters: registry-named counter deltas accumulated while the span
            was open (only non-zero deltas are kept).
        children: sub-spans, in start order.
        started_sec / ended_sec: ``time.perf_counter`` timestamps.
    """

    name: str
    attrs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    started_sec: float = 0.0
    ended_sec: float = 0.0

    @property
    def duration_sec(self) -> float:
        """Wall-clock seconds the span was open."""
        return max(0.0, self.ended_sec - self.started_sec)

    def set(self, key: str, value) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def record_counters(self, before: dict, after: dict) -> None:
        """Store the non-zero deltas between two counter snapshots."""
        for name, value in after.items():
            delta = value - before.get(name, 0)
            if delta:
                self.counters[name] = self.counters.get(name, 0) + delta

    def walk(self):
        """Yield this span and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """The first span (preorder) with the given name, or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """JSON-ready representation of the subtree."""
        payload: dict = {
            "name": self.name,
            "duration_ms": round(self.duration_sec * 1000, 3),
        }
        if self.attrs:
            payload["attrs"] = _jsonable(self.attrs)
        if self.counters:
            payload["counters"] = _jsonable(self.counters)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload


class Tracer:
    """Collects a forest of spans through a context-manager stack.

    Usage::

        tracer = Tracer()
        with tracer.span("execute", query="C3") as span:
            with tracer.span("Scan"):
                ...
            span.set("rows_out", 42)
        tracer.write_json("trace.json")
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, /, **attrs):
        """Open a child span of the current span (or a new root)."""
        span = Span(name=name, attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        span.started_sec = time.perf_counter()
        try:
            yield span
        finally:
            span.ended_sec = time.perf_counter()
            self._stack.pop()

    def event(self, name: str, /, **attrs) -> Span:
        """Record an instantaneous (zero-duration) span."""
        now = time.perf_counter()
        span = Span(name=name, attrs=dict(attrs), started_sec=now, ended_sec=now)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def to_dict(self) -> dict:
        """The whole trace as one JSON-ready dictionary."""
        return {"spans": [span.to_dict() for span in self.roots]}

    def to_json(self, indent: int = 2) -> str:
        """The whole trace serialized as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write_json(self, path: str, indent: int = 2) -> None:
        """Write the trace to ``path`` as JSON (with a trailing newline)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=indent))
            handle.write("\n")


def _jsonable(mapping: dict) -> dict:
    """Coerce attribute values into JSON-serializable shapes."""
    out = {}
    for key, value in mapping.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [
                item if isinstance(item, (str, int, float, bool)) or item is None
                else str(item)
                for item in value
            ]
        else:
            out[key] = str(value)
    return out
