"""Column-vector batch abstraction for the vectorized data plane.

See :mod:`repro.vector.batch` for the format and the ``REPRO_VECTORIZE``
ablation switch; the vectorized physical operators that consume these
batches live in :mod:`repro.engine.vectorized`.
"""

from .batch import (
    ColumnBatch,
    batch_bytes,
    estimate_batch_bytes,
    pack_ints,
    row_bytes_vector,
    set_vectorize_enabled,
    vectorize_enabled,
    vectorized,
)

__all__ = [
    "ColumnBatch",
    "batch_bytes",
    "estimate_batch_bytes",
    "pack_ints",
    "row_bytes_vector",
    "set_vectorize_enabled",
    "vectorize_enabled",
    "vectorized",
]
