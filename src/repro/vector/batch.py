"""The column-batch abstraction: fixed layout, selection vectors, null masks.

A :class:`ColumnBatch` is the vectorized executor's unit of data: a tuple of
parallel cell vectors (Python lists, or ``array('q')`` for packed integer
columns out of the columnar reader), a physical row count, and an optional
**selection vector** — an ordered sequence of live row indices. Filters
evaluate to selection vectors instead of copying rows; projections subset
the column tuple without touching a single cell; only operators that truly
need contiguous data (hash-join gathers, DISTINCT, the emission boundary)
materialize the selection.

Rows exist only at the edges: :meth:`ColumnBatch.from_rows` transposes
tuple rows in (via C-speed ``zip``), and :meth:`ColumnBatch.rows`
transposes back out — the *late materialization* boundary where dictionary
term IDs finally decode to terms (see ``core/encoding.py``).

Null handling is positional: a NULL cell is ``None`` in its vector (exactly
as in row tuples), and :meth:`ColumnBatch.null_mask` derives the per-column
mask over live rows when an operator wants it explicitly (OPTIONAL's left
joins produce runs of ``None`` in the right-side columns).

The ablation switch mirrors ``rdf/dictionary.py``:
:func:`set_vectorize_enabled` flips the engine between column batches and
the legacy row-tuple operators; ``REPRO_VECTORIZE=0`` does the same from
the environment.
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Sequence
from contextlib import contextmanager

from ..rdf.dictionary import TERM_ID_BASE, default_dictionary

__all__ = [
    "ColumnBatch",
    "batch_bytes",
    "estimate_batch_bytes",
    "pack_ints",
    "row_bytes_vector",
    "set_vectorize_enabled",
    "vectorize_enabled",
    "vectorized",
]

#: Bounds of a signed 64-bit ``array('q')`` slot.
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class ColumnBatch:
    """One partition of columnar data: parallel cell vectors plus selection.

    Attributes:
        columns: one sequence per schema column, each ``length`` cells long.
            Cells use the same values as row tuples (term-ID ints, strings,
            ``None`` for NULL, lists for multi-valued Property Table cells),
            so a transpose round-trip is byte-identical.
        length: physical row count of every column vector.
        sel: ordered live row indices (``list`` or ``range``), or ``None``
            when every physical row is live. Operators downstream must read
            rows through the selection; :meth:`compact` materializes it.
        bytes_cache: memo dict shared by every selection view over the
            *same* ``columns`` tuple (filters, shuffled partitions,
            semi-join outputs). Holds the per-physical-row byte-cost
            vector (:func:`row_bytes_vector`) so size estimation prices a
            filtered view by summing cached per-row costs instead of
            re-walking every cell. Views over a different column subset
            must NOT share it — per-row costs depend on the columns.
    """

    __slots__ = ("columns", "length", "sel", "bytes_cache")

    def __init__(
        self,
        columns: tuple[Sequence, ...],
        length: int,
        sel: Sequence[int] | None = None,
        bytes_cache: dict | None = None,
    ):
        self.columns = columns
        self.length = length
        self.sel = sel
        self.bytes_cache = {} if bytes_cache is None else bytes_cache

    @classmethod
    def from_rows(cls, width: int, rows: Sequence[tuple]) -> "ColumnBatch":
        """Transpose row tuples into a batch (``zip`` runs at C speed)."""
        if not rows:
            return cls(tuple([] for _ in range(width)), 0)
        return cls(tuple(zip(*rows)), len(rows))

    @property
    def num_rows(self) -> int:
        """Live rows (the selection's length when one is present)."""
        if self.sel is None:
            return self.length
        return len(self.sel)

    def live(self) -> Sequence[int]:
        """The live row indices, as a sequence (``range`` when unselected)."""
        if self.sel is None:
            return range(self.length)
        return self.sel

    def compact(self) -> "ColumnBatch":
        """Materialize the selection into fresh contiguous columns."""
        sel = self.sel
        if sel is None:
            return self
        columns = tuple([column[i] for i in sel] for column in self.columns)
        return ColumnBatch(columns, len(sel))

    def rows(self) -> list[tuple]:
        """Materialize live rows as tuples (the late-materialization edge)."""
        if not self.columns:
            return [()] * self.num_rows
        if self.sel is None:
            return list(zip(*self.columns))
        gathered = [[column[i] for i in self.sel] for column in self.columns]
        return list(zip(*gathered))

    def null_mask(self, column_index: int) -> list[bool]:
        """Per-live-row NULL mask of one column (True = cell is NULL)."""
        column = self.columns[column_index]
        return [column[i] is None for i in self.live()]


def pack_ints(values: list) -> "array | list":
    """Pack an all-int, NULL-free vector into ``array('q')``.

    The columnar reader calls this per decoded chunk: dictionary term IDs
    and COUNT outputs are plain ints well inside the signed-64 range, so an
    ID column stores as 8 machine bytes per cell instead of a boxed
    ``int`` object. Vectors with NULLs, strings, or lists pass through
    unchanged — ``array`` has no null slot.
    """
    for value in values:
        if type(value) is not int or not (_INT64_MIN <= value <= _INT64_MAX):
            return values
    return array("q", values)


def estimate_batch_bytes(columns: tuple[Sequence, ...], live: Sequence[int]) -> int:
    """Columnar twin of ``engine.data.estimate_row_bytes``, summed per batch.

    Charges the exact same per-cell arithmetic (term IDs at their *decoded*
    serialization length, 8 bytes of framing per row), so broadcast-vs-
    shuffle decisions and the cost model are byte-identical between the
    vectorized and row paths — a unit test holds the two accountings equal.
    """
    lengths = default_dictionary().decoded_lengths
    base = TERM_ID_BASE
    total = 8 * len(live)
    for column in columns:
        for i in live:
            value = column[i]
            if type(value) is int:
                total += lengths[value - base] + 4 if value >= base else 8
            elif value is None:
                total += 1
            elif isinstance(value, str):
                total += len(value) + 4
            elif isinstance(value, (list, tuple)):
                total += 4
                for element in value:
                    if type(element) is int and element >= base:
                        total += lengths[element - base] + 4
                    elif isinstance(element, str):
                        total += len(element) + 4
                    else:
                        total += 8
            else:
                total += 8
    return total


def row_bytes_vector(columns: tuple[Sequence, ...], length: int) -> list[int]:
    """Per-physical-row byte costs of a batch's columns (cacheable).

    ``row_bytes_vector(columns, length)[i]`` is exactly what
    :func:`estimate_batch_bytes` charges for row ``i`` alone, so summing a
    subset of entries prices any selection view over the same columns. The
    dictionary is append-only within a session, so the vector stays valid
    for the lifetime of the columns and lives in
    :attr:`ColumnBatch.bytes_cache`, shared by every view.
    """
    lengths = default_dictionary().decoded_lengths
    base = TERM_ID_BASE
    totals = [8] * length
    for column in columns:
        if isinstance(column, array):
            # Packed ID columns are all-int and NULL-free by construction.
            for i, value in enumerate(column):
                totals[i] += lengths[value - base] + 4 if value >= base else 8
            continue
        for i, value in enumerate(column):
            if type(value) is int:
                totals[i] += lengths[value - base] + 4 if value >= base else 8
            elif value is None:
                totals[i] += 1
            elif isinstance(value, str):
                totals[i] += len(value) + 4
            elif isinstance(value, (list, tuple)):
                extra = 4
                for element in value:
                    if type(element) is int and element >= base:
                        extra += lengths[element - base] + 4
                    elif isinstance(element, str):
                        extra += len(element) + 4
                    else:
                        extra += 8
                totals[i] += extra
            else:
                totals[i] += 8
    return totals


def batch_bytes(batch: ColumnBatch) -> int:
    """Size a batch via its cached per-row byte vector.

    Equal by construction to ``estimate_batch_bytes(batch.columns,
    batch.live())``, but the per-cell walk happens once per physical
    columns tuple: filters, shuffled partitions, and semi/anti-join outputs
    share the source's ``bytes_cache``, so re-pricing a view is one list
    index per live row. A view that arrives *without* a populated cache
    (a projection built fresh column tuples) is priced by walking only its
    live rows — building a table-length vector for a narrow selection
    would cost more than it saves.
    """
    cache = batch.bytes_cache
    vector = cache.get("row_bytes")
    sel = batch.sel
    if vector is None:
        if sel is not None and len(sel) < batch.length:
            return estimate_batch_bytes(batch.columns, sel)
        vector = row_bytes_vector(batch.columns, batch.length)
        cache["row_bytes"] = vector
    if sel is None:
        total = cache.get("total")
        if total is None:
            total = sum(vector)
            cache["total"] = total
        return total
    return sum(vector[i] for i in sel)


_vectorize_enabled = os.environ.get("REPRO_VECTORIZE", "1").strip().lower() not in (
    "0",
    "false",
    "no",
    "off",
)


def vectorize_enabled() -> bool:
    """Whether the engine executes on column batches (default) or row tuples."""
    return _vectorize_enabled


def set_vectorize_enabled(enabled: bool) -> bool:
    """Flip vectorized execution on/off; returns the previous setting."""
    global _vectorize_enabled
    previous = _vectorize_enabled
    _vectorize_enabled = bool(enabled)
    return previous


@contextmanager
def vectorized(enabled: bool):
    """Scoped :func:`set_vectorize_enabled` (tests and the bench ablation)."""
    previous = set_vectorize_enabled(enabled)
    try:
        yield
    finally:
        set_vectorize_enabled(previous)
