"""Rule-based plan optimizer (Catalyst analogue).

Implements the rewrites Spark SQL's Catalyst applies to PRoST's join trees
(paper §3.3: "The trees are not substantially changed, but Spark intervenes
in producing optimized physical plans"):

- **filter pushdown** — conjuncts sink through projections, joins, distinct,
  and explodes toward the scans;
- **column pruning** — scans read only the columns the query needs (which,
  over the columnar store, skips whole column chunks);
- **filter combining** — adjacent filters merge into one conjunction.

Join *order* is deliberately left alone: ordering is the translators' job
(statistics-based, per system), as in the paper. Join *strategy* (broadcast
vs shuffle) is picked at execution time with runtime sizes.
"""

from __future__ import annotations

from .expressions import (
    ArrayContains,
    BinaryComparison,
    BooleanOp,
    ColumnRef,
    Expression,
    LiteralValue,
    Not,
    NotNull,
    RegexMatch,
    and_all,
)
from .logical import (
    Aggregate,
    Distinct,
    Explode,
    Filter,
    InMemoryRelation,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Sort,
    TableScan,
    Union,
)


def optimize(plan: LogicalPlan) -> LogicalPlan:
    """Apply all rules and return the rewritten plan.

    The result is memoized on the (immutable) plan instance: re-executing a
    prepared plan reuses the exact same rewritten node objects, which keeps
    filter-condition identity stable — the vectorized executor memoizes
    per-batch selections by condition — and skips redundant rewriting.
    """
    cached = plan.__dict__.get("_optimized_memo")
    if cached is None:
        cached = push_down_filters(plan)
        cached = prune_columns(cached, set(cached.schema.names))
        plan.__dict__["_optimized_memo"] = cached
    return cached


# -- expression utilities -----------------------------------------------------


def split_conjuncts(expression: Expression) -> list[Expression]:
    """Break a conjunction into its parts (non-AND expressions pass through)."""
    if isinstance(expression, BooleanOp) and expression.op == "and":
        parts: list[Expression] = []
        for operand in expression.operands:
            parts.extend(split_conjuncts(operand))
        return parts
    return [expression]


def rewrite_columns(expression: Expression, mapping: dict[str, str]) -> Expression | None:
    """Rename every column reference via ``mapping``.

    Returns ``None`` when the expression references a column absent from the
    mapping (it cannot be pushed through the projection).
    """
    if isinstance(expression, ColumnRef):
        target = mapping.get(expression.name)
        return ColumnRef(target) if target is not None else None
    if isinstance(expression, LiteralValue):
        return expression
    if isinstance(expression, BinaryComparison):
        left = rewrite_columns(expression.left, mapping)
        right = rewrite_columns(expression.right, mapping)
        if left is None or right is None:
            return None
        return BinaryComparison(expression.op, left, right)
    if isinstance(expression, BooleanOp):
        operands = [rewrite_columns(op, mapping) for op in expression.operands]
        if any(op is None for op in operands):
            return None
        return BooleanOp(expression.op, tuple(operands))  # type: ignore[arg-type]
    if isinstance(expression, Not):
        inner = rewrite_columns(expression.operand, mapping)
        return Not(inner) if inner is not None else None
    if isinstance(expression, NotNull):
        inner = rewrite_columns(expression.operand, mapping)
        return NotNull(inner) if inner is not None else None
    if isinstance(expression, ArrayContains):
        operand = rewrite_columns(expression.operand, mapping)
        element = rewrite_columns(expression.element, mapping)
        if operand is None or element is None:
            return None
        return ArrayContains(operand, element)
    if isinstance(expression, RegexMatch):
        inner = rewrite_columns(expression.operand, mapping)
        return RegexMatch(inner, expression.pattern) if inner is not None else None
    return None


# -- filter pushdown -------------------------------------------------------------


def push_down_filters(plan: LogicalPlan) -> LogicalPlan:
    """Sink filter conjuncts as close to the scans as their columns allow."""
    return _push(plan, [])


def _apply_pending(plan: LogicalPlan, pending: list[Expression]) -> LogicalPlan:
    condition = and_all(pending)
    if condition is None:
        return plan
    return Filter(plan, condition)


def _push(plan: LogicalPlan, pending: list[Expression]) -> LogicalPlan:
    if isinstance(plan, Filter):
        return _push(plan.child, pending + split_conjuncts(plan.condition))

    if isinstance(plan, Project):
        if plan.is_rename_only:
            inverse = {
                out_name: expression.name  # type: ignore[union-attr]
                for out_name, expression in plan.outputs
            }
            pushed: list[Expression] = []
            kept: list[Expression] = []
            for conjunct in pending:
                rewritten = rewrite_columns(conjunct, inverse)
                if rewritten is not None:
                    pushed.append(rewritten)
                else:
                    kept.append(conjunct)
            child = _push(plan.child, pushed)
            return _apply_pending(Project(child, plan.outputs), kept)
        child = _push(plan.child, [])
        return _apply_pending(Project(child, plan.outputs), pending)

    if isinstance(plan, Join):
        left_names = set(plan.left.schema.names)
        right_names = set(plan.right.schema.names)
        to_left: list[Expression] = []
        to_right: list[Expression] = []
        kept = []
        for conjunct in pending:
            refs = conjunct.references()
            if refs <= left_names:
                to_left.append(conjunct)
            elif refs <= right_names and plan.how in ("inner", "cross"):
                to_right.append(conjunct)
            else:
                kept.append(conjunct)
        left = _push(plan.left, to_left)
        right = _push(plan.right, to_right)
        return _apply_pending(
            Join(left, right, on=plan.on, how=plan.how, hint=plan.hint), kept
        )

    if isinstance(plan, Explode):
        exploded = plan.output_name or plan.column
        pushed, kept = [], []
        for conjunct in pending:
            if exploded in conjunct.references():
                kept.append(conjunct)
            else:
                mapping = {
                    name: name for name in plan.child.schema.names if name != plan.column
                }
                rewritten = rewrite_columns(conjunct, mapping)
                if rewritten is not None:
                    pushed.append(rewritten)
                else:
                    kept.append(conjunct)
        child = _push(plan.child, pushed)
        return _apply_pending(
            Explode(child, plan.column, plan.output_name), kept
        )

    if isinstance(plan, Distinct):
        return Distinct(_push(plan.child, pending))

    if isinstance(plan, Aggregate):
        # Filters above an aggregate reference its outputs; they stay above.
        child = _push(plan.child, [])
        return _apply_pending(
            Aggregate(child, plan.keys, plan.aggregates), pending
        )

    if isinstance(plan, Union):
        inputs = tuple(_push(child, list(pending)) for child in plan.inputs)
        return Union(inputs)

    if isinstance(plan, Sort):
        return Sort(_push(plan.child, pending), plan.keys)

    if isinstance(plan, Limit):
        # Filters must NOT sink below a limit (it would change which rows
        # survive the slice); apply them here and stop.
        child = _push(plan.child, [])
        return _apply_pending(Limit(child, plan.count, plan.offset), pending)

    # Leaves: TableScan / InMemoryRelation.
    return _apply_pending(plan, pending)


# -- column pruning --------------------------------------------------------------


def prune_columns(plan: LogicalPlan, required: set[str]) -> LogicalPlan:
    """Rewrite the tree so scans read only what ``required`` transitively needs."""
    if isinstance(plan, TableScan):
        ordered = tuple(
            name for name in plan.table_schema.names if name in required
        )
        if not ordered:
            ordered = (plan.table_schema.names[0],)
        if plan.columns is not None and set(plan.columns) == set(ordered):
            return plan
        return TableScan(
            plan.table_name,
            plan.table_schema,
            columns=ordered,
            partition_columns=plan.partition_columns,
        )

    if isinstance(plan, InMemoryRelation):
        return plan

    if isinstance(plan, Filter):
        child = prune_columns(plan.child, required | plan.condition.references())
        return Filter(child, plan.condition)

    if isinstance(plan, Project):
        outputs = tuple(
            (name, expression) for name, expression in plan.outputs if name in required
        )
        if not outputs:
            outputs = plan.outputs[:1]
        child_required: set[str] = set()
        for _, expression in outputs:
            child_required |= expression.references()
        child = prune_columns(plan.child, child_required or {plan.child.schema.names[0]})
        return Project(child, outputs)

    if isinstance(plan, Join):
        keys = set(plan.on)
        left_required = (required & set(plan.left.schema.names)) | keys
        right_required = (required & set(plan.right.schema.names)) | keys
        left = prune_columns(plan.left, left_required)
        right = prune_columns(plan.right, right_required)
        return Join(left, right, on=plan.on, how=plan.how, hint=plan.hint)

    if isinstance(plan, Explode):
        exploded = plan.output_name or plan.column
        child_required = {
            plan.column if name == exploded else name for name in required
        }
        child_required.add(plan.column)
        child = prune_columns(plan.child, child_required)
        return Explode(child, plan.column, plan.output_name)

    if isinstance(plan, Distinct):
        # Pruning through DISTINCT changes its grouping: keep all columns.
        child = prune_columns(plan.child, set(plan.child.schema.names))
        return Distinct(child)

    if isinstance(plan, Aggregate):
        child_required = set(plan.keys)
        for spec in plan.aggregates:
            if spec.input_column is not None:
                child_required.add(spec.input_column)
            elif spec.op == "count_distinct":
                # COUNT(DISTINCT *) compares whole rows: keep every column.
                child_required = set(plan.child.schema.names)
                break
        child = prune_columns(
            plan.child, child_required or {plan.child.schema.names[0]}
        )
        return Aggregate(child, plan.keys, plan.aggregates)

    if isinstance(plan, Sort):
        child = prune_columns(plan.child, required | {name for name, _ in plan.keys})
        return Sort(child, plan.keys)

    if isinstance(plan, Limit):
        return Limit(prune_columns(plan.child, required), plan.count, plan.offset)

    if isinstance(plan, Union):
        inputs = tuple(prune_columns(child, set(required)) for child in plan.inputs)
        return Union(inputs)

    return plan
