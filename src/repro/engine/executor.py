"""Physical execution of logical plans over the simulated cluster.

The executor walks a (previously optimized) logical plan bottom-up, producing
:class:`PartitionedData` at every node and charging work to an
:class:`ExecutionMetrics`. Join strategy selection happens here, with the
runtime sizes in hand, mirroring Spark's adaptive behaviour:

- **colocated join** — both sides already hash-partitioned on the join keys
  with equal partition counts: zip partitions, no network traffic;
- **broadcast hash join** — the smaller side fits under the cluster's
  broadcast threshold (Catalyst's ``autoBroadcastJoinThreshold``): ship the
  small side once, keep the big side in place;
- **shuffle hash join** — otherwise: hash-repartition both sides on the keys
  and join partition-wise, paying the full shuffle.
"""

from __future__ import annotations

from operator import itemgetter

from ..errors import ExecutionError, PlanError
from ..governor.spill import grace_hash_join_partition
from .catalog import Catalog
from .cluster import ClusterConfig, ExecutionMetrics
from .expressions import ColumnRef
from .data import (
    HashPartitioner,
    PartitionedData,
    estimate_row_bytes,
    partition_evenly,
    repartition_by_key,
    stable_hash,
)
from .logical import (
    Aggregate,
    Distinct,
    Explode,
    Filter,
    InMemoryRelation,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Sort,
    TableScan,
    Union,
)


#: Machine-readable ``op`` tag per logical plan class, attached to trace
#: spans so EXPLAIN ANALYZE can align the span tree with the Join Tree.
_SPAN_OPS = {
    "TableScan": "scan",
    "InMemoryRelation": "local",
    "Filter": "filter",
    "Project": "project",
    "Join": "join",
    "Explode": "explode",
    "Distinct": "distinct",
    "Sort": "sort",
    "Limit": "limit",
    "Union": "union",
    "Aggregate": "aggregate",
}


class PhysicalExecutor:
    """Executes logical plans against a catalog under a cluster config."""

    def __init__(self, catalog: Catalog, config: ClusterConfig):
        self.catalog = catalog
        self.config = config
        self._vectorized = False

    def execute(
        self, plan: LogicalPlan, metrics: ExecutionMetrics, tracer=None
    ) -> PartitionedData:
        """Run ``plan`` and return its materialized output.

        Under ``REPRO_VECTORIZE=1`` (the default) the plan runs on the
        vectorized operators of :mod:`repro.engine.vectorized` and the
        result is a :class:`~repro.engine.vectorized.ColumnarData` — same
        dataset surface, column-batch representation, rows materialized
        only when collected. ``REPRO_VECTORIZE=0`` keeps this row path for
        ablation; both produce identical rows, partitioning, and metrics.

        With a :class:`~repro.obs.tracer.Tracer` attached, every operator
        records a span carrying its output cardinality and the deltas of
        every registry counter it charged (see :mod:`repro.obs.metrics`).
        """
        from ..vector import vectorize_enabled

        self._vectorized = vectorize_enabled()
        result = self._run(plan, metrics, tracer)
        metrics.rows_output = result.num_rows
        if self._vectorized:
            # Every output row's term decode was deferred past execution.
            metrics.rows_late_materialized += result.num_rows
        return result

    # -- dispatch -------------------------------------------------------------

    def _run(
        self, plan: LogicalPlan, metrics: ExecutionMetrics, tracer=None
    ) -> PartitionedData:
        if tracer is None:
            return self._dispatch(plan, metrics, None, None)
        # Imported lazily: the engine layer sits below obs in the module
        # graph, and untraced runs never touch it.
        from ..obs.metrics import snapshot_execution_metrics

        kind = type(plan).__name__
        op = _SPAN_OPS.get(kind, kind.lower())
        if isinstance(plan, Join) and plan.how == "cross":
            op = "cross"
        with tracer.span(kind, op=op, detail=plan._describe_line()) as span:
            before = snapshot_execution_metrics(metrics)
            events_before = len(metrics.fault_events)
            result = self._dispatch(plan, metrics, tracer, span)
            span.set("rows_out", result.num_rows)
            span.set("partitions", result.num_partitions)
            span.record_counters(before, snapshot_execution_metrics(metrics))
            if len(metrics.fault_events) > events_before:
                span.set("fault_events", list(metrics.fault_events[events_before:]))
        return result

    def _dispatch(
        self, plan: LogicalPlan, metrics: ExecutionMetrics, tracer, span
    ) -> PartitionedData:
        if self._vectorized:
            # Imported lazily to keep the row path import-free of the
            # vectorized module (and break the module cycle).
            from .vectorized import dispatch_vectorized

            return dispatch_vectorized(self, plan, metrics, tracer, span)
        if isinstance(plan, TableScan):
            return self._scan(plan, metrics)
        if isinstance(plan, InMemoryRelation):
            return self._local(plan, metrics)
        if isinstance(plan, Filter):
            return self._filter(plan, metrics, tracer)
        if isinstance(plan, Project):
            return self._project(plan, metrics, tracer)
        if isinstance(plan, Join):
            return self._join(plan, metrics, tracer, span)
        if isinstance(plan, Explode):
            return self._explode(plan, metrics, tracer)
        if isinstance(plan, Distinct):
            return self._distinct(plan, metrics, tracer)
        if isinstance(plan, Sort):
            return self._sort(plan, metrics, tracer)
        if isinstance(plan, Limit):
            return self._limit(plan, metrics, tracer)
        if isinstance(plan, Union):
            return self._union(plan, metrics, tracer)
        if isinstance(plan, Aggregate):
            return self._aggregate(plan, metrics, tracer)
        raise PlanError(f"no physical implementation for {type(plan).__name__}")

    # -- leaves ---------------------------------------------------------------

    def _scan(self, plan: TableScan, metrics: ExecutionMetrics) -> PartitionedData:
        table = self.catalog.get(plan.table_name)
        columns = plan.columns
        metrics.bytes_scanned += table.scan_bytes(columns)
        metrics.rows_scanned += table.row_count
        metrics.record_stage(
            tasks=table.data.num_partitions,
            note=f"Scan {plan.table_name} cols={list(columns) if columns else '*'}",
        )
        if columns is None:
            return table.data
        # Pruned projections are cached per table: repeated queries re-scan
        # the same column subsets, and partitions are immutable (the
        # engine-side analogue of Parquet serving materialized column
        # chunks).
        cached = table.pruned_cache.get(columns)
        if cached is not None:
            return cached
        indexes = [table.schema.index_of(name) for name in columns]
        getter = _row_getter(indexes)
        partitions = [
            [getter(row) for row in partition] for partition in table.data.partitions
        ]
        partitioner = table.data.partitioner
        if partitioner is not None and not set(partitioner.columns) <= set(columns):
            partitioner = None
        pruned = PartitionedData(
            table.schema.select(list(columns)), partitions, partitioner
        )
        table.pruned_cache[columns] = pruned
        return pruned

    def _local(self, plan: InMemoryRelation, metrics: ExecutionMetrics) -> PartitionedData:
        metrics.record_stage(tasks=1, note=f"LocalRelation {plan.label}")
        partitions = partition_evenly(list(plan.rows), self.config.default_partitions)
        return PartitionedData(plan.relation_schema, partitions)

    # -- narrow operators --------------------------------------------------------

    def _filter(
        self, plan: Filter, metrics: ExecutionMetrics, tracer=None
    ) -> PartitionedData:
        child = self._run(plan.child, metrics, tracer)
        predicate = plan.condition.bind(child.schema)
        metrics.narrow_rows_processed += child.num_rows
        metrics.record_stage(
            tasks=child.num_partitions, note=f"Filter {plan.condition.describe()}"
        )
        partitions = [[row for row in part if predicate(row)] for part in child.partitions]
        return PartitionedData(child.schema, partitions, child.partitioner)

    def _project(
        self, plan: Project, metrics: ExecutionMetrics, tracer=None
    ) -> PartitionedData:
        child = self._run(plan.child, metrics, tracer)
        metrics.narrow_rows_processed += child.num_rows
        metrics.record_stage(tasks=child.num_partitions, note=plan._describe_line())
        # Pure column shuffles (the overwhelmingly common projection) run as
        # one C-level itemgetter per row instead of N bound-lambda calls.
        if all(isinstance(expr, ColumnRef) for _, expr in plan.outputs):
            indexes = [child.schema.index_of(expr.name) for _, expr in plan.outputs]
            getter = _row_getter(indexes)
            partitions = [[getter(row) for row in part] for part in child.partitions]
        else:
            bound = [expression.bind(child.schema) for _, expression in plan.outputs]
            partitions = [
                [tuple(fn(row) for fn in bound) for row in part]
                for part in child.partitions
            ]
        partitioner = _project_partitioner(plan, child.partitioner)
        return PartitionedData(plan.schema, partitions, partitioner)

    def _explode(
        self, plan: Explode, metrics: ExecutionMetrics, tracer=None
    ) -> PartitionedData:
        child = self._run(plan.child, metrics, tracer)
        index = child.schema.index_of(plan.column)
        if metrics.governor is not None:
            metrics.governor.charge_site(metrics, child.estimated_bytes())
        metrics.narrow_rows_processed += child.num_rows
        metrics.record_stage(tasks=child.num_partitions, note=plan._describe_line())
        partitions: list[list[tuple]] = []
        after = index + 1
        for part in child.partitions:
            out: list[tuple] = []
            for row in part:
                values = row[index]
                if not values:
                    continue
                if len(values) == 1:
                    out.append(row[:index] + (values[0],) + row[after:])
                    continue
                prefix = row[:index]
                suffix = row[after:]
                for value in values:
                    out.append(prefix + (value,) + suffix)
            partitions.append(out)
        partitioner = child.partitioner
        if partitioner is not None and plan.column in partitioner.columns:
            partitioner = None
        return PartitionedData(plan.schema, partitions, partitioner)

    # -- joins ---------------------------------------------------------------------

    def _join(
        self, plan: Join, metrics: ExecutionMetrics, tracer=None, span=None
    ) -> PartitionedData:
        left = self._run(plan.left, metrics, tracer)
        right = self._run(plan.right, metrics, tracer)
        if plan.how == "cross":
            if span is not None:
                span.set("strategy", "cartesian")
            return self._cross_join(plan, left, right, metrics)
        keys = plan.on
        left_key_idx = [left.schema.index_of(k) for k in keys]
        right_key_idx = [right.schema.index_of(k) for k in keys]
        right_keep_idx = [
            i for i, column in enumerate(right.schema.columns) if column.name not in keys
        ]

        left_bytes = left.estimated_bytes()
        right_bytes = right.estimated_bytes()
        strategy = self._choose_strategy(plan, left, right, left_bytes, right_bytes, keys)
        # Degradation ladder: a broadcast build over the memory budget falls
        # back to a shuffle join; a hash build over budget runs the
        # grace-hash spill kernel. Both decisions read only contract-equal
        # byte estimates, so the vectorized path makes the same calls.
        governor = metrics.governor
        spill_fanout = 0
        if governor is not None:
            if strategy == "broadcast":
                build_bytes = (
                    right_bytes
                    if right_bytes <= left_bytes or plan.how != "inner"
                    else left_bytes
                )
                if governor.should_degrade_broadcast(metrics, build_bytes, span):
                    strategy = "shuffle"
            spill_fanout = governor.plan_join_build(metrics, right_bytes, span)
        if span is not None:
            span.set("on", list(keys))
            span.set("how", plan.how)
            span.set(
                "strategy",
                {
                    "colocated": "colocated",
                    "broadcast": "broadcast-hash",
                    "shuffle": "shuffle-hash",
                }[strategy],
            )

        # Work is charged before the stage is recorded: the fault injector
        # attributes the counter delta since the previous stage to this one.
        metrics.rows_processed += left.num_rows + right.num_rows
        if strategy == "colocated":
            metrics.colocated_joins += 1
            metrics.record_stage(
                tasks=left.num_partitions, note=f"ColocatedJoin on={list(keys)}"
            )
            left_parts, right_parts = left.partitions, right.partitions
            partitioner = left.partitioner
        elif strategy == "broadcast":
            # Only inner joins may broadcast the probe (left) side: for
            # semi/anti/left joins a left row must be matched against the
            # *whole* build side at once, so the build side must be the one
            # replicated — i.e. the right side.
            small_is_right = right_bytes <= left_bytes or plan.how != "inner"
            small_bytes = right_bytes if small_is_right else left_bytes
            if span is not None:
                span.set("build", "right" if small_is_right else "left")
            metrics.broadcast_bytes += small_bytes
            metrics.broadcast_count += 1
            metrics.record_stage(
                tasks=(left if small_is_right else right).num_partitions,
                note=f"BroadcastHashJoin on={list(keys)} build={'right' if small_is_right else 'left'}",
            )
            if small_is_right:
                left_parts = left.partitions
                right_parts = [right.all_rows()] * left.num_partitions
                partitioner = left.partitioner
            else:
                # Inner join only: replicate the small left side to every
                # right partition (each right row is matched exactly once).
                left_parts = [left.all_rows()] * right.num_partitions
                right_parts = right.partitions
                partitioner = None
        else:  # shuffle
            num_partitions = self.config.default_partitions
            partitioner = HashPartitioner(columns=keys, num_partitions=num_partitions)
            metrics.shuffle_bytes += left_bytes + right_bytes
            metrics.shuffle_rows += left.num_rows + right.num_rows
            metrics.record_stage(
                tasks=num_partitions, note=f"ShuffleHashJoin on={list(keys)}"
            )
            left_parts = repartition_by_key(left.partitions, left_key_idx, partitioner)
            right_parts = repartition_by_key(right.partitions, right_key_idx, partitioner)

        partitions = []
        for left_part, right_part in zip(left_parts, right_parts):
            if spill_fanout:
                partitions.append(
                    grace_hash_join_partition(
                        left_part,
                        right_part,
                        left_key_idx,
                        right_key_idx,
                        right_keep_idx,
                        plan.how,
                        spill_fanout,
                        governor.new_spill_store(metrics),
                    )
                )
            else:
                partitions.append(
                    _hash_join_partition(
                        left_part, right_part, left_key_idx, right_key_idx, right_keep_idx, plan.how
                    )
                )
        if plan.how in ("semi", "anti"):
            out_partitioner = left.partitioner
        else:
            out_partitioner = partitioner
            if out_partitioner is not None and out_partitioner.num_partitions != len(partitions):
                out_partitioner = None
        return PartitionedData(plan.schema, partitions, out_partitioner)

    def _cross_join(
        self,
        plan: Join,
        left: PartitionedData,
        right: PartitionedData,
        metrics: ExecutionMetrics,
    ) -> PartitionedData:
        """Cartesian product: broadcast the smaller side to every partition
        of the larger one and emit all row pairs."""
        left_bytes = left.estimated_bytes()
        right_bytes = right.estimated_bytes()
        small_is_right = right_bytes <= left_bytes
        metrics.broadcast_bytes += min(left_bytes, right_bytes)
        metrics.broadcast_count += 1
        metrics.rows_processed += left.num_rows + right.num_rows
        big = left if small_is_right else right
        small_rows = (right if small_is_right else left).all_rows()
        metrics.record_stage(tasks=big.num_partitions, note="CartesianProduct")
        partitions: list[list[tuple]] = []
        for part in big.partitions:
            out: list[tuple] = []
            for row in part:
                for other in small_rows:
                    out.append(row + other if small_is_right else other + row)
            partitions.append(out)
        return PartitionedData(plan.schema, partitions)

    def _choose_strategy(
        self,
        plan: Join,
        left: PartitionedData,
        right: PartitionedData,
        left_bytes: int,
        right_bytes: int,
        keys: tuple[str, ...],
    ) -> str:
        if plan.hint == "broadcast":
            return "broadcast"
        if (
            left.is_partitioned_on(keys)
            and right.is_partitioned_on(keys)
            and left.num_partitions == right.num_partitions
        ):
            return "colocated"
        if plan.hint == "shuffle":
            return "shuffle"
        # The threshold compares emulated sizes: local bytes × data_scale.
        threshold = self.config.broadcast_threshold_bytes / self.config.data_scale
        if plan.how != "inner":
            # Non-inner joins can only broadcast the build (right) side.
            if right_bytes <= threshold:
                return "broadcast"
            return "shuffle"
        if min(left_bytes, right_bytes) <= threshold:
            return "broadcast"
        return "shuffle"

    # -- wide operators -----------------------------------------------------------

    def _distinct(
        self, plan: Distinct, metrics: ExecutionMetrics, tracer=None
    ) -> PartitionedData:
        child = self._run(plan.child, metrics, tracer)
        if metrics.governor is not None:
            metrics.governor.charge_site(metrics, child.estimated_bytes())
        all_columns = tuple(child.schema.names)
        if child.is_partitioned_on(all_columns):
            partitions = child.partitions
            partitioner = child.partitioner
        else:
            num_partitions = self.config.default_partitions
            partitioner = HashPartitioner(columns=all_columns, num_partitions=num_partitions)
            metrics.shuffle_bytes += child.estimated_bytes()
            metrics.shuffle_rows += child.num_rows
            key_idx = list(range(len(all_columns)))
            partitions = repartition_by_key(child.partitions, key_idx, partitioner)
        metrics.rows_processed += child.num_rows
        metrics.record_stage(tasks=len(partitions), note="Distinct")
        deduped = []
        for part in partitions:
            seen: set[tuple] = set()
            out: list[tuple] = []
            for row in part:
                frozen = _freeze_row(row)
                if frozen not in seen:
                    seen.add(frozen)
                    out.append(row)
            deduped.append(out)
        return PartitionedData(child.schema, deduped, partitioner)

    def _sort(
        self, plan: Sort, metrics: ExecutionMetrics, tracer=None
    ) -> PartitionedData:
        child = self._run(plan.child, metrics, tracer)
        if metrics.governor is not None:
            metrics.governor.charge_site(metrics, child.estimated_bytes())
        rows = child.all_rows()
        metrics.rows_processed += len(rows)
        metrics.shuffle_bytes += child.estimated_bytes()  # gather to driver
        metrics.record_stage(tasks=1, note=plan._describe_line())
        for name, descending in reversed(plan.keys):
            index = child.schema.index_of(name)
            rows.sort(key=lambda row: _sort_key(row[index]), reverse=descending)
        return PartitionedData(child.schema, [rows])

    def _limit(
        self, plan: Limit, metrics: ExecutionMetrics, tracer=None
    ) -> PartitionedData:
        child = self._run(plan.child, metrics, tracer)
        rows = child.all_rows()
        metrics.record_stage(tasks=1, note=plan._describe_line())
        rows = rows[plan.offset :]
        if plan.count is not None:
            rows = rows[: plan.count]
        return PartitionedData(child.schema, [rows])

    def _aggregate(
        self, plan: Aggregate, metrics: ExecutionMetrics, tracer=None
    ) -> PartitionedData:
        """Hash aggregation with map-side partial aggregation.

        Each input partition pre-aggregates locally (Spark's partial
        aggregate), then only the per-group partial states shuffle — the
        reason COUNT-style queries are cheap even over big inputs.
        """
        child = self._run(plan.child, metrics, tracer)
        if metrics.governor is not None:
            metrics.governor.charge_site(metrics, child.estimated_bytes())
        key_idx = [child.schema.index_of(key) for key in plan.keys]
        input_idx = [
            child.schema.index_of(spec.input_column)
            if spec.input_column is not None
            else None
            for spec in plan.aggregates
        ]
        metrics.rows_processed += child.num_rows

        # Map side: one partial state per (partition, group).
        partials: list[dict[tuple, list]] = []
        for part in child.partitions:
            local: dict[tuple, list] = {}
            for row in part:
                key = tuple(row[i] for i in key_idx)
                state = local.get(key)
                if state is None:
                    state = [
                        set() if spec.op == "count_distinct" else 0
                        for spec in plan.aggregates
                    ]
                    local[key] = state
                for position, (spec, column) in enumerate(zip(plan.aggregates, input_idx)):
                    value = row[column] if column is not None else row
                    if column is not None and value is None:
                        continue
                    if spec.op == "count_distinct":
                        state[position].add(_freeze_value(value))
                    else:
                        state[position] += 1
            partials.append(local)

        partial_groups = sum(len(local) for local in partials)
        metrics.shuffle_rows += partial_groups
        metrics.shuffle_bytes += partial_groups * (16 + 8 * len(plan.aggregates))
        metrics.record_stage(tasks=child.num_partitions, note=plan._describe_line())

        # Reduce side: merge partial states by group key.
        merged: dict[tuple, list] = {}
        for local in partials:
            for key, state in local.items():
                target = merged.get(key)
                if target is None:
                    merged[key] = state
                    continue
                for position, spec in enumerate(plan.aggregates):
                    if spec.op == "count_distinct":
                        target[position] |= state[position]
                    else:
                        target[position] += state[position]
        if not plan.keys and not merged:
            merged[()] = [
                set() if spec.op == "count_distinct" else 0
                for spec in plan.aggregates
            ]

        rows = []
        for key in sorted(merged, key=_group_sort_key):
            state = merged[key]
            counts = tuple(
                len(value) if isinstance(value, set) else value for value in state
            )
            rows.append(key + counts)
        num_partitions = min(self.config.default_partitions, max(1, len(rows)))
        partitioner = (
            HashPartitioner(columns=plan.keys, num_partitions=num_partitions)
            if plan.keys
            else None
        )
        partitions = (
            repartition_by_key([rows], list(range(len(plan.keys))), partitioner)
            if partitioner
            else [rows]
        )
        return PartitionedData(plan.schema, partitions, partitioner)

    def _union(
        self, plan: Union, metrics: ExecutionMetrics, tracer=None
    ) -> PartitionedData:
        results = [self._run(child, metrics, tracer) for child in plan.inputs]
        metrics.record_stage(tasks=len(results), note="Union")
        partitions: list[list[tuple]] = []
        for result in results:
            partitions.extend(result.partitions)
        return PartitionedData(plan.schema, partitions)


def _row_getter(indexes: list[int]):
    """A row → tuple-of-cells projection (C-level for two or more columns;
    ``itemgetter`` with one index returns a bare cell, so wrap that case)."""
    if not indexes:
        return lambda row: ()
    if len(indexes) == 1:
        index = indexes[0]
        return lambda row: (row[index],)
    return itemgetter(*indexes)


def _hash_join_partition(
    left_rows: list[tuple],
    right_rows: list[tuple],
    left_key_idx: list[int],
    right_key_idx: list[int],
    right_keep_idx: list[int],
    how: str,
) -> list[tuple]:
    """Classic build/probe hash join of one partition pair."""
    build: dict = {}
    output: list[tuple] = []
    if len(left_key_idx) == 1:
        # Single-key joins (every SPARQL variable join) build and probe on
        # the bare cell: no per-row key tuples, and dictionary term IDs
        # hash as native ints. NULL never enters ``build``, so a NULL probe
        # key falls out of ``build.get`` with the right SQL semantics.
        li, ri = left_key_idx[0], right_key_idx[0]
        build_get = build.get
        for row in right_rows:
            key = row[ri]
            if key is not None:
                bucket = build_get(key)
                if bucket is None:
                    build[key] = [row]
                else:
                    bucket.append(row)
        keep = _row_getter(right_keep_idx)
        if how == "inner":
            for row in left_rows:
                matches = build.get(row[li])
                if matches:
                    for match in matches:
                        output.append(row + keep(match))
            return output
        if how == "left":
            nulls = (None,) * len(right_keep_idx)
            for row in left_rows:
                matches = build.get(row[li])
                if matches:
                    for match in matches:
                        output.append(row + keep(match))
                else:
                    output.append(row + nulls)
            return output
        if how == "semi":
            return [row for row in left_rows if build.get(row[li])]
        if how == "anti":
            return [row for row in left_rows if not build.get(row[li])]
        raise ExecutionError(f"unsupported join type {how!r}")
    for row in right_rows:
        key = tuple(row[i] for i in right_key_idx)
        if any(part is None for part in key):
            continue  # SQL semantics: NULL keys never match
        build.setdefault(key, []).append(row)
    for row in left_rows:
        key = tuple(row[i] for i in left_key_idx)
        if any(part is None for part in key):
            matches = None
        else:
            matches = build.get(key)
        if how == "inner":
            if matches:
                for match in matches:
                    output.append(row + tuple(match[i] for i in right_keep_idx))
        elif how == "left":
            if matches:
                for match in matches:
                    output.append(row + tuple(match[i] for i in right_keep_idx))
            else:
                output.append(row + tuple(None for _ in right_keep_idx))
        elif how == "semi":
            if matches:
                output.append(row)
        elif how == "anti":
            if not matches:
                output.append(row)
        else:
            raise ExecutionError(f"unsupported join type {how!r}")
    return output


def _project_partitioner(plan: Project, partitioner: HashPartitioner | None):
    """Survive the partitioner through a rename-only projection."""
    if partitioner is None:
        return None
    from .expressions import ColumnRef

    rename: dict[str, str] = {}
    for out_name, expression in plan.outputs:
        if isinstance(expression, ColumnRef):
            rename.setdefault(expression.name, out_name)
    try:
        new_columns = tuple(rename[name] for name in partitioner.columns)
    except KeyError:
        return None
    return HashPartitioner(columns=new_columns, num_partitions=partitioner.num_partitions)


def _freeze_row(row: tuple) -> tuple:
    return tuple(tuple(v) if isinstance(v, list) else v for v in row)


def _freeze_value(value):
    """Hashable stand-in for a cell value or a whole row (for DISTINCT)."""
    if isinstance(value, tuple):
        return _freeze_row(value)
    if isinstance(value, list):
        return tuple(value)
    return value


def _group_sort_key(key: tuple):
    """Deterministic ordering of group keys (NULLs first)."""
    return tuple((value is None, "" if value is None else repr(value)) for value in key)


def _sort_key(value):
    """NULLs first, then by type bucket, then value."""
    if value is None:
        return (0, "", 0)
    if isinstance(value, bool):
        return (1, "", int(value))
    if isinstance(value, (int, float)):
        return (2, "", float(value))
    if isinstance(value, str):
        return (3, value, 0)
    return (4, repr(value), 0)


__all__ = ["PhysicalExecutor", "stable_hash", "estimate_row_bytes"]
