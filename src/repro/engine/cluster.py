"""Simulated cluster and cost model.

The paper's evaluation ran on 10 machines (1 master + 9 Spark workers) with
Gigabit Ethernet, 6-core Xeons, and 21 GB executors. The decisive property of
that hardware for the *relative* results is that **network shuffle dominates**:
joins "need large portions of the data to be shuffled across the network"
(paper §3.3). This module reproduces that regime with a deterministic cost
model: every executed physical operator records work (bytes scanned, rows
processed, bytes shuffled/broadcast, tasks launched) into
:class:`ExecutionMetrics`, and :class:`ClusterConfig` converts the totals
into a simulated wall-clock time.

The defaults are calibrated to the paper's cluster:

- 9 workers, 125 MB/s network per node (Gigabit), 150 MB/s effective disk
  scan rate per node, 5M rows/s per-core processing, 50 ms per stage of task
  scheduling overhead (Spark's well-known constant).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from ..errors import ValidationError


def _validate_config_field(name: str, rule: str, value) -> None:
    """Apply one declarative validation rule to one config field."""
    real = (int, float)
    if rule == "positive_int":
        if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
            raise ValidationError(f"{name} must be positive (an integer)")
    elif rule == "positive":
        if isinstance(value, bool) or not isinstance(value, real) or value <= 0:
            raise ValidationError(f"{name} must be positive")
    elif rule == "non_negative":
        if isinstance(value, bool) or not isinstance(value, real) or value < 0:
            raise ValidationError(f"{name} must be non-negative")
    elif rule == "optional_positive_int":
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int) or value <= 0
        ):
            raise ValidationError(f"{name} must be positive (an integer) or None")
    elif rule == "optional_positive":
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, real) or value <= 0
        ):
            raise ValidationError(f"{name} must be positive or None")
    elif rule == "optional_int":
        if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
            raise ValidationError(f"{name} must be an integer or None")
    elif rule == "optional_str":
        if value is not None and (not isinstance(value, str) or not value):
            raise ValidationError(f"{name} must be a non-empty string or None")
    elif rule == "min_attempts":
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise ValidationError(f"{name} must be at least 1")
    elif rule == "speculation":
        if isinstance(value, bool) or not isinstance(value, real) or value <= 1.0:
            raise ValidationError(f"{name} must exceed 1.0")
    else:  # pragma: no cover - guarded by the completeness check below
        raise ValidationError(f"unknown validation rule {rule!r} for {name}")


#: Declarative validation rules, one per :class:`ClusterConfig` field.
#: ``__post_init__`` iterates the dataclass fields and *refuses* any field
#: without a rule here, so a newly added knob can never silently skip
#: validation (the failure mode of the old inline allowlist).
_CONFIG_FIELD_RULES: dict[str, str] = {
    "num_workers": "positive_int",
    "partitions_per_worker": "positive_int",
    "network_bytes_per_sec": "positive",
    "scan_bytes_per_sec": "positive",
    "rows_per_sec": "positive",
    "task_overhead_sec": "non_negative",
    "broadcast_threshold_bytes": "positive",
    "data_scale": "positive",
    "max_task_attempts": "min_attempts",
    "speculation_multiplier": "speculation",
    "fault_seed": "optional_int",
    "memory_budget_bytes": "optional_positive_int",
    "query_timeout_sec": "optional_positive",
    "max_concurrent_queries": "positive_int",
    "spill_dir": "optional_str",
}


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated cluster.

    Attributes:
        num_workers: Spark-style worker count (the paper uses 9).
        partitions_per_worker: default shuffle partitions per worker.
        network_bytes_per_sec: per-node network bandwidth (Gigabit ≈ 125 MB/s).
        scan_bytes_per_sec: per-node storage scan bandwidth.
        rows_per_sec: per-node row-processing rate for narrow operators.
        task_overhead_sec: scheduling overhead charged per launched task wave.
        broadcast_threshold_bytes: max estimated size for a broadcast join
            (Spark's ``autoBroadcastJoinThreshold`` default is 10 MB). The
            threshold applies at *emulated* scale: it is divided by
            ``data_scale`` before comparing against in-memory sizes.
        data_scale: emulation factor for running a scaled-down dataset "as
            if" it were the paper's full-size one. Every byte/row counter is
            multiplied by this factor when costing (stage overheads are not:
            Spark's scheduling constant does not grow with data). Benchmarks
            set ``data_scale = 100e6 / len(graph)`` to emulate WatDiv100M.
        max_task_attempts: a task that fails this many times aborts the
            query (Spark's ``spark.task.maxFailures``, default 4).
        speculation_multiplier: a task running at least this many times
            slower than its siblings gets a speculative duplicate
            (``spark.speculation.multiplier``, default 1.5).
        fault_seed: when set, every query runs under a seeded chaos
            :class:`~repro.engine.faults.FaultPlan` drawn from this seed.
        memory_budget_bytes: per-query memory budget charged at every
            memory-hungry operator site; tripping it triggers graceful
            degradation (broadcast→shuffle, grace-hash spill) instead of
            failure. ``None`` (with ``REPRO_MEM_BUDGET`` unset) disables
            memory governance entirely.
        query_timeout_sec: cooperative per-query deadline, polled at stage
            boundaries and in the fault injector's retry loop. ``None``
            (with ``REPRO_QUERY_TIMEOUT`` unset) disables deadlines.
        max_concurrent_queries: admission-control slots; queries beyond
            this queue (bounded) or are shed.
        spill_dir: directory grace-hash spill files go under (the system
            temp directory when ``None``); per-query subdirectories are
            always removed when the query finishes, however it finishes.
    """

    num_workers: int = 9
    partitions_per_worker: int = 2
    network_bytes_per_sec: float = 125e6
    scan_bytes_per_sec: float = 150e6
    rows_per_sec: float = 5e6
    task_overhead_sec: float = 0.05
    broadcast_threshold_bytes: int = 10 * 1024 * 1024
    data_scale: float = 1.0
    max_task_attempts: int = 4
    speculation_multiplier: float = 1.5
    fault_seed: int | None = None
    memory_budget_bytes: int | None = None
    query_timeout_sec: float | None = None
    max_concurrent_queries: int = 8
    spill_dir: str | None = None

    def __post_init__(self) -> None:
        for spec in fields(self):
            rule = _CONFIG_FIELD_RULES.get(spec.name)
            if rule is None:
                raise ValidationError(
                    f"no validation rule declared for ClusterConfig.{spec.name}; "
                    "add one to _CONFIG_FIELD_RULES"
                )
            _validate_config_field(spec.name, rule, getattr(self, spec.name))

    @property
    def default_partitions(self) -> int:
        """Partition count for shuffles and loaded tables."""
        return self.num_workers * self.partitions_per_worker


#: How many chained narrow operators whole-stage codegen typically fuses
#: into one pass over the rows.
NARROW_FUSION_FACTOR = 3.0


@dataclass
class ExecutionMetrics:
    """Work counters accumulated while executing one physical plan.

    All counters are cluster-wide totals; the cost model divides the
    parallelizable ones by the worker count.

    The main work counters describe the *fault-free* data plane and are
    byte-identical whether or not faults are injected. Recovery work —
    retried tasks, lineage-recomputed shuffle partitions, speculative
    duplicates, backoff waits — lives in the dedicated ``recovery_*`` /
    retry counters, charged by the attached
    :class:`~repro.engine.faults.FaultInjector` when one is present.
    """

    bytes_scanned: int = 0
    rows_scanned: int = 0
    rows_processed: int = 0
    narrow_rows_processed: int = 0
    shuffle_bytes: int = 0
    shuffle_rows: int = 0
    broadcast_bytes: int = 0
    broadcast_count: int = 0
    colocated_joins: int = 0
    stages: int = 0
    tasks: int = 0
    rows_output: int = 0
    vector_batches: int = 0
    rows_late_materialized: int = 0
    operator_log: list[str] = field(default_factory=list)
    # -- fault tolerance -------------------------------------------------------
    task_retries: int = 0
    fetch_retries: int = 0
    speculative_tasks: int = 0
    recomputed_tasks: int = 0
    worker_losses: int = 0
    retry_waves: int = 0
    retry_backoff_sec: float = 0.0
    straggler_extra_sec: float = 0.0
    recovery_bytes_scanned: int = 0
    recovery_rows_processed: int = 0
    recovery_shuffle_bytes: int = 0
    fault_events: list[str] = field(default_factory=list)
    fault_injector: object | None = field(default=None, repr=False, compare=False)
    # -- resource governance ---------------------------------------------------
    spills: int = 0
    spill_bytes: int = 0
    spill_partitions: int = 0
    degraded_joins: int = 0
    budget_trips: int = 0
    memory_pressure_events: int = 0
    peak_memory_bytes: int = 0
    governor: object | None = field(default=None, repr=False, compare=False)

    def record_stage(self, tasks: int, note: str = "") -> None:
        """Register one stage (a wave of parallel tasks).

        Stage boundaries are also the governor's cooperative poll points:
        an expired deadline or a requested cancellation raises here,
        *before* fault injection, with this metrics object attached so
        EXPLAIN ANALYZE can render the partial work.
        """
        self.stages += 1
        self.tasks += tasks
        if note:
            self.operator_log.append(note)
        if self.governor is not None:
            self.governor.on_stage(self)
        if self.fault_injector is not None:
            self.fault_injector.on_stage(self, tasks, note)

    @property
    def recovered_faults(self) -> int:
        """Total fault events the query survived."""
        return (
            self.task_retries
            + self.fetch_retries
            + self.speculative_tasks
            + self.worker_losses
        )

    def merge(self, other: "ExecutionMetrics") -> None:
        """Fold another metrics object into this one (for multi-plan runs)."""
        self.bytes_scanned += other.bytes_scanned
        self.rows_scanned += other.rows_scanned
        self.rows_processed += other.rows_processed
        self.narrow_rows_processed += other.narrow_rows_processed
        self.shuffle_bytes += other.shuffle_bytes
        self.shuffle_rows += other.shuffle_rows
        self.broadcast_bytes += other.broadcast_bytes
        self.broadcast_count += other.broadcast_count
        self.colocated_joins += other.colocated_joins
        self.stages += other.stages
        self.tasks += other.tasks
        self.rows_output += other.rows_output
        self.vector_batches += other.vector_batches
        self.rows_late_materialized += other.rows_late_materialized
        self.operator_log.extend(other.operator_log)
        self.task_retries += other.task_retries
        self.fetch_retries += other.fetch_retries
        self.speculative_tasks += other.speculative_tasks
        self.recomputed_tasks += other.recomputed_tasks
        self.worker_losses += other.worker_losses
        self.retry_waves += other.retry_waves
        self.retry_backoff_sec += other.retry_backoff_sec
        self.straggler_extra_sec += other.straggler_extra_sec
        self.recovery_bytes_scanned += other.recovery_bytes_scanned
        self.recovery_rows_processed += other.recovery_rows_processed
        self.recovery_shuffle_bytes += other.recovery_shuffle_bytes
        self.fault_events.extend(other.fault_events)
        self.spills += other.spills
        self.spill_bytes += other.spill_bytes
        self.spill_partitions += other.spill_partitions
        self.degraded_joins += other.degraded_joins
        self.budget_trips += other.budget_trips
        self.memory_pressure_events += other.memory_pressure_events
        # High-water mark, not a total: the largest single charge seen.
        self.peak_memory_bytes = max(self.peak_memory_bytes, other.peak_memory_bytes)


@dataclass(frozen=True)
class CostBreakdown:
    """Simulated time split by resource, in seconds."""

    scan_sec: float
    cpu_sec: float
    shuffle_sec: float
    broadcast_sec: float
    overhead_sec: float
    recovery_sec: float = 0.0
    spill_sec: float = 0.0

    @property
    def total_sec(self) -> float:
        """Simulated end-to-end seconds (sum of all components)."""
        return (
            self.scan_sec
            + self.cpu_sec
            + self.shuffle_sec
            + self.broadcast_sec
            + self.overhead_sec
            + self.recovery_sec
            + self.spill_sec
        )


def estimate_cost(metrics: ExecutionMetrics, config: ClusterConfig) -> CostBreakdown:
    """Convert work counters into simulated seconds under the cluster config.

    Scan, CPU, and shuffle work parallelize across workers; broadcast pays the
    full replication cost (the driver pushes ``size × workers`` bytes, but the
    pushes themselves overlap, so we charge size/bandwidth plus a per-
    broadcast latency); stage overhead is serial.
    """
    workers = config.num_workers
    scale = config.data_scale
    scan_sec = scale * metrics.bytes_scanned / (config.scan_bytes_per_sec * workers)
    # Narrow operators (filter/project/explode) fuse into single passes
    # under whole-stage codegen; charge them at a fused rate.
    cpu_sec = scale * (
        metrics.rows_processed
        + metrics.narrow_rows_processed / NARROW_FUSION_FACTOR
    ) / (config.rows_per_sec * workers)
    # A shuffled byte crosses the network twice (map-side write, reduce-side
    # read); aggregate bandwidth is per-node bandwidth × workers.
    shuffle_sec = (
        scale * 2 * metrics.shuffle_bytes / (config.network_bytes_per_sec * workers)
    )
    broadcast_sec = (
        scale * metrics.broadcast_bytes / config.network_bytes_per_sec
        + 0.01 * metrics.broadcast_count
    )
    overhead_sec = metrics.stages * config.task_overhead_sec
    # Recovery work re-runs at the same rates as first-run work (recovered
    # rows are charged unfused — re-execution restarts the pipeline), plus
    # the serial waits: retry backoff, straggler drag, and one scheduling
    # overhead per extra task wave.
    recovery_sec = (
        scale * metrics.recovery_bytes_scanned / (config.scan_bytes_per_sec * workers)
        + scale * metrics.recovery_rows_processed / (config.rows_per_sec * workers)
        + scale
        * 2
        * metrics.recovery_shuffle_bytes
        / (config.network_bytes_per_sec * workers)
        + metrics.retry_backoff_sec
        + metrics.straggler_extra_sec
        + metrics.retry_waves * config.task_overhead_sec
    )
    # Grace-hash spills write every spilled byte to local disk and read it
    # back once, charged at the storage scan rate (spills are local I/O,
    # not network traffic).
    spill_sec = scale * 2 * metrics.spill_bytes / (config.scan_bytes_per_sec * workers)
    return CostBreakdown(
        scan_sec=scan_sec,
        cpu_sec=cpu_sec,
        shuffle_sec=shuffle_sec,
        broadcast_sec=broadcast_sec,
        overhead_sec=overhead_sec,
        recovery_sec=recovery_sec,
        spill_sec=spill_sec,
    )


class SimulatedCluster:
    """Execution context: a config plus cumulative session-level metrics.

    Args:
        config: cluster description; ``config.fault_seed`` implies a seeded
            chaos fault plan when ``fault_plan`` is not given explicitly.
        fault_plan: inject this :class:`~repro.engine.faults.FaultPlan` into
            every query executed on the cluster (a fresh
            :class:`~repro.engine.faults.FaultInjector` per query: lost
            workers are replaced between queries, as Spark replaces dead
            executors).
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        fault_plan: "object | None" = None,
    ):
        self.config = config or ClusterConfig()
        if fault_plan is None and self.config.fault_seed is not None:
            from .faults import FaultPlan

            fault_plan = FaultPlan.from_rates(self.config.fault_seed)
        self.fault_plan = fault_plan
        self.session_metrics = ExecutionMetrics()

    def new_query_metrics(self) -> ExecutionMetrics:
        """A fresh metrics object for one query execution.

        Attaches the fault injector (when a fault plan is in force) and
        the governor context (when a memory budget or deadline is in
        force — via config fields or the ``REPRO_MEM_BUDGET`` /
        ``REPRO_QUERY_TIMEOUT`` environment fallbacks). With neither, the
        metrics carry no extra state and execution pays no overhead.
        """
        metrics = ExecutionMetrics()
        if self.fault_plan is not None and not self.fault_plan.is_empty:
            from .faults import FaultInjector

            metrics.fault_injector = FaultInjector(self.fault_plan, self.config)
        from ..governor import governor_context_for

        metrics.governor = governor_context_for(self.config)
        return metrics

    def finish_query(self, metrics: ExecutionMetrics) -> CostBreakdown:
        """Fold query metrics into the session totals and cost them."""
        self.session_metrics.merge(metrics)
        return estimate_cost(metrics, self.config)

    def __repr__(self) -> str:
        return f"SimulatedCluster({self.config.num_workers} workers)"
