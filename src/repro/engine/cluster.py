"""Simulated cluster and cost model.

The paper's evaluation ran on 10 machines (1 master + 9 Spark workers) with
Gigabit Ethernet, 6-core Xeons, and 21 GB executors. The decisive property of
that hardware for the *relative* results is that **network shuffle dominates**:
joins "need large portions of the data to be shuffled across the network"
(paper §3.3). This module reproduces that regime with a deterministic cost
model: every executed physical operator records work (bytes scanned, rows
processed, bytes shuffled/broadcast, tasks launched) into
:class:`ExecutionMetrics`, and :class:`ClusterConfig` converts the totals
into a simulated wall-clock time.

The defaults are calibrated to the paper's cluster:

- 9 workers, 125 MB/s network per node (Gigabit), 150 MB/s effective disk
  scan rate per node, 5M rows/s per-core processing, 50 ms per stage of task
  scheduling overhead (Spark's well-known constant).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated cluster.

    Attributes:
        num_workers: Spark-style worker count (the paper uses 9).
        partitions_per_worker: default shuffle partitions per worker.
        network_bytes_per_sec: per-node network bandwidth (Gigabit ≈ 125 MB/s).
        scan_bytes_per_sec: per-node storage scan bandwidth.
        rows_per_sec: per-node row-processing rate for narrow operators.
        task_overhead_sec: scheduling overhead charged per launched task wave.
        broadcast_threshold_bytes: max estimated size for a broadcast join
            (Spark's ``autoBroadcastJoinThreshold`` default is 10 MB). The
            threshold applies at *emulated* scale: it is divided by
            ``data_scale`` before comparing against in-memory sizes.
        data_scale: emulation factor for running a scaled-down dataset "as
            if" it were the paper's full-size one. Every byte/row counter is
            multiplied by this factor when costing (stage overheads are not:
            Spark's scheduling constant does not grow with data). Benchmarks
            set ``data_scale = 100e6 / len(graph)`` to emulate WatDiv100M.
    """

    num_workers: int = 9
    partitions_per_worker: int = 2
    network_bytes_per_sec: float = 125e6
    scan_bytes_per_sec: float = 150e6
    rows_per_sec: float = 5e6
    task_overhead_sec: float = 0.05
    broadcast_threshold_bytes: int = 10 * 1024 * 1024
    data_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.partitions_per_worker <= 0:
            raise ValueError("partitions_per_worker must be positive")

    @property
    def default_partitions(self) -> int:
        return self.num_workers * self.partitions_per_worker


#: How many chained narrow operators whole-stage codegen typically fuses
#: into one pass over the rows.
NARROW_FUSION_FACTOR = 3.0


@dataclass
class ExecutionMetrics:
    """Work counters accumulated while executing one physical plan.

    All counters are cluster-wide totals; the cost model divides the
    parallelizable ones by the worker count.
    """

    bytes_scanned: int = 0
    rows_scanned: int = 0
    rows_processed: int = 0
    narrow_rows_processed: int = 0
    shuffle_bytes: int = 0
    shuffle_rows: int = 0
    broadcast_bytes: int = 0
    broadcast_count: int = 0
    colocated_joins: int = 0
    stages: int = 0
    tasks: int = 0
    rows_output: int = 0
    operator_log: list[str] = field(default_factory=list)

    def record_stage(self, tasks: int, note: str = "") -> None:
        """Register one stage (a wave of parallel tasks)."""
        self.stages += 1
        self.tasks += tasks
        if note:
            self.operator_log.append(note)

    def merge(self, other: "ExecutionMetrics") -> None:
        """Fold another metrics object into this one (for multi-plan runs)."""
        self.bytes_scanned += other.bytes_scanned
        self.rows_scanned += other.rows_scanned
        self.rows_processed += other.rows_processed
        self.narrow_rows_processed += other.narrow_rows_processed
        self.shuffle_bytes += other.shuffle_bytes
        self.shuffle_rows += other.shuffle_rows
        self.broadcast_bytes += other.broadcast_bytes
        self.broadcast_count += other.broadcast_count
        self.colocated_joins += other.colocated_joins
        self.stages += other.stages
        self.tasks += other.tasks
        self.rows_output += other.rows_output
        self.operator_log.extend(other.operator_log)


@dataclass(frozen=True)
class CostBreakdown:
    """Simulated time split by resource, in seconds."""

    scan_sec: float
    cpu_sec: float
    shuffle_sec: float
    broadcast_sec: float
    overhead_sec: float

    @property
    def total_sec(self) -> float:
        return (
            self.scan_sec
            + self.cpu_sec
            + self.shuffle_sec
            + self.broadcast_sec
            + self.overhead_sec
        )


def estimate_cost(metrics: ExecutionMetrics, config: ClusterConfig) -> CostBreakdown:
    """Convert work counters into simulated seconds under the cluster config.

    Scan, CPU, and shuffle work parallelize across workers; broadcast pays the
    full replication cost (the driver pushes ``size × workers`` bytes, but the
    pushes themselves overlap, so we charge size/bandwidth plus a per-
    broadcast latency); stage overhead is serial.
    """
    workers = config.num_workers
    scale = config.data_scale
    scan_sec = scale * metrics.bytes_scanned / (config.scan_bytes_per_sec * workers)
    # Narrow operators (filter/project/explode) fuse into single passes
    # under whole-stage codegen; charge them at a fused rate.
    cpu_sec = scale * (
        metrics.rows_processed
        + metrics.narrow_rows_processed / NARROW_FUSION_FACTOR
    ) / (config.rows_per_sec * workers)
    # A shuffled byte crosses the network twice (map-side write, reduce-side
    # read); aggregate bandwidth is per-node bandwidth × workers.
    shuffle_sec = (
        scale * 2 * metrics.shuffle_bytes / (config.network_bytes_per_sec * workers)
    )
    broadcast_sec = (
        scale * metrics.broadcast_bytes / config.network_bytes_per_sec
        + 0.01 * metrics.broadcast_count
    )
    overhead_sec = metrics.stages * config.task_overhead_sec
    return CostBreakdown(
        scan_sec=scan_sec,
        cpu_sec=cpu_sec,
        shuffle_sec=shuffle_sec,
        broadcast_sec=broadcast_sec,
        overhead_sec=overhead_sec,
    )


class SimulatedCluster:
    """Execution context: a config plus cumulative session-level metrics."""

    def __init__(self, config: ClusterConfig | None = None):
        self.config = config or ClusterConfig()
        self.session_metrics = ExecutionMetrics()

    def new_query_metrics(self) -> ExecutionMetrics:
        """A fresh metrics object for one query execution."""
        return ExecutionMetrics()

    def finish_query(self, metrics: ExecutionMetrics) -> CostBreakdown:
        """Fold query metrics into the session totals and cost them."""
        self.session_metrics.merge(metrics)
        return estimate_cost(metrics, self.config)

    def __repr__(self) -> str:
        return f"SimulatedCluster({self.config.num_workers} workers)"
