"""Column expressions for filters and projections.

A small Catalyst-style expression tree. Expressions are built with
:func:`col` and :func:`lit` plus operators::

    (col("age") > lit(18)) & col("email").is_not_null()

Before execution an expression is *bound* to a schema, producing a plain
Python closure over row tuples — the moral equivalent of Spark's whole-stage
codegen, and the reason per-row evaluation stays cheap.

Under vectorized execution (:mod:`repro.vector`) the same tree compiles
via :meth:`Expression.bind_vector` into a **selection-vector kernel**:
``fn(columns, sel) -> new_sel``, taking the batch's column vectors and the
ordered live row indices and returning the surviving indices in order. Hot
nodes (equality against a constant, column-to-column equality, IS NOT
NULL, AND chains) override it with single list comprehensions over one
column; everything else falls back to the row closure evaluated through a
:class:`_ColumnsRow` cursor, so the two paths cannot disagree.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..columnar.schema import TableSchema
from ..errors import PlanError

#: A bound expression: evaluates one row tuple to a value.
BoundExpression = Callable[[tuple], object]

#: A vector-bound predicate: ``(columns, sel) -> new_sel``, filtering the
#: ordered live indices ``sel`` against the batch's column vectors.
VectorPredicate = Callable[[tuple, Sequence[int]], list]


class _ColumnsRow:
    """A movable row cursor over column vectors.

    Quacks like a row tuple for :meth:`Expression.bind` closures —
    ``row[j]`` reads column ``j`` at the cursor's current row — so any
    expression without a dedicated vector kernel evaluates its existing
    row closure against batches without materializing tuples.
    """

    __slots__ = ("columns", "index")

    def __init__(self, columns: tuple):
        self.columns = columns
        self.index = 0

    def __getitem__(self, position: int):
        return self.columns[position][self.index]


class Expression:
    """Base class for all expression nodes."""

    def references(self) -> set[str]:
        """Column names this expression reads."""
        raise NotImplementedError

    def bind(self, schema: TableSchema) -> BoundExpression:
        """Compile to a closure over row tuples laid out as ``schema``."""
        raise NotImplementedError

    def bind_vector(self, schema: TableSchema) -> VectorPredicate:
        """Compile to a selection-vector kernel over column batches.

        The default adapts the row closure through a :class:`_ColumnsRow`
        cursor; subclasses with columnar fast paths override it.
        """
        predicate = self.bind(schema)

        def evaluate(columns: tuple, sel: Sequence[int]) -> list:
            row = _ColumnsRow(columns)
            out = []
            append = out.append
            for i in sel:
                row.index = i
                if predicate(row):
                    append(i)
            return out

        return evaluate

    def describe(self) -> str:
        """Human-readable form for plan explanations."""
        raise NotImplementedError

    # -- operator sugar ------------------------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        return BinaryComparison("=", self, _as_expression(other))

    def __ne__(self, other):  # type: ignore[override]
        return BinaryComparison("!=", self, _as_expression(other))

    def __lt__(self, other):
        return BinaryComparison("<", self, _as_expression(other))

    def __le__(self, other):
        return BinaryComparison("<=", self, _as_expression(other))

    def __gt__(self, other):
        return BinaryComparison(">", self, _as_expression(other))

    def __ge__(self, other):
        return BinaryComparison(">=", self, _as_expression(other))

    def __and__(self, other):
        return BooleanOp("and", (self, _as_expression(other)))

    def __or__(self, other):
        return BooleanOp("or", (self, _as_expression(other)))

    def __invert__(self):
        return Not(self)

    def __hash__(self):
        return id(self)

    def is_not_null(self) -> "Expression":
        """SQL ``IS NOT NULL``."""
        return NotNull(self)

    def is_null(self) -> "Expression":
        """SQL ``IS NULL``."""
        return Not(NotNull(self))

    def contains_element(self, value) -> "Expression":
        """``array_contains`` analogue for list-typed columns."""
        return ArrayContains(self, _as_expression(value))

    def rlike(self, pattern: str) -> "Expression":
        """Regex match (Spark's ``rlike``)."""
        return RegexMatch(self, pattern)


def _as_expression(value) -> Expression:
    if isinstance(value, Expression):
        return value
    return LiteralValue(value)


@dataclass(eq=False)
class ColumnRef(Expression):
    """A reference to a named column."""

    name: str

    def references(self) -> set[str]:
        return {self.name}

    def bind(self, schema: TableSchema) -> BoundExpression:
        index = schema.index_of(self.name)
        return lambda row: row[index]

    def bind_vector(self, schema: TableSchema) -> VectorPredicate:
        index = schema.index_of(self.name)

        def evaluate(columns: tuple, sel: Sequence[int]) -> list:
            column = columns[index]
            return [i for i in sel if column[i]]

        return evaluate

    def describe(self) -> str:
        return self.name


@dataclass(eq=False)
class LiteralValue(Expression):
    """A constant."""

    value: object

    def references(self) -> set[str]:
        return set()

    def bind(self, schema: TableSchema) -> BoundExpression:
        value = self.value
        return lambda row: value

    def bind_vector(self, schema: TableSchema) -> VectorPredicate:
        if self.value:
            return lambda columns, sel: list(sel)
        return lambda columns, sel: []

    def describe(self) -> str:
        return repr(self.value)


_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(eq=False)
class BinaryComparison(Expression):
    """A comparison; NULL operands make the result false (SQL-like)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise PlanError(f"unknown comparison operator {self.op!r}")

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def bind(self, schema: TableSchema) -> BoundExpression:
        # Equality is the hot filter (every pattern constant compiles to
        # one); `==` between cells never raises, and a non-NULL constant
        # can never equal a NULL cell, so the guards fold away.
        if self.op == "=":
            if isinstance(self.left, ColumnRef) and isinstance(self.right, LiteralValue):
                if self.right.value is not None:
                    index = schema.index_of(self.left.name)
                    value = self.right.value
                    return lambda row: row[index] == value
            elif isinstance(self.left, ColumnRef) and isinstance(self.right, ColumnRef):
                i = schema.index_of(self.left.name)
                j = schema.index_of(self.right.name)
                return lambda row: row[i] == row[j] and row[i] is not None

        compare = _COMPARATORS[self.op]
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        def evaluate(row: tuple):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return False
            try:
                return compare(a, b)
            except TypeError:
                return False

        return evaluate

    def bind_vector(self, schema: TableSchema) -> VectorPredicate:
        # The same two hot shapes as `bind`, as single comprehensions over
        # one or two column vectors — the vectorized engine's tightest loop.
        if self.op == "=":
            if isinstance(self.left, ColumnRef) and isinstance(self.right, LiteralValue):
                if self.right.value is not None:
                    index = schema.index_of(self.left.name)
                    value = self.right.value

                    def equals_literal(columns: tuple, sel: Sequence[int]) -> list:
                        column = columns[index]
                        return [i for i in sel if column[i] == value]

                    return equals_literal
            elif isinstance(self.left, ColumnRef) and isinstance(self.right, ColumnRef):
                left_index = schema.index_of(self.left.name)
                right_index = schema.index_of(self.right.name)

                def equals_column(columns: tuple, sel: Sequence[int]) -> list:
                    a = columns[left_index]
                    b = columns[right_index]
                    return [i for i in sel if a[i] == b[i] and a[i] is not None]

                return equals_column
        return super().bind_vector(schema)

    def describe(self) -> str:
        return f"({self.left.describe()} {self.op} {self.right.describe()})"


@dataclass(eq=False)
class BooleanOp(Expression):
    """N-ary AND / OR."""

    op: str
    operands: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise PlanError(f"unknown boolean operator {self.op!r}")
        if not self.operands:
            raise PlanError("boolean operator needs at least one operand")

    def references(self) -> set[str]:
        refs: set[str] = set()
        for operand in self.operands:
            refs |= operand.references()
        return refs

    def bind(self, schema: TableSchema) -> BoundExpression:
        bound = [operand.bind(schema) for operand in self.operands]
        # Conjunctions of two or three predicates are the common compiled
        # filter shape; `and`/`or` short-circuit without the generator
        # machinery that `all()`/`any()` would spin up per row.
        if len(bound) == 1:
            return bound[0]
        if self.op == "and":
            if len(bound) == 2:
                first, second = bound
                return lambda row: first(row) and second(row)
            if len(bound) == 3:
                first, second, third = bound
                return lambda row: first(row) and second(row) and third(row)

            def conjunction(row):
                for fn in bound:
                    if not fn(row):
                        return False
                return True

            return conjunction
        if len(bound) == 2:
            first, second = bound
            return lambda row: first(row) or second(row)
        if len(bound) == 3:
            first, second, third = bound
            return lambda row: first(row) or second(row) or third(row)

        def disjunction(row):
            for fn in bound:
                if fn(row):
                    return True
            return False

        return disjunction

    def bind_vector(self, schema: TableSchema) -> VectorPredicate:
        bound = [operand.bind_vector(schema) for operand in self.operands]
        if len(bound) == 1:
            return bound[0]
        if self.op == "and":
            # Conjunction narrows the selection operand by operand — each
            # later predicate only touches rows the earlier ones kept.
            def conjunction(columns: tuple, sel: Sequence[int]) -> list:
                out = sel
                for fn in bound:
                    out = fn(columns, out)
                    if not out:
                        return out if isinstance(out, list) else []
                return out if isinstance(out, list) else list(out)

            return conjunction

        def disjunction(columns: tuple, sel: Sequence[int]) -> list:
            # Union of the operands' selections, re-emitted in `sel` order
            # (set membership only — never set iteration — so row order
            # stays deterministic).
            matched: set = set()
            for fn in bound:
                matched.update(fn(columns, sel))
            return [i for i in sel if i in matched]

        return disjunction

    def describe(self) -> str:
        joiner = f" {self.op.upper()} "
        return "(" + joiner.join(op.describe() for op in self.operands) + ")"


@dataclass(eq=False)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def references(self) -> set[str]:
        return self.operand.references()

    def bind(self, schema: TableSchema) -> BoundExpression:
        inner = self.operand.bind(schema)
        return lambda row: not inner(row)

    def bind_vector(self, schema: TableSchema) -> VectorPredicate:
        inner = self.operand.bind_vector(schema)

        def complement(columns: tuple, sel: Sequence[int]) -> list:
            matched = set(inner(columns, sel))
            return [i for i in sel if i not in matched]

        return complement

    def describe(self) -> str:
        return f"NOT {self.operand.describe()}"


@dataclass(eq=False)
class NotNull(Expression):
    """``operand IS NOT NULL``."""

    operand: Expression

    def references(self) -> set[str]:
        return self.operand.references()

    def bind(self, schema: TableSchema) -> BoundExpression:
        if isinstance(self.operand, ColumnRef):
            index = schema.index_of(self.operand.name)
            return lambda row: row[index] is not None
        inner = self.operand.bind(schema)
        return lambda row: inner(row) is not None

    def bind_vector(self, schema: TableSchema) -> VectorPredicate:
        if isinstance(self.operand, ColumnRef):
            index = schema.index_of(self.operand.name)

            def not_null(columns: tuple, sel: Sequence[int]) -> list:
                column = columns[index]
                if type(sel) is range and len(sel) == len(column):
                    # Unselected batch: enumerate beats per-index lookups.
                    return [i for i, value in enumerate(column) if value is not None]
                return [i for i in sel if column[i] is not None]

            return not_null
        return super().bind_vector(schema)

    def describe(self) -> str:
        return f"{self.operand.describe()} IS NOT NULL"


@dataclass(eq=False)
class ArrayContains(Expression):
    """True when a list-valued operand contains the element."""

    operand: Expression
    element: Expression

    def references(self) -> set[str]:
        return self.operand.references() | self.element.references()

    def bind(self, schema: TableSchema) -> BoundExpression:
        inner = self.operand.bind(schema)
        element = self.element.bind(schema)

        def evaluate(row: tuple) -> bool:
            values = inner(row)
            if values is None:
                return False
            return element(row) in values

        return evaluate

    def bind_vector(self, schema: TableSchema) -> VectorPredicate:
        if isinstance(self.operand, ColumnRef) and isinstance(self.element, LiteralValue):
            index = schema.index_of(self.operand.name)
            element = self.element.value

            def contains(columns: tuple, sel: Sequence[int]) -> list:
                column = columns[index]
                return [
                    i for i in sel if column[i] is not None and element in column[i]
                ]

            return contains
        return super().bind_vector(schema)

    def describe(self) -> str:
        return f"array_contains({self.operand.describe()}, {self.element.describe()})"


@dataclass(eq=False)
class RegexMatch(Expression):
    """Regular-expression search on a string operand (NULL-safe)."""

    operand: Expression
    pattern: str

    def references(self) -> set[str]:
        return self.operand.references()

    def bind(self, schema: TableSchema) -> BoundExpression:
        inner = self.operand.bind(schema)
        compiled = re.compile(self.pattern)

        def evaluate(row: tuple) -> bool:
            value = inner(row)
            if not isinstance(value, str):
                return False
            return compiled.search(value) is not None

        return evaluate

    def bind_vector(self, schema: TableSchema) -> VectorPredicate:
        if isinstance(self.operand, ColumnRef):
            index = schema.index_of(self.operand.name)
            search = re.compile(self.pattern).search

            def matches(columns: tuple, sel: Sequence[int]) -> list:
                column = columns[index]
                return [
                    i
                    for i in sel
                    if isinstance(column[i], str) and search(column[i]) is not None
                ]

            return matches
        return super().bind_vector(schema)

    def describe(self) -> str:
        return f"{self.operand.describe()} RLIKE {self.pattern!r}"


def col(name: str) -> ColumnRef:
    """Reference a column by name."""
    return ColumnRef(name)


def lit(value) -> LiteralValue:
    """Wrap a constant value."""
    return LiteralValue(value)


def and_all(expressions: list[Expression]) -> Expression | None:
    """Conjoin a list of expressions; ``None`` for an empty list."""
    if not expressions:
        return None
    if len(expressions) == 1:
        return expressions[0]
    return BooleanOp("and", tuple(expressions))
