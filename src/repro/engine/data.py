"""Partitioned in-memory datasets and row-size estimation.

The engine's unit of data is :class:`PartitionedData`: a schema plus a list
of partitions (lists of row tuples) and an optional :class:`HashPartitioner`
describing how rows were placed. Partitioner awareness lets the join operator
skip a shuffle when both sides are already hash-partitioned on the join keys
with the same partition count — the engine-level analogue of co-located
joins.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..columnar.schema import TableSchema
from ..errors import PlanError


@dataclass(frozen=True)
class HashPartitioner:
    """Rows are placed by ``hash(key columns) % num_partitions``."""

    columns: tuple[str, ...]
    num_partitions: int

    def partition_for(self, key: tuple) -> int:
        return stable_hash(key) % self.num_partitions


def stable_hash(key: tuple) -> int:
    """Deterministic, process-independent hash for partitioning.

    Python's builtin ``hash`` on strings is salted per process; a stable
    polynomial hash keeps partition layouts reproducible across runs.
    """
    value = 0
    for part in key:
        text = part if isinstance(part, str) else repr(part)
        h = 2166136261
        for ch in text.encode("utf-8", "surrogatepass"):
            h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
        value = (value * 31 + h) & 0x7FFFFFFFFFFFFFFF
    return value


class PartitionedData:
    """A schema plus partitioned rows, the engine's physical dataset."""

    def __init__(
        self,
        schema: TableSchema,
        partitions: list[list[tuple]],
        partitioner: HashPartitioner | None = None,
    ):
        if not partitions:
            partitions = [[]]
        if partitioner is not None and partitioner.num_partitions != len(partitions):
            raise PlanError(
                "partitioner partition count does not match the partition list"
            )
        self.schema = schema
        self.partitions = partitions
        self.partitioner = partitioner

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def num_rows(self) -> int:
        return sum(len(partition) for partition in self.partitions)

    def all_rows(self) -> list[tuple]:
        """Gather every row (driver-side collect)."""
        rows: list[tuple] = []
        for partition in self.partitions:
            rows.extend(partition)
        return rows

    def is_partitioned_on(self, columns: tuple[str, ...]) -> bool:
        """Whether rows are hash-placed by exactly these columns."""
        return self.partitioner is not None and self.partitioner.columns == columns

    def estimated_bytes(self) -> int:
        """Rough in-flight size: what a shuffle of this dataset would move."""
        return sum(estimate_row_bytes(row) for partition in self.partitions for row in partition)


def estimate_row_bytes(row: tuple) -> int:
    """Approximate serialized size of one row (shuffle accounting)."""
    total = 8  # framing
    for value in row:
        if value is None:
            total += 1
        elif isinstance(value, str):
            total += len(value) + 4
        elif isinstance(value, (list, tuple)):
            total += 4
            for element in value:
                total += (len(element) + 4) if isinstance(element, str) else 8
        else:
            total += 8
    return total


def repartition_by_key(
    rows_by_partition: list[list[tuple]],
    key_indexes: list[int],
    partitioner: HashPartitioner,
) -> list[list[tuple]]:
    """Hash-repartition rows by the given key columns (the shuffle write)."""
    output: list[list[tuple]] = [[] for _ in range(partitioner.num_partitions)]
    for partition in rows_by_partition:
        for row in partition:
            key = tuple(row[i] for i in key_indexes)
            output[partitioner.partition_for(key)].append(row)
    return output


def partition_evenly(rows: list[tuple], num_partitions: int) -> list[list[tuple]]:
    """Round-robin rows into ``num_partitions`` (a balanced, unkeyed layout)."""
    if num_partitions <= 0:
        raise PlanError("num_partitions must be positive")
    output: list[list[tuple]] = [[] for _ in range(num_partitions)]
    for index, row in enumerate(rows):
        output[index % num_partitions].append(row)
    return output


def partition_by_hash(
    rows: list[tuple],
    schema: TableSchema,
    columns: tuple[str, ...],
    num_partitions: int,
) -> PartitionedData:
    """Hash-partition rows on ``columns`` (used by loaders, e.g. the PT's
    subject partitioning from paper §3.1)."""
    partitioner = HashPartitioner(columns=columns, num_partitions=num_partitions)
    key_indexes = [schema.index_of(name) for name in columns]
    partitions = repartition_by_key([rows], key_indexes, partitioner)
    return PartitionedData(schema, partitions, partitioner)
