"""Partitioned in-memory datasets and row-size estimation.

The engine's unit of data is :class:`PartitionedData`: a schema plus a list
of partitions (lists of row tuples) and an optional :class:`HashPartitioner`
describing how rows were placed. Partitioner awareness lets the join operator
skip a shuffle when both sides are already hash-partitioned on the join keys
with the same partition count — the engine-level analogue of co-located
joins.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..columnar.schema import TableSchema
from ..errors import PlanError
from ..rdf.dictionary import TERM_ID_BASE, default_dictionary


@dataclass(frozen=True)
class HashPartitioner:
    """Rows are placed by ``hash(key columns) % num_partitions``."""

    columns: tuple[str, ...]
    num_partitions: int

    def partition_for(self, key: tuple) -> int:
        """Partition index a row with this key hashes to."""
        return stable_hash(key) % self.num_partitions


_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix_int(value: int) -> int:
    """splitmix64 finalizer: scatters dense term IDs across partitions."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def stable_hash(key: tuple) -> int:
    """Deterministic, process-independent hash for partitioning.

    Python's builtin ``hash`` on strings is salted per process, so strings
    go through ``zlib.crc32`` (C speed, stable across runs and machines)
    and integers — notably dictionary term IDs, which are dense and would
    otherwise land in consecutive partitions — through a splitmix64 mix.
    """
    value = 0
    for part in key:
        if isinstance(part, int):
            h = _mix_int(part)
        elif isinstance(part, str):
            h = zlib.crc32(part.encode("utf-8", "surrogatepass"))
        else:
            h = zlib.crc32(repr(part).encode("utf-8", "surrogatepass"))
        value = (value * 31 + h) & 0x7FFFFFFFFFFFFFFF
    return value


class PartitionedData:
    """A schema plus partitioned rows, the engine's physical dataset."""

    def __init__(
        self,
        schema: TableSchema,
        partitions: list[list[tuple]],
        partitioner: HashPartitioner | None = None,
    ):
        if not partitions:
            partitions = [[]]
        if partitioner is not None and partitioner.num_partitions != len(partitions):
            raise PlanError(
                "partitioner partition count does not match the partition list"
            )
        self.schema = schema
        self.partitions = partitions
        self.partitioner = partitioner
        # Partitions are immutable after construction (operators always
        # build fresh partition lists), so sizing is computed once. Any
        # code that does replace the payload in place — e.g. a vectorized
        # scan swapping in freshly decoded rows — must call
        # invalidate_size_cache(), or the cost model and the PV205
        # broadcast-threshold checks would keep pricing the old payload.
        self._num_rows: int | None = None
        self._estimated_bytes: int | None = None

    def invalidate_size_cache(self) -> None:
        """Drop the memoized row/byte counts after a payload replacement."""
        self._num_rows = None
        self._estimated_bytes = None

    @property
    def num_partitions(self) -> int:
        """How many partitions the data is split into."""
        return len(self.partitions)

    @property
    def num_rows(self) -> int:
        """Total rows across all partitions (cached)."""
        if self._num_rows is None:
            self._num_rows = sum(len(partition) for partition in self.partitions)
        return self._num_rows

    def all_rows(self) -> list[tuple]:
        """Gather every row (driver-side collect)."""
        rows: list[tuple] = []
        for partition in self.partitions:
            rows.extend(partition)
        return rows

    def is_partitioned_on(self, columns: tuple[str, ...]) -> bool:
        """Whether rows are hash-placed by exactly these columns."""
        return self.partitioner is not None and self.partitioner.columns == columns

    def estimated_bytes(self) -> int:
        """Rough in-flight size: what a shuffle of this dataset would move.

        Memoized — the join planner consults both sides of every join, and
        without the cache each consultation re-walked every cell.
        """
        if self._estimated_bytes is None:
            total = 0
            for partition in self.partitions:
                for row in partition:
                    total += estimate_row_bytes(row)
            self._estimated_bytes = total
        return self._estimated_bytes


def estimate_row_bytes(row: tuple) -> int:
    """Approximate serialized size of one row (shuffle accounting).

    Dictionary term IDs are charged at their *decoded* serialization length
    — what the emulated cluster would actually move — so the cost model's
    shuffle totals and broadcast-vs-shuffle decisions match string-cell
    execution exactly (the paper figures must not change because cells got
    smaller in this process).
    """
    lengths = default_dictionary().decoded_lengths
    total = 8  # framing
    for value in row:
        if type(value) is int:
            # Term IDs charge their decoded text; sub-base ints are counts.
            total += lengths[value - TERM_ID_BASE] + 4 if value >= TERM_ID_BASE else 8
        elif value is None:
            total += 1
        elif isinstance(value, str):
            total += len(value) + 4
        elif isinstance(value, (list, tuple)):
            total += 4
            for element in value:
                if type(element) is int and element >= TERM_ID_BASE:
                    total += lengths[element - TERM_ID_BASE] + 4
                elif isinstance(element, str):
                    total += len(element) + 4
                else:
                    total += 8
        else:
            total += 8
    return total


def repartition_by_key(
    rows_by_partition: list[list[tuple]],
    key_indexes: list[int],
    partitioner: HashPartitioner,
) -> list[list[tuple]]:
    """Hash-repartition rows by the given key columns (the shuffle write)."""
    output: list[list[tuple]] = [[] for _ in range(partitioner.num_partitions)]
    num_partitions = partitioner.num_partitions
    if len(key_indexes) == 1:
        # Single-key shuffles dominate SPARQL joins; hash the bare cell with
        # the same per-part mixing as ``stable_hash`` (a one-element key is
        # just its part's hash masked to 63 bits), skipping the key tuple.
        index = key_indexes[0]
        crc32 = zlib.crc32
        for partition in rows_by_partition:
            for row in partition:
                part = row[index]
                if isinstance(part, int):
                    h = _mix_int(part) & 0x7FFFFFFFFFFFFFFF
                elif isinstance(part, str):
                    h = crc32(part.encode("utf-8", "surrogatepass"))
                else:
                    h = crc32(repr(part).encode("utf-8", "surrogatepass"))
                output[h % num_partitions].append(row)
        return output
    for partition in rows_by_partition:
        for row in partition:
            key = tuple(row[i] for i in key_indexes)
            output[partitioner.partition_for(key)].append(row)
    return output


def partition_evenly(rows: list[tuple], num_partitions: int) -> list[list[tuple]]:
    """Round-robin rows into ``num_partitions`` (a balanced, unkeyed layout)."""
    if num_partitions <= 0:
        raise PlanError("num_partitions must be positive")
    output: list[list[tuple]] = [[] for _ in range(num_partitions)]
    for index, row in enumerate(rows):
        output[index % num_partitions].append(row)
    return output


def partition_by_hash(
    rows: list[tuple],
    schema: TableSchema,
    columns: tuple[str, ...],
    num_partitions: int,
) -> PartitionedData:
    """Hash-partition rows on ``columns`` (used by loaders, e.g. the PT's
    subject partitioning from paper §3.1)."""
    partitioner = HashPartitioner(columns=columns, num_partitions=num_partitions)
    key_indexes = [schema.index_of(name) for name in columns]
    partitions = repartition_by_key([rows], key_indexes, partitioner)
    return PartitionedData(schema, partitions, partitioner)
