"""Table catalog: registered, partitioned, storage-backed tables.

A :class:`StoredTable` couples the in-memory :class:`PartitionedData` the
executor scans with the columnar-file statistics used for IO accounting.
Loaders register tables here; scans resolve them by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..columnar.schema import TableSchema
from ..columnar.table_file import FileStatistics
from ..errors import CatalogError
from .data import PartitionedData


@dataclass
class StoredTable:
    """One catalog entry.

    Attributes:
        name: catalog-unique table name.
        data: partitioned rows served to scans.
        file_stats: statistics of the backing columnar file, when the table
            was persisted; drives byte-accurate scan costs and Table 1 sizes.
        hdfs_path: backing file location, when persisted.
        pruned_cache: memoized column-pruned projections of ``data``, keyed
            by the projected column tuple; catalog tables are immutable once
            registered, so repeated scans can share them.
        columnar_cache: memoized columnar (:class:`~repro.engine.vectorized.
            ColumnarData`) forms of ``data`` for vectorized scans — the full
            transpose under key ``None``, zero-copy column subsets under the
            projected column tuple.
    """

    name: str
    data: PartitionedData
    file_stats: FileStatistics | None = None
    hdfs_path: str | None = None
    pruned_cache: dict = field(default_factory=dict, repr=False)
    columnar_cache: dict = field(default_factory=dict, repr=False)

    @property
    def schema(self) -> TableSchema:
        """Schema of the stored data."""
        return self.data.schema

    @property
    def row_count(self) -> int:
        """Rows in the stored table."""
        return self.data.num_rows

    def scan_bytes(self, columns: tuple[str, ...] | None = None) -> int:
        """Bytes a scan of ``columns`` must read (column pruning applied).

        Falls back to an in-memory estimate when the table was never
        persisted to a columnar file.
        """
        if self.file_stats is None:
            if columns is None:
                return self.data.estimated_bytes()
            fraction = max(1, len(columns)) / max(1, len(self.schema))
            return int(self.data.estimated_bytes() * fraction)
        if columns is None:
            return sum(chunk.encoded_bytes for chunk in self.file_stats.chunks)
        wanted = set(columns)
        return sum(
            chunk.encoded_bytes
            for chunk in self.file_stats.chunks
            if chunk.column in wanted
        )


class Catalog:
    """Name → :class:`StoredTable` registry."""

    def __init__(self):
        self._tables: dict[str, StoredTable] = {}

    def register(self, table: StoredTable, replace: bool = False) -> None:
        """Add a table.

        Raises:
            CatalogError: when the name is taken and ``replace`` is false.
        """
        if table.name in self._tables and not replace:
            raise CatalogError(f"table already registered: {table.name!r}")
        self._tables[table.name] = table

    def get(self, name: str) -> StoredTable:
        """Look up a table.

        Raises:
            CatalogError: for an unknown name.
        """
        table = self._tables.get(name)
        if table is None:
            raise CatalogError(f"unknown table {name!r}")
        return table

    def has(self, name: str) -> bool:
        """Whether a table with this name is registered."""
        return name in self._tables

    def drop(self, name: str) -> None:
        """Remove a table.

        Raises:
            CatalogError: for an unknown name.
        """
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]

    def names(self) -> list[str]:
        """All registered table names, sorted."""
        return sorted(self._tables)

    def total_stored_bytes(self) -> int:
        """Sum of backing-file sizes over all persisted tables."""
        return sum(
            table.file_stats.total_bytes
            for table in self._tables.values()
            if table.file_stats is not None
        )

    def __len__(self) -> int:
        return len(self._tables)
