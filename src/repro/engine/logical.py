"""Logical query plans.

A small, immutable algebra in the style of Spark SQL's logical plans. Plans
are built by the :class:`~repro.engine.dataframe.DataFrame` API, rewritten by
the optimizer, and executed bottom-up by the physical executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..columnar.schema import ColumnSchema, TableSchema
from ..errors import PlanError
from .expressions import ColumnRef, Expression, LiteralValue

#: Join types supported by the engine.
JOIN_TYPES = ("inner", "semi", "anti", "left", "cross")

#: Join strategy hints (set by optimizer or caller).
JOIN_HINTS = ("auto", "broadcast", "shuffle")


class LogicalPlan:
    """Base class. Subclasses are frozen dataclasses with a schema property.

    Subclass ``schema`` properties are :func:`functools.cached_property`
    memos: plans are immutable, so the output schema is computed once per
    node (``cached_property`` writes straight into ``__dict__``, which a
    frozen dataclass permits — only ``__setattr__`` is sealed).
    """

    @property
    def schema(self) -> TableSchema:
        """Output schema of the operator."""
        raise NotImplementedError

    @property
    def children(self) -> tuple["LogicalPlan", ...]:
        """Input plans, left to right (empty for leaves)."""
        raise NotImplementedError

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        """Columns the output is hash-partitioned on, or ``None``.

        The static half of the executor's partitioner lineage: each operator
        declares how it transforms its children's partitioning, mirroring the
        physical rules in :mod:`repro.engine.executor`. The plan verifier
        (:mod:`repro.analysis`) checks these declarations against the catalog's
        actual table layout, so a plan cannot silently claim a colocated join
        the storage layout does not support.
        """
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        """Render the subtree as an indented explain string."""
        pad = "  " * indent
        line = pad + self._describe_line()
        return "\n".join([line] + [c.describe(indent + 1) for c in self.children])

    def _describe_line(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class TableScan(LogicalPlan):
    """Scan a catalog table, optionally pruned to a column subset."""

    table_name: str
    table_schema: TableSchema
    columns: tuple[str, ...] | None = None
    #: The stored table's hash-partitioning columns, as registered in the
    #: catalog (threaded through by ``EngineSession.table``). ``None`` means
    #: the table was registered without a keyed partitioner.
    partition_columns: tuple[str, ...] | None = None

    @cached_property
    def schema(self) -> TableSchema:
        if self.columns is None:
            return self.table_schema
        return self.table_schema.select(list(self.columns))

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return ()

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        if self.partition_columns is None:
            return None
        if self.columns is not None and not set(self.partition_columns) <= set(
            self.columns
        ):
            return None  # pruning dropped a key column (executor does the same)
        return self.partition_columns

    def _describe_line(self) -> str:
        pruned = f" columns={list(self.columns)}" if self.columns is not None else ""
        return f"TableScan({self.table_name}{pruned})"


@dataclass(frozen=True)
class InMemoryRelation(LogicalPlan):
    """A relation materialized by the caller (local rows)."""

    relation_schema: TableSchema
    rows: tuple[tuple, ...]
    label: str = "local"

    @cached_property
    def schema(self) -> TableSchema:
        return self.relation_schema

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return ()

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        return None  # local rows are spread round-robin, never keyed

    def _describe_line(self) -> str:
        return f"InMemoryRelation({self.label}, {len(self.rows)} rows)"


@dataclass(frozen=True)
class Filter(LogicalPlan):
    """Keep rows where ``condition`` evaluates truthy."""

    child: LogicalPlan
    condition: Expression

    def __post_init__(self) -> None:
        missing = self.condition.references() - set(self.child.schema.names)
        if missing:
            raise PlanError(f"filter references unknown columns: {sorted(missing)}")

    @cached_property
    def schema(self) -> TableSchema:
        return self.child.schema

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        return self.child.partitioning  # row-preserving placement

    def _describe_line(self) -> str:
        return f"Filter({self.condition.describe()})"


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Compute named output columns from expressions over the child."""

    child: LogicalPlan
    outputs: tuple[tuple[str, Expression], ...]

    def __post_init__(self) -> None:
        names = [name for name, _ in self.outputs]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate output columns in project: {names}")
        available = set(self.child.schema.names)
        for name, expression in self.outputs:
            missing = expression.references() - available
            if missing:
                raise PlanError(
                    f"project output {name!r} references unknown columns: {sorted(missing)}"
                )

    @cached_property
    def schema(self) -> TableSchema:
        child_schema = self.child.schema
        columns = []
        for name, expression in self.outputs:
            columns.append(ColumnSchema(name, _infer_type(expression, child_schema)))
        return TableSchema(columns)

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    @property
    def is_rename_only(self) -> bool:
        """True when every output is a bare column reference."""
        return all(isinstance(e, ColumnRef) for _, e in self.outputs)

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        # Mirror of the executor's ``_project_partitioner``: a partitioning
        # survives only when every key column is re-emitted as a bare
        # reference (possibly renamed).
        source = self.child.partitioning
        if source is None:
            return None
        rename: dict[str, str] = {}
        for out_name, expression in self.outputs:
            if isinstance(expression, ColumnRef):
                rename.setdefault(expression.name, out_name)
        try:
            return tuple(rename[name] for name in source)
        except KeyError:
            return None

    def _describe_line(self) -> str:
        parts = ", ".join(
            name if isinstance(e, ColumnRef) and e.name == name else f"{e.describe()} AS {name}"
            for name, e in self.outputs
        )
        return f"Project({parts})"


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Equi-join on identically named key columns (natural-join style).

    Output schema: all left columns, then right columns minus the keys.
    """

    left: LogicalPlan
    right: LogicalPlan
    on: tuple[str, ...]
    how: str = "inner"
    hint: str = "auto"

    def __post_init__(self) -> None:
        if self.how not in JOIN_TYPES:
            raise PlanError(f"unknown join type {self.how!r}")
        if self.hint not in JOIN_HINTS:
            raise PlanError(f"unknown join hint {self.hint!r}")
        if self.how == "cross":
            if self.on:
                raise PlanError("cross join takes no key columns")
            overlap = set(self.left.schema.names) & set(self.right.schema.names)
            if overlap:
                raise PlanError(f"cross join sides share columns: {sorted(overlap)}")
            return
        if not self.on:
            raise PlanError("join requires at least one key column")
        for side, plan in (("left", self.left), ("right", self.right)):
            missing = set(self.on) - set(plan.schema.names)
            if missing:
                raise PlanError(f"{side} side lacks join columns: {sorted(missing)}")

    @cached_property
    def schema(self) -> TableSchema:
        if self.how in ("semi", "anti"):
            return self.left.schema
        keys = set(self.on)
        columns = list(self.left.schema.columns)
        columns.extend(c for c in self.right.schema.columns if c.name not in keys)
        return TableSchema(columns)

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        # Semi/anti joins only ever filter the left side in place, so its
        # placement survives every strategy. Other joins are declared
        # partitioned on the keys when both inputs already are — the
        # colocated and shuffle outcomes; the executor's broadcast fallback
        # for mismatched partition counts is the one case this optimistic
        # declaration papers over (the verifier grounds it via the catalog).
        if self.how in ("semi", "anti"):
            return self.left.partitioning
        if self.how == "cross":
            return None
        if self.left.partitioning == self.on and self.right.partitioning == self.on:
            return self.on
        return None

    def _describe_line(self) -> str:
        hint = f", hint={self.hint}" if self.hint != "auto" else ""
        return f"Join(on={list(self.on)}, how={self.how}{hint})"


@dataclass(frozen=True)
class Explode(LogicalPlan):
    """Flatten a list-typed column into one row per element.

    Rows whose list is NULL or empty are dropped (inner explode), matching
    how the Property Table expands a multi-valued predicate (paper §3.1).
    """

    child: LogicalPlan
    column: str
    output_name: str | None = None

    def __post_init__(self) -> None:
        source = self.child.schema.column(self.column)
        if not source.is_list:
            raise PlanError(f"explode expects a list column, got {source.type!r}")

    @cached_property
    def schema(self) -> TableSchema:
        out_name = self.output_name or self.column
        columns = []
        for column in self.child.schema.columns:
            if column.name == self.column:
                columns.append(ColumnSchema(out_name, column.element_type))
            else:
                columns.append(column)
        return TableSchema(columns)

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        source = self.child.partitioning
        if source is not None and self.column in source:
            return None  # exploding a key column scatters its values
        return source

    def _describe_line(self) -> str:
        return f"Explode({self.column} AS {self.output_name or self.column})"


@dataclass(frozen=True)
class Distinct(LogicalPlan):
    """Drop duplicate rows."""

    child: LogicalPlan

    @cached_property
    def schema(self) -> TableSchema:
        return self.child.schema

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        # The executor dedups per-partition after hash-placing rows by the
        # full row, so the output is always partitioned on every column.
        return tuple(self.schema.names)

    def _describe_line(self) -> str:
        return "Distinct"


@dataclass(frozen=True)
class Sort(LogicalPlan):
    """Total order by the given (column, descending) keys."""

    child: LogicalPlan
    keys: tuple[tuple[str, bool], ...]

    def __post_init__(self) -> None:
        for name, _ in self.keys:
            if not self.child.schema.has_column(name):
                raise PlanError(f"sort key {name!r} is not an output column")

    @cached_property
    def schema(self) -> TableSchema:
        return self.child.schema

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        return None  # gathered to a single driver-side partition

    def _describe_line(self) -> str:
        rendered = ", ".join(f"{n} {'DESC' if d else 'ASC'}" for n, d in self.keys)
        return f"Sort({rendered})"


@dataclass(frozen=True)
class Limit(LogicalPlan):
    """Offset/limit slice of the child's rows."""

    child: LogicalPlan
    count: int | None = None
    offset: int = 0

    def __post_init__(self) -> None:
        if self.count is not None and self.count < 0:
            raise PlanError("limit must be non-negative")
        if self.offset < 0:
            raise PlanError("offset must be non-negative")

    @cached_property
    def schema(self) -> TableSchema:
        return self.child.schema

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        return None  # gathered to a single driver-side partition

    def _describe_line(self) -> str:
        return f"Limit(count={self.count}, offset={self.offset})"


#: Aggregate functions supported by the engine.
AGGREGATE_OPS = ("count", "count_distinct")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output: ``op`` over ``input_column`` (None = all rows),
    named ``output``. ``count`` over a column counts its non-NULL cells."""

    op: str
    output: str
    input_column: str | None = None

    def __post_init__(self) -> None:
        if self.op not in AGGREGATE_OPS:
            raise PlanError(f"unknown aggregate op {self.op!r}")


@dataclass(frozen=True)
class Aggregate(LogicalPlan):
    """Hash aggregation: group by ``keys``, compute ``aggregates``.

    With no keys the whole input forms one group (which exists even when the
    input is empty, per SQL/SPARQL semantics).
    """

    child: LogicalPlan
    keys: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise PlanError("aggregate needs at least one aggregate output")
        child_names = set(self.child.schema.names)
        for key in self.keys:
            if key not in child_names:
                raise PlanError(f"group key {key!r} is not a child column")
        outputs = [spec.output for spec in self.aggregates]
        if len(set(outputs)) != len(outputs) or set(outputs) & set(self.keys):
            raise PlanError(f"duplicate aggregate output names: {outputs}")
        for spec in self.aggregates:
            if spec.input_column is not None and spec.input_column not in child_names:
                raise PlanError(
                    f"aggregate input {spec.input_column!r} is not a child column"
                )

    @cached_property
    def schema(self) -> TableSchema:
        columns = [self.child.schema.column(key) for key in self.keys]
        columns.extend(ColumnSchema(spec.output, "int") for spec in self.aggregates)
        return TableSchema(columns)

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        return self.keys or None  # reduce side shuffles by the group keys

    def _describe_line(self) -> str:
        rendered = ", ".join(
            f"{spec.op}({spec.input_column or '*'}) AS {spec.output}"
            for spec in self.aggregates
        )
        return f"Aggregate(keys={list(self.keys)}, {rendered})"


@dataclass(frozen=True)
class Union(LogicalPlan):
    """Bag union of children with identical column names."""

    inputs: tuple[LogicalPlan, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.inputs) < 2:
            raise PlanError("union needs at least two inputs")
        first = self.inputs[0].schema.names
        for plan in self.inputs[1:]:
            if plan.schema.names != first:
                raise PlanError(
                    f"union inputs disagree on columns: {first} vs {plan.schema.names}"
                )

    @cached_property
    def schema(self) -> TableSchema:
        return self.inputs[0].schema

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return self.inputs

    @property
    def partitioning(self) -> tuple[str, ...] | None:
        return None  # concatenated partition lists lose any keyed placement

    def _describe_line(self) -> str:
        return f"Union({len(self.inputs)} inputs)"


def _infer_type(expression: Expression, schema: TableSchema) -> str:
    """Output type of a projection expression."""
    if isinstance(expression, ColumnRef):
        return schema.column(expression.name).type
    if isinstance(expression, LiteralValue):
        value = expression.value
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, int):
            return "int"
        if isinstance(value, float):
            return "double"
        return "string"
    return "bool"  # comparisons and predicates
