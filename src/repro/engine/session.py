"""Engine session: catalog + optimizer + executor + cost accounting.

The :class:`EngineSession` plays the role of a ``SparkSession``: it owns the
catalog and the simulated cluster, turns logical plans into results, and
returns a :class:`QueryReport` describing what the run cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..columnar.schema import TableSchema
from ..columnar.table_file import FileStatistics, write_table
from ..hdfs.filesystem import SimulatedHdfs
from ..rdf.dictionary import storage_row
from .catalog import Catalog, StoredTable
from .cluster import ClusterConfig, CostBreakdown, ExecutionMetrics, SimulatedCluster
from .data import PartitionedData, partition_by_hash, partition_evenly
from .executor import PhysicalExecutor
from .logical import LogicalPlan
from .optimizer import optimize


@dataclass(frozen=True)
class QueryReport:
    """Everything measured about one executed plan."""

    logical_plan: str
    optimized_plan: str
    metrics: ExecutionMetrics
    cost: CostBreakdown
    wall_clock_sec: float
    #: Root physical-operator span when the plan ran under a tracer.
    trace: object | None = None

    @property
    def simulated_sec(self) -> float:
        """Simulated cluster seconds (cost-model total)."""
        return self.cost.total_sec

    def explain(self) -> str:
        """The executed physical plan, annotated with traced actuals.

        Falls back to the optimizer's plan description when the run was not
        traced (``EXPLAIN`` vs ``EXPLAIN ANALYZE`` at the engine level).
        """
        if self.trace is None:
            return self.optimized_plan
        from ..obs.explain import render_span_tree

        return render_span_tree(self.trace)

    def summary(self) -> str:
        """One-line digest of the run's work counters."""
        m = self.metrics
        text = (
            f"rows={m.rows_output} stages={m.stages} "
            f"scan={m.bytes_scanned}B shuffle={m.shuffle_bytes}B "
            f"broadcasts={m.broadcast_count} colocated={m.colocated_joins} "
            f"simulated={self.simulated_sec * 1000:.1f}ms"
        )
        if m.recovered_faults:
            text += (
                f" [recovered: {m.task_retries} task retries, "
                f"{m.fetch_retries} fetch retries, "
                f"{m.recomputed_tasks} recomputed tasks, "
                f"{m.speculative_tasks} speculative, "
                f"{m.worker_losses} worker losses, "
                f"recovery={self.cost.recovery_sec * 1000:.1f}ms]"
            )
        if m.budget_trips or m.spills or m.degraded_joins:
            text += (
                f" [governed: {m.budget_trips} budget trips, "
                f"{m.spills} spilled joins ({m.spill_partitions} partitions, "
                f"{m.spill_bytes}B), {m.degraded_joins} degraded joins]"
            )
        return text


class EngineSession:
    """Owns a catalog, an HDFS namespace, and a simulated cluster."""

    def __init__(
        self,
        cluster: SimulatedCluster | None = None,
        hdfs: SimulatedHdfs | None = None,
    ):
        self.cluster = cluster or SimulatedCluster()
        config = self.cluster.config
        self.hdfs = hdfs or SimulatedHdfs(num_datanodes=config.num_workers)
        self.catalog = Catalog()
        self._executor = PhysicalExecutor(self.catalog, config)
        self.last_report: QueryReport | None = None

    @property
    def config(self) -> ClusterConfig:
        """The cluster configuration this session runs under."""
        return self.cluster.config

    # -- table management --------------------------------------------------------

    def register_rows(
        self,
        name: str,
        schema: TableSchema,
        rows: list[tuple],
        partition_columns: tuple[str, ...] | None = None,
        persist_path: str | None = None,
        allowed_encodings: tuple[str, ...] | None = None,
        compress_pages: bool = True,
        replace: bool = False,
    ) -> StoredTable:
        """Register rows as a catalog table, optionally persisted to HDFS.

        Args:
            partition_columns: hash-partition the rows on these columns (the
                Property Table uses the subject column, paper §3.1); ``None``
                spreads rows evenly without a keyed partitioner.
            persist_path: when given, the rows are also written as a columnar
                file at this HDFS path; the resulting file statistics drive
                scan-cost accounting and storage-size measurements.
            allowed_encodings: restrict the columnar encoder (ablations).
        """
        if partition_columns:
            data = partition_by_hash(rows, schema, partition_columns, self.config.default_partitions)
        else:
            data = PartitionedData(schema, partition_evenly(rows, self.config.default_partitions))
        file_stats: FileStatistics | None = None
        if persist_path is not None:
            kwargs = {"compress_pages": compress_pages}
            if allowed_encodings is not None:
                kwargs["allowed_encodings"] = allowed_encodings
            # Persisted files are the lexical system of record: dictionary
            # term IDs decode back to their N-Triples text at this boundary,
            # so storage footprints match string-cell execution exactly.
            file_stats = write_table(
                self.hdfs,
                persist_path,
                schema,
                [storage_row(row) for row in rows],
                overwrite=replace,
                **kwargs,
            )
        table = StoredTable(
            name=name, data=data, file_stats=file_stats, hdfs_path=persist_path
        )
        self.catalog.register(table, replace=replace)
        return table

    def table(self, name: str) -> "DataFrame":
        """A DataFrame scanning a registered table."""
        from .dataframe import DataFrame
        from .logical import TableScan

        stored = self.catalog.get(name)
        partitioner = stored.data.partitioner
        return DataFrame(
            self,
            TableScan(
                name,
                stored.schema,
                partition_columns=partitioner.columns if partitioner else None,
            ),
        )

    def create_dataframe(self, schema: TableSchema, rows: list[tuple], label: str = "local") -> "DataFrame":
        """A DataFrame over caller-provided rows (not registered)."""
        from .dataframe import DataFrame
        from .logical import InMemoryRelation

        return DataFrame(self, InMemoryRelation(schema, tuple(rows), label))

    # -- execution ------------------------------------------------------------------

    def execute(
        self, plan: LogicalPlan, run_optimizer: bool = True, tracer=None
    ) -> tuple[PartitionedData, QueryReport]:
        """Optimize (unless disabled), run, and cost a logical plan.

        With a tracer attached, the optimizer pass gets its own span, every
        physical operator records one, and the report carries the root
        operator span (``QueryReport.trace``) for EXPLAIN ANALYZE alignment.
        """
        if tracer is None:
            optimized = optimize(plan) if run_optimizer else plan
            trace_container = None
            spans_before = 0
        else:
            with tracer.span("optimize", enabled=run_optimizer):
                optimized = optimize(plan) if run_optimizer else plan
            parent = tracer.current
            trace_container = parent.children if parent is not None else tracer.roots
            spans_before = len(trace_container)
        metrics = self.cluster.new_query_metrics()
        started = time.perf_counter()
        try:
            result = self._executor.execute(optimized, metrics, tracer)
        finally:
            # Spill files must never outlive the query, whether it finished,
            # timed out, or died to an injected fault.
            governor = metrics.governor
            if governor is not None:
                governor.cleanup()
        wall = time.perf_counter() - started
        cost = self.cluster.finish_query(metrics)
        trace_root = None
        if trace_container is not None and len(trace_container) > spans_before:
            trace_root = trace_container[spans_before]
        report = QueryReport(
            logical_plan=plan.describe(),
            optimized_plan=optimized.describe(),
            metrics=metrics,
            cost=cost,
            wall_clock_sec=wall,
            trace=trace_root,
        )
        self.last_report = report
        return result, report
