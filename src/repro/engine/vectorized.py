"""Vectorized physical operators: the column-batch twin of ``executor.py``.

Every operator in :class:`~repro.engine.executor.PhysicalExecutor` has a
columnar counterpart here that consumes and produces :class:`ColumnarData`
— one :class:`~repro.vector.ColumnBatch` per partition — instead of lists
of row tuples. The contract with the row path is strict equivalence:

- **identical results** — collecting a :class:`ColumnarData` yields the
  same row multiset *in the same per-partition order* as the row path,
  because filters keep selection order, joins probe left-major with
  build-side insertion order, and shuffles reuse the exact
  ``splitmix64``/``crc32`` placement of ``engine.data.repartition_by_key``;
- **identical accounting** — each operator charges the same counters in
  the same order and records the same ``(tasks, note)`` stage sequence, so
  cost totals, EXPLAIN ANALYZE reconciliation, and the seeded
  :class:`~repro.engine.faults.FaultInjector` (which attributes counter
  deltas per stage) are byte-for-byte unchanged.

What changes is the inner loop: filters narrow a selection vector with one
list comprehension per predicate instead of a bound-lambda call per row;
projections and semi/anti joins are zero-copy column-subset or
selection-only views; hash joins gather output columns with per-column
comprehensions instead of building a tuple per output row. Row tuples are
only materialized at the edges (:meth:`ColumnarData.all_rows`), which is
where dictionary term IDs finally decode — late materialization.

The row path stays available behind ``REPRO_VECTORIZE=0``
(:mod:`repro.vector.batch`) for ablation and as an executable oracle.
"""

from __future__ import annotations

import zlib
from itertools import chain, repeat

from ..errors import ExecutionError, PlanError
from ..governor.spill import grace_hash_join_partition
from ..vector import ColumnBatch, batch_bytes
from .cluster import ExecutionMetrics
from .data import (
    HashPartitioner,
    _mix_int,
    partition_evenly,
    repartition_by_key,
)
from .executor import (
    _freeze_row,
    _freeze_value,
    _group_sort_key,
    _project_partitioner,
    _sort_key,
)
from .expressions import ColumnRef, LiteralValue, _ColumnsRow
from .logical import (
    Aggregate,
    Distinct,
    Explode,
    Filter,
    InMemoryRelation,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Sort,
    TableScan,
    Union,
)

__all__ = ["ColumnarData", "dispatch_vectorized"]


class ColumnarData:
    """Partitioned columnar dataset: the vectorized twin of
    :class:`~repro.engine.data.PartitionedData`.

    Exposes the same surface the executor and session rely on
    (``schema`` / ``partitioner`` / ``num_partitions`` / ``num_rows`` /
    ``all_rows`` / ``is_partitioned_on`` / ``estimated_bytes``), so
    everything downstream of :meth:`PhysicalExecutor.execute` works
    unchanged whichever representation a query ran on.
    """

    __slots__ = ("schema", "batches", "partitioner", "_num_rows", "_estimated_bytes")

    def __init__(
        self,
        schema,
        batches: list[ColumnBatch],
        partitioner: HashPartitioner | None = None,
    ):
        if not batches:
            batches = [ColumnBatch(tuple([] for _ in schema.names), 0)]
        if partitioner is not None and partitioner.num_partitions != len(batches):
            raise PlanError(
                "partitioner partition count does not match the batch list"
            )
        self.schema = schema
        self.batches = batches
        self.partitioner = partitioner
        # Like PartitionedData, batches are immutable after construction —
        # operators always build fresh batch lists (or selection views) —
        # so sizing is computed once; see invalidate_size_cache().
        self._num_rows: int | None = None
        self._estimated_bytes: int | None = None

    @classmethod
    def from_partitioned(cls, data) -> "ColumnarData":
        """Transpose a row dataset into batches, carrying its size memos.

        Raises:
            PlanError: when the source's memoized row count disagrees with
                the rows actually present — i.e. someone replaced the
                payload without ``invalidate_size_cache()``.
        """
        width = len(data.schema.names)
        batches = [ColumnBatch.from_rows(width, part) for part in data.partitions]
        result = cls(data.schema, batches, data.partitioner)
        if data._num_rows is not None:
            actual = sum(batch.num_rows for batch in batches)
            if actual != data._num_rows:
                raise PlanError(
                    "stale PartitionedData size memo: the payload changed "
                    "without invalidate_size_cache()"
                )
        result._num_rows = data._num_rows
        result._estimated_bytes = data._estimated_bytes
        return result

    @property
    def num_partitions(self) -> int:
        """How many batches (partitions) the data is split into."""
        return len(self.batches)

    @property
    def num_rows(self) -> int:
        """Total live rows across all batches (cached)."""
        if self._num_rows is None:
            self._num_rows = sum(batch.num_rows for batch in self.batches)
        return self._num_rows

    def all_rows(self) -> list[tuple]:
        """Materialize every live row as a tuple (driver-side collect)."""
        rows: list[tuple] = []
        for batch in self.batches:
            rows.extend(batch.rows())
        return rows

    def is_partitioned_on(self, columns: tuple[str, ...]) -> bool:
        """Whether rows are hash-placed by exactly these columns."""
        return self.partitioner is not None and self.partitioner.columns == columns

    def estimated_bytes(self) -> int:
        """Shuffle-size estimate, identical to the row path's accounting."""
        if self._estimated_bytes is None:
            self._estimated_bytes = sum(
                batch_bytes(batch) for batch in self.batches
            )
        return self._estimated_bytes

    def invalidate_size_cache(self) -> None:
        """Drop the memoized sizes after a payload replacement."""
        self._num_rows = None
        self._estimated_bytes = None


def dispatch_vectorized(
    executor, plan: LogicalPlan, metrics: ExecutionMetrics, tracer, span
) -> ColumnarData:
    """Route one plan node to its vectorized operator.

    Called from ``PhysicalExecutor._dispatch`` when vectorized execution is
    on; recursion back into child plans goes through ``executor._run`` so
    every operator keeps its trace span. ``engine.vector_batches`` counts
    each operator's output batches (charged after the operator's stage
    record; the fault injector only snapshots the scan/row/shuffle work
    counters, so the ordering is inert to fault accounting).
    """
    if isinstance(plan, TableScan):
        result = _scan(executor, plan, metrics)
    elif isinstance(plan, InMemoryRelation):
        result = _local(executor, plan, metrics)
    elif isinstance(plan, Filter):
        result = _filter(executor, plan, metrics, tracer)
    elif isinstance(plan, Project):
        result = _project(executor, plan, metrics, tracer)
    elif isinstance(plan, Join):
        result = _join(executor, plan, metrics, tracer, span)
    elif isinstance(plan, Explode):
        result = _explode(executor, plan, metrics, tracer)
    elif isinstance(plan, Distinct):
        result = _distinct(executor, plan, metrics, tracer)
    elif isinstance(plan, Sort):
        result = _sort(executor, plan, metrics, tracer)
    elif isinstance(plan, Limit):
        result = _limit(executor, plan, metrics, tracer)
    elif isinstance(plan, Union):
        result = _union(executor, plan, metrics, tracer)
    elif isinstance(plan, Aggregate):
        result = _aggregate(executor, plan, metrics, tracer)
    else:
        raise PlanError(f"no vectorized implementation for {type(plan).__name__}")
    metrics.vector_batches += result.num_partitions
    if span is not None:
        span.set("vectorized", True)
    return result


# -- leaves -------------------------------------------------------------------


def _table_columnar(table) -> ColumnarData:
    """The cached columnar form of a catalog table (transposed once)."""
    base = table.columnar_cache.get(None)
    if base is None:
        base = ColumnarData.from_partitioned(table.data)
        table.columnar_cache[None] = base
    return base


def warm_table(table) -> bool:
    """Build a catalog table's columnar transposition ahead of scans.

    The serve layer's batch executor calls this once per *distinct* table
    a batch touches, so concurrent queries scanning the same PT/VP table
    share one transposition instead of racing to build it. Returns whether
    the transpose was actually built (``False`` = already warm).
    """
    already_warm = table.columnar_cache.get(None) is not None
    _table_columnar(table)
    return not already_warm


def _scan(executor, plan: TableScan, metrics: ExecutionMetrics) -> ColumnarData:
    table = executor.catalog.get(plan.table_name)
    columns = plan.columns
    metrics.bytes_scanned += table.scan_bytes(columns)
    metrics.rows_scanned += table.row_count
    metrics.record_stage(
        tasks=table.data.num_partitions,
        note=f"Scan {plan.table_name} cols={list(columns) if columns else '*'}",
    )
    base = _table_columnar(table)
    if columns is None:
        return base
    cached = table.columnar_cache.get(columns)
    if cached is not None:
        return cached
    # Column pruning is a zero-copy column subset — the vectorized payoff
    # over the row path's per-row itemgetter pass.
    indexes = [table.schema.index_of(name) for name in columns]
    batches = [
        ColumnBatch(tuple(batch.columns[i] for i in indexes), batch.length, batch.sel)
        for batch in base.batches
    ]
    partitioner = table.data.partitioner
    if partitioner is not None and not set(partitioner.columns) <= set(columns):
        partitioner = None
    pruned = ColumnarData(table.schema.select(list(columns)), batches, partitioner)
    table.columnar_cache[columns] = pruned
    return pruned


def _local(executor, plan: InMemoryRelation, metrics: ExecutionMetrics) -> ColumnarData:
    metrics.record_stage(tasks=1, note=f"LocalRelation {plan.label}")
    partitions = partition_evenly(list(plan.rows), executor.config.default_partitions)
    width = len(plan.relation_schema.names)
    batches = [ColumnBatch.from_rows(width, part) for part in partitions]
    return ColumnarData(plan.relation_schema, batches)


# -- narrow operators ---------------------------------------------------------


def _filter(executor, plan: Filter, metrics: ExecutionMetrics, tracer) -> ColumnarData:
    child = executor._run(plan.child, metrics, tracer)
    predicate = plan.condition.bind_vector(child.schema)
    metrics.narrow_rows_processed += child.num_rows
    metrics.record_stage(
        tasks=child.num_partitions, note=f"Filter {plan.condition.describe()}"
    )
    # The selection produced over an unselected batch is a pure function of
    # (columns, condition); prepared-statement plans reuse their condition
    # objects across repeated queries, so the computed selection is memoized
    # on the batch's shared cache, keyed by the condition itself (identity
    # hash — holding it in the key pins the object, so the key can never
    # collide with a later condition the way a bare id() could). Selection
    # vectors are never mutated downstream, making the share safe.
    try:
        memo_key = ("filter", plan.condition)
        hash(memo_key)
    except TypeError:
        memo_key = None
    batches = []
    for batch in child.batches:
        if batch.sel is None and memo_key is not None:
            sel = batch.bytes_cache.get(memo_key)
            if sel is None:
                sel = predicate(batch.columns, batch.live())
                batch.bytes_cache[memo_key] = sel
        else:
            sel = predicate(batch.columns, batch.live())
        batches.append(ColumnBatch(batch.columns, batch.length, sel, batch.bytes_cache))
    return ColumnarData(child.schema, batches, child.partitioner)


def _project(executor, plan: Project, metrics: ExecutionMetrics, tracer) -> ColumnarData:
    child = executor._run(plan.child, metrics, tracer)
    metrics.narrow_rows_processed += child.num_rows
    metrics.record_stage(tasks=child.num_partitions, note=plan._describe_line())
    if all(isinstance(expr, ColumnRef) for _, expr in plan.outputs):
        # Pure column shuffles share the underlying vectors and the
        # selection — no cells are touched at all.
        indexes = [child.schema.index_of(expr.name) for _, expr in plan.outputs]
        batches = [
            ColumnBatch(tuple(batch.columns[i] for i in indexes), batch.length, batch.sel)
            for batch in child.batches
        ]
    else:
        # Computed outputs need value columns aligned with the live rows,
        # so compact first; plain column/literal outputs stay vectorized
        # and only genuinely computed expressions evaluate per row.
        batches = []
        for source in child.batches:
            compacted = source.compact()
            length = compacted.length
            out_columns = []
            for _, expression in plan.outputs:
                if isinstance(expression, ColumnRef):
                    out_columns.append(
                        compacted.columns[child.schema.index_of(expression.name)]
                    )
                elif isinstance(expression, LiteralValue):
                    out_columns.append([expression.value] * length)
                else:
                    fn = expression.bind(child.schema)
                    cursor = _ColumnsRow(compacted.columns)
                    values = []
                    for i in range(length):
                        cursor.index = i
                        values.append(fn(cursor))
                    out_columns.append(values)
            batches.append(ColumnBatch(tuple(out_columns), length))
    partitioner = _project_partitioner(plan, child.partitioner)
    return ColumnarData(plan.schema, batches, partitioner)


def _explode(executor, plan: Explode, metrics: ExecutionMetrics, tracer) -> ColumnarData:
    child = executor._run(plan.child, metrics, tracer)
    index = child.schema.index_of(plan.column)
    if metrics.governor is not None:
        metrics.governor.charge_site(metrics, child.estimated_bytes())
    metrics.narrow_rows_processed += child.num_rows
    metrics.record_stage(tasks=child.num_partitions, note=plan._describe_line())
    # An explode of an unselected batch is a pure function of (columns,
    # column index); persistent scan batches keep their exploded form (and
    # its size memos) across queries.
    memo_key = ("explode", index)
    batches = []
    for batch in child.batches:
        if batch.sel is None:
            cached = batch.bytes_cache.get(memo_key)
            if cached is not None:
                batches.append(cached)
                continue
        source = batch.columns[index]
        live = batch.live()
        # C-speed flatten: empty/None cells contribute zero elements, and
        # the gather list repeats each source row once per element.
        if batch.sel is None:
            cells = [cell or () for cell in source]
        else:
            cells = [source[i] or () for i in live]
        lens = list(map(len, cells))
        flat = list(chain.from_iterable(cells))
        if batch.sel is None and lens and min(lens) == 1 == max(lens):
            # Every cell holds exactly one element: the explode is a pure
            # unwrap of the list column — all other columns pass through.
            out_columns = tuple(
                flat if j == index else column
                for j, column in enumerate(batch.columns)
            )
            out = ColumnBatch(out_columns, batch.length)
        else:
            gather = list(chain.from_iterable(map(repeat, live, lens)))
            out_columns = tuple(
                flat if j == index else [column[i] for i in gather]
                for j, column in enumerate(batch.columns)
            )
            out = ColumnBatch(out_columns, len(gather))
        if batch.sel is None:
            batch.bytes_cache[memo_key] = out
        batches.append(out)
    partitioner = child.partitioner
    if partitioner is not None and plan.column in partitioner.columns:
        partitioner = None
    return ColumnarData(plan.schema, batches, partitioner)


# -- batch plumbing -----------------------------------------------------------


def _concat(data: ColumnarData) -> ColumnBatch:
    """All live rows of a dataset as one compacted batch (collect)."""
    if len(data.batches) == 1:
        return data.batches[0].compact()
    width = len(data.schema.names)
    columns: list[list] = [[] for _ in range(width)]
    total = 0
    for batch in data.batches:
        sel = batch.sel
        if sel is None:
            for j, column in enumerate(batch.columns):
                columns[j].extend(column)
            total += batch.length
        else:
            for j, column in enumerate(batch.columns):
                columns[j].extend(column[i] for i in sel)
            total += len(sel)
    return ColumnBatch(tuple(columns), total)


def _partition_sel(
    batch: ColumnBatch, key_indexes: list[int], partitioner: HashPartitioner
) -> list[list[int]]:
    """Selection vectors placing each live row into its shuffle partition.

    Reproduces ``engine.data.repartition_by_key`` exactly — same
    splitmix64/crc32 per-cell hashing, same scan order — so a shuffled row
    lands in the same partition at the same position under either path.
    """
    num_partitions = partitioner.num_partitions
    out: list[list[int]] = [[] for _ in range(num_partitions)]
    if len(key_indexes) == 1:
        column = batch.columns[key_indexes[0]]
        crc32 = zlib.crc32
        for i in batch.live():
            part = column[i]
            if isinstance(part, int):
                h = _mix_int(part) & 0x7FFFFFFFFFFFFFFF
            elif isinstance(part, str):
                h = crc32(part.encode("utf-8", "surrogatepass"))
            else:
                h = crc32(repr(part).encode("utf-8", "surrogatepass"))
            out[h % num_partitions].append(i)
        return out
    key_columns = [batch.columns[i] for i in key_indexes]
    for i in batch.live():
        key = tuple(column[i] for column in key_columns)
        out[partitioner.partition_for(key)].append(i)
    return out


def _repartition(
    data: ColumnarData, key_indexes: list[int], partitioner: HashPartitioner
) -> list[ColumnBatch]:
    """Columnar shuffle: one concatenated batch, viewed per target partition.

    The shuffle write is a single gather into one batch plus per-partition
    selection vectors over it — target batches share the concatenated
    columns instead of copying rows into per-partition lists.
    """
    combined = _concat(data)
    return [
        ColumnBatch(combined.columns, combined.length, sel, combined.bytes_cache)
        for sel in _partition_sel(combined, key_indexes, partitioner)
    ]


# -- joins --------------------------------------------------------------------


def _build_index(batch: ColumnBatch, key_indexes: list[int]) -> dict:
    """Hash-join build side: key → live row indices, insertion-ordered.

    Same semantics as the row kernel's build loop: NULL keys (any NULL part
    for multi-key joins) never enter the index. For an unselected batch the
    index is a pure function of (columns, keys), so it is memoized in the
    batch's shared cache — scans of build-side tables keep their indexes
    across queries. Probes only read the index, never mutate it.
    """
    cache_key = None
    if batch.sel is None:
        cache_key = ("build", tuple(key_indexes))
        cached = batch.bytes_cache.get(cache_key)
        if cached is not None:
            return cached
    build: dict = {}
    if len(key_indexes) == 1:
        column = batch.columns[key_indexes[0]]
        build_get = build.get
        for i in batch.live():
            key = column[i]
            if key is not None:
                bucket = build_get(key)
                if bucket is None:
                    build[key] = [i]
                else:
                    bucket.append(i)
        if cache_key is not None:
            batch.bytes_cache[cache_key] = build
        return build
    key_columns = [batch.columns[i] for i in key_indexes]
    for i in batch.live():
        key = tuple(column[i] for column in key_columns)
        if any(part is None for part in key):
            continue
        build.setdefault(key, []).append(i)
    if cache_key is not None:
        batch.bytes_cache[cache_key] = build
    return build


def _probe_batch(
    left: ColumnBatch,
    right: ColumnBatch,
    build: dict,
    left_key_idx: list[int],
    right_keep_idx: list[int],
    how: str,
) -> ColumnBatch:
    """Probe one left batch against a build index over ``right``.

    Emits left-major output in build insertion order, exactly like the row
    kernel. Semi/anti joins are selection-only views over the left batch
    (zero copies); inner/left joins gather per column from index lists,
    with ``-1`` marking a left-join miss to fill NULLs on the right side.
    """
    single = len(left_key_idx) == 1
    if single:
        probe_column = left.columns[left_key_idx[0]]
        probe_key = probe_column.__getitem__
    else:
        probe_columns = [left.columns[i] for i in left_key_idx]

        def probe_key(i):
            key = tuple(column[i] for column in probe_columns)
            if any(part is None for part in key):
                return None  # NULL keys never match (SQL semantics)
            return key

    build_get = build.get
    if how == "semi":
        sel = [i for i in left.live() if build_get(probe_key(i))]
        return ColumnBatch(left.columns, left.length, sel, left.bytes_cache)
    if how == "anti":
        sel = [i for i in left.live() if not build_get(probe_key(i))]
        return ColumnBatch(left.columns, left.length, sel, left.bytes_cache)

    out_left: list[int] = []
    out_right: list[int] = []
    if how == "inner":
        for i in left.live():
            matches = build_get(probe_key(i))
            if matches:
                for m in matches:
                    out_left.append(i)
                    out_right.append(m)
        misses = False
    elif how == "left":
        for i in left.live():
            matches = build_get(probe_key(i))
            if matches:
                for m in matches:
                    out_left.append(i)
                    out_right.append(m)
            else:
                out_left.append(i)
                out_right.append(-1)
        misses = True
    else:
        raise ExecutionError(f"unsupported join type {how!r}")

    columns: list[list] = [
        [column[i] for i in out_left] for column in left.columns
    ]
    for j in right_keep_idx:
        column = right.columns[j]
        if misses:
            columns.append([None if i < 0 else column[i] for i in out_right])
        else:
            columns.append([column[i] for i in out_right])
    return ColumnBatch(tuple(columns), len(out_left))


def _join(
    executor, plan: Join, metrics: ExecutionMetrics, tracer, span
) -> ColumnarData:
    left = executor._run(plan.left, metrics, tracer)
    right = executor._run(plan.right, metrics, tracer)
    if plan.how == "cross":
        if span is not None:
            span.set("strategy", "cartesian")
        return _cross_join(plan, left, right, metrics)
    keys = plan.on
    left_key_idx = [left.schema.index_of(k) for k in keys]
    right_key_idx = [right.schema.index_of(k) for k in keys]
    right_keep_idx = [
        i for i, column in enumerate(right.schema.columns) if column.name not in keys
    ]

    left_bytes = left.estimated_bytes()
    right_bytes = right.estimated_bytes()
    strategy = executor._choose_strategy(plan, left, right, left_bytes, right_bytes, keys)
    # Same degradation ladder as the row path, driven by the same
    # contract-equal byte estimates: broadcast→shuffle on an over-budget
    # build, grace-hash spill on an over-budget hash build. The spill path
    # runs the shared row-level kernel (batches → rows → batches), trading
    # vector speed for byte-identical results and counters.
    governor = metrics.governor
    spill_fanout = 0
    if governor is not None:
        if strategy == "broadcast":
            build_bytes = (
                right_bytes
                if right_bytes <= left_bytes or plan.how != "inner"
                else left_bytes
            )
            if governor.should_degrade_broadcast(metrics, build_bytes, span):
                strategy = "shuffle"
        spill_fanout = governor.plan_join_build(metrics, right_bytes, span)
    out_width = len(plan.schema.names)

    def _spilled_pair(left_batch: ColumnBatch, right_batch: ColumnBatch) -> ColumnBatch:
        rows = grace_hash_join_partition(
            left_batch.rows(),
            right_batch.rows(),
            left_key_idx,
            right_key_idx,
            right_keep_idx,
            plan.how,
            spill_fanout,
            governor.new_spill_store(metrics),
        )
        return ColumnBatch.from_rows(out_width, rows)

    if span is not None:
        span.set("on", list(keys))
        span.set("how", plan.how)
        span.set(
            "strategy",
            {
                "colocated": "colocated",
                "broadcast": "broadcast-hash",
                "shuffle": "shuffle-hash",
            }[strategy],
        )

    # Work is charged before the stage is recorded — same contract with the
    # fault injector as the row path.
    metrics.rows_processed += left.num_rows + right.num_rows
    batches: list[ColumnBatch] = []
    if strategy == "colocated":
        metrics.colocated_joins += 1
        metrics.record_stage(
            tasks=left.num_partitions, note=f"ColocatedJoin on={list(keys)}"
        )
        partitioner = left.partitioner
        for left_batch, right_batch in zip(left.batches, right.batches):
            if spill_fanout:
                batches.append(_spilled_pair(left_batch, right_batch))
                continue
            build = _build_index(right_batch, right_key_idx)
            batches.append(
                _probe_batch(left_batch, right_batch, build, left_key_idx, right_keep_idx, plan.how)
            )
    elif strategy == "broadcast":
        small_is_right = right_bytes <= left_bytes or plan.how != "inner"
        small_bytes = right_bytes if small_is_right else left_bytes
        if span is not None:
            span.set("build", "right" if small_is_right else "left")
        metrics.broadcast_bytes += small_bytes
        metrics.broadcast_count += 1
        metrics.record_stage(
            tasks=(left if small_is_right else right).num_partitions,
            note=f"BroadcastHashJoin on={list(keys)} build={'right' if small_is_right else 'left'}",
        )
        if small_is_right:
            # The replicated build side is identical everywhere, so the
            # index is built once and probed per left batch — the row path
            # rebuilds it per partition; the output rows are the same.
            right_batch = _concat(right)
            partitioner = left.partitioner
            if spill_fanout:
                for left_batch in left.batches:
                    batches.append(_spilled_pair(left_batch, right_batch))
            else:
                build = _build_index(right_batch, right_key_idx)
                for left_batch in left.batches:
                    batches.append(
                        _probe_batch(left_batch, right_batch, build, left_key_idx, right_keep_idx, plan.how)
                    )
        else:
            # Inner join only: the small left side replicates to every
            # right partition, so the build runs per right batch against
            # the one concatenated probe side.
            left_batch = _concat(left)
            partitioner = None
            for right_batch in right.batches:
                if spill_fanout:
                    batches.append(_spilled_pair(left_batch, right_batch))
                    continue
                build = _build_index(right_batch, right_key_idx)
                batches.append(
                    _probe_batch(left_batch, right_batch, build, left_key_idx, right_keep_idx, plan.how)
                )
    else:  # shuffle
        num_partitions = executor.config.default_partitions
        partitioner = HashPartitioner(columns=keys, num_partitions=num_partitions)
        metrics.shuffle_bytes += left_bytes + right_bytes
        metrics.shuffle_rows += left.num_rows + right.num_rows
        metrics.record_stage(
            tasks=num_partitions, note=f"ShuffleHashJoin on={list(keys)}"
        )
        left_parts = _repartition(left, left_key_idx, partitioner)
        right_parts = _repartition(right, right_key_idx, partitioner)
        for left_batch, right_batch in zip(left_parts, right_parts):
            if spill_fanout:
                batches.append(_spilled_pair(left_batch, right_batch))
                continue
            build = _build_index(right_batch, right_key_idx)
            batches.append(
                _probe_batch(left_batch, right_batch, build, left_key_idx, right_keep_idx, plan.how)
            )
    if plan.how in ("semi", "anti"):
        out_partitioner = left.partitioner
    else:
        out_partitioner = partitioner
        if out_partitioner is not None and out_partitioner.num_partitions != len(batches):
            out_partitioner = None
    return ColumnarData(plan.schema, batches, out_partitioner)


def _cross_join(
    plan: Join, left: ColumnarData, right: ColumnarData, metrics: ExecutionMetrics
) -> ColumnarData:
    """Cartesian product on columns: repeat the big side's cells in place,
    tile the broadcast small side — no per-row tuple concatenation."""
    left_bytes = left.estimated_bytes()
    right_bytes = right.estimated_bytes()
    small_is_right = right_bytes <= left_bytes
    metrics.broadcast_bytes += min(left_bytes, right_bytes)
    metrics.broadcast_count += 1
    metrics.rows_processed += left.num_rows + right.num_rows
    big = left if small_is_right else right
    small = _concat(right if small_is_right else left)
    small_rows = small.length
    metrics.record_stage(tasks=big.num_partitions, note="CartesianProduct")
    batches: list[ColumnBatch] = []
    for batch in big.batches:
        compacted = batch.compact()
        big_rows = compacted.length
        repeated = [
            [value for value in column for _ in range(small_rows)]
            for column in compacted.columns
        ]
        tiled = [list(column) * big_rows for column in small.columns]
        columns = repeated + tiled if small_is_right else tiled + repeated
        batches.append(ColumnBatch(tuple(columns), big_rows * small_rows))
    return ColumnarData(plan.schema, batches)


# -- wide operators -----------------------------------------------------------


def _distinct(executor, plan: Distinct, metrics: ExecutionMetrics, tracer) -> ColumnarData:
    child = executor._run(plan.child, metrics, tracer)
    if metrics.governor is not None:
        metrics.governor.charge_site(metrics, child.estimated_bytes())
    all_columns = tuple(child.schema.names)
    if child.is_partitioned_on(all_columns):
        batches = child.batches
        partitioner = child.partitioner
    else:
        num_partitions = executor.config.default_partitions
        partitioner = HashPartitioner(columns=all_columns, num_partitions=num_partitions)
        metrics.shuffle_bytes += child.estimated_bytes()
        metrics.shuffle_rows += child.num_rows
        key_idx = list(range(len(all_columns)))
        batches = _repartition(child, key_idx, partitioner)
    metrics.rows_processed += child.num_rows
    metrics.record_stage(tasks=len(batches), note="Distinct")
    deduped = []
    for batch in batches:
        columns = batch.columns
        seen: set[tuple] = set()
        keep: list[int] = []
        for i in batch.live():
            frozen = _freeze_row(tuple(column[i] for column in columns))
            if frozen not in seen:
                seen.add(frozen)
                keep.append(i)
        deduped.append(ColumnBatch(columns, batch.length, keep, batch.bytes_cache))
    return ColumnarData(child.schema, deduped, partitioner)


def _sort(executor, plan: Sort, metrics: ExecutionMetrics, tracer) -> ColumnarData:
    child = executor._run(plan.child, metrics, tracer)
    if metrics.governor is not None:
        metrics.governor.charge_site(metrics, child.estimated_bytes())
    combined = _concat(child)
    metrics.rows_processed += combined.length
    metrics.shuffle_bytes += child.estimated_bytes()  # gather to driver
    metrics.record_stage(tasks=1, note=plan._describe_line())
    # Sort an index permutation instead of moving rows: precompute the key
    # vector per sort column, then repeated stable sorts as in the row path.
    order = list(range(combined.length))
    for name, descending in reversed(plan.keys):
        column = combined.columns[child.schema.index_of(name)]
        key_vector = [_sort_key(value) for value in column]
        order.sort(key=key_vector.__getitem__, reverse=descending)
    return ColumnarData(
        child.schema,
        [ColumnBatch(combined.columns, combined.length, order, combined.bytes_cache)],
    )


def _limit(executor, plan: Limit, metrics: ExecutionMetrics, tracer) -> ColumnarData:
    child = executor._run(plan.child, metrics, tracer)
    metrics.record_stage(tasks=1, note=plan._describe_line())
    stop = None if plan.count is None else plan.offset + plan.count
    if len(child.batches) == 1:
        # The common shape (LIMIT over a sorted single batch) slices the
        # selection without touching any cells.
        batch = child.batches[0]
        live = batch.live()
        sliced = live[plan.offset : stop] if stop is not None else live[plan.offset :]
        return ColumnarData(
            child.schema,
            [ColumnBatch(batch.columns, batch.length, list(sliced), batch.bytes_cache)],
        )
    refs = [(batch, i) for batch in child.batches for i in batch.live()]
    refs = refs[plan.offset : stop] if stop is not None else refs[plan.offset :]
    width = len(child.schema.names)
    columns = tuple(
        [batch.columns[j][i] for batch, i in refs] for j in range(width)
    )
    return ColumnarData(child.schema, [ColumnBatch(columns, len(refs))])


def _aggregate(executor, plan: Aggregate, metrics: ExecutionMetrics, tracer) -> ColumnarData:
    """Map-side partial aggregation reading columns directly; the merged
    (small) output reuses the row-path partitioning for identical layout."""
    child = executor._run(plan.child, metrics, tracer)
    if metrics.governor is not None:
        metrics.governor.charge_site(metrics, child.estimated_bytes())
    key_idx = [child.schema.index_of(key) for key in plan.keys]
    input_idx = [
        child.schema.index_of(spec.input_column)
        if spec.input_column is not None
        else None
        for spec in plan.aggregates
    ]
    metrics.rows_processed += child.num_rows

    partials: list[dict[tuple, list]] = []
    for batch in child.batches:
        columns = batch.columns
        key_columns = [columns[i] for i in key_idx]
        local: dict[tuple, list] = {}
        for i in batch.live():
            key = tuple(column[i] for column in key_columns)
            state = local.get(key)
            if state is None:
                state = [
                    set() if spec.op == "count_distinct" else 0
                    for spec in plan.aggregates
                ]
                local[key] = state
            for position, (spec, column) in enumerate(zip(plan.aggregates, input_idx)):
                if column is not None:
                    value = columns[column][i]
                    if value is None:
                        continue
                else:
                    value = None
                if spec.op == "count_distinct":
                    if column is None:
                        value = tuple(col[i] for col in columns)
                    state[position].add(_freeze_value(value))
                else:
                    state[position] += 1
        partials.append(local)

    partial_groups = sum(len(local) for local in partials)
    metrics.shuffle_rows += partial_groups
    metrics.shuffle_bytes += partial_groups * (16 + 8 * len(plan.aggregates))
    metrics.record_stage(tasks=child.num_partitions, note=plan._describe_line())

    merged: dict[tuple, list] = {}
    for local in partials:
        for key, state in local.items():
            target = merged.get(key)
            if target is None:
                merged[key] = state
                continue
            for position, spec in enumerate(plan.aggregates):
                if spec.op == "count_distinct":
                    target[position] |= state[position]
                else:
                    target[position] += state[position]
    if not plan.keys and not merged:
        merged[()] = [
            set() if spec.op == "count_distinct" else 0 for spec in plan.aggregates
        ]

    rows = []
    for key in sorted(merged, key=_group_sort_key):
        state = merged[key]
        counts = tuple(
            len(value) if isinstance(value, set) else value for value in state
        )
        rows.append(key + counts)
    num_partitions = min(executor.config.default_partitions, max(1, len(rows)))
    partitioner = (
        HashPartitioner(columns=plan.keys, num_partitions=num_partitions)
        if plan.keys
        else None
    )
    partitions = (
        repartition_by_key([rows], list(range(len(plan.keys))), partitioner)
        if partitioner
        else [rows]
    )
    width = len(plan.schema.names)
    batches = [ColumnBatch.from_rows(width, part) for part in partitions]
    return ColumnarData(plan.schema, batches, partitioner)


def _union(executor, plan: Union, metrics: ExecutionMetrics, tracer) -> ColumnarData:
    results = [executor._run(child, metrics, tracer) for child in plan.inputs]
    metrics.record_stage(tasks=len(results), note="Union")
    batches: list[ColumnBatch] = []
    for result in results:
        batches.extend(result.batches)
    return ColumnarData(plan.schema, batches)
