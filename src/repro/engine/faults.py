"""Seeded fault injection and recovery accounting for the simulated cluster.

Spark's defining production property is lineage-based recovery: a failed
task is retried on another executor, a dead executor's lost shuffle outputs
are recomputed from the stages that produced them, and stragglers are raced
by speculative duplicates. This module gives the simulated cluster the same
failure model, deterministically:

- a :class:`FaultPlan` is a pure function of a seed: for every
  ``(stage, task)`` coordinate it decides whether the task fails (and how
  often), whether its shuffle fetch fails, whether it straggles, and whether
  the stage's start coincides with a whole-worker loss;
- a :class:`FaultInjector` consults the plan at every stage the physical
  executor records and charges the *recovery* work — retried task work,
  lineage-recomputed shuffle partitions, speculative duplicates, retry
  backoff — to dedicated :class:`~repro.engine.cluster.ExecutionMetrics`
  counters that :func:`~repro.engine.cluster.estimate_cost` converts into a
  ``recovery_sec`` cost component.

The injector never touches the data plane: partitions, rows, and the main
work counters are byte-identical to a fault-free run. Recovery is an
accounting overlay, which is exactly the correctness bar — any fault plan
that does not exhaust the retry budget must leave query results unchanged —
and the differential chaos harness (``prost-repro fuzz --chaos``) holds
every engine to it. A plan *can* exhaust the budget: a task with at least
``max_task_attempts`` injected failures aborts the query with
:class:`~repro.errors.FaultToleranceExhaustedError`, as Spark aborts a job
after ``spark.task.maxFailures``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import FaultToleranceExhaustedError, TaskFailedError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import ClusterConfig, ExecutionMetrics

#: First retry waits this long (simulated seconds); doubles per attempt.
RETRY_BACKOFF_BASE_SEC = 0.1
#: Backoff never exceeds this, matching capped exponential backoff.
RETRY_BACKOFF_CAP_SEC = 5.0


def retry_backoff_sec(failed_attempts: int) -> float:
    """Total simulated backoff for ``failed_attempts`` consecutive failures."""
    return sum(
        min(RETRY_BACKOFF_CAP_SEC, RETRY_BACKOFF_BASE_SEC * (2**attempt))
        for attempt in range(failed_attempts)
    )


@dataclass(frozen=True)
class TaskFault:
    """An injected failure of one task: ``failures`` attempts fail in a row.

    ``kind`` is ``"task"`` (the task itself crashes and is retried in place)
    or ``"fetch"`` (the task cannot fetch a shuffle partition; the lost map
    output is recomputed from its producing stage, then the task retries).
    """

    stage: int
    task: int
    failures: int
    kind: str = "task"


@dataclass(frozen=True)
class WorkerLoss:
    """A whole worker dies as ``stage`` completes.

    Every shuffle output the worker held (its share of every
    shuffle-producing stage so far, this one included) is lost and must be
    recomputed via lineage.
    """

    stage: int
    worker: int


@dataclass(frozen=True)
class StragglerSpec:
    """One task runs ``slowdown`` times slower than its siblings."""

    stage: int
    task: int
    slowdown: float


@dataclass(frozen=True)
class MemoryPressure:
    """Executor memory pressure hits as ``stage`` completes.

    The query's effective memory budget shrinks by ``fraction`` of its
    configured size (another tenant's allocation landed on the executor),
    which can push later joins over the degradation ladder mid-query. On
    an unbudgeted query the pressure is a no-op — there is no budget to
    shrink — so plans carrying it stay byte-identical for ungoverned runs.
    """

    stage: int
    fraction: float = 0.5


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    Two sources compose: explicit fault lists (unit tests pin exact
    scenarios) and seeded rates (chaos testing draws a fresh, reproducible
    plan per seed). Rate draws are keyed by ``(seed, stage, task)`` alone,
    so decisions are independent of consultation order.

    Attributes:
        seed: base seed for rate draws; ``None`` disables rate-based faults.
        task_failure_rate: per-task probability of a crash-and-retry fault.
        fetch_failure_rate: per-task probability of a shuffle-fetch fault.
        straggler_rate: per-task probability of a slowdown.
        worker_loss_rate: per-stage probability that a worker dies.
        memory_pressure_rate: per-stage probability that executor memory
            pressure shrinks the query's effective memory budget (drawn
            with a fresh salt, so enabling it leaves every other category's
            draws byte-identical).
        max_failures: cap on consecutive injected failures per task. Keep it
            below ``ClusterConfig.max_task_attempts`` for recoverable plans;
            at or above it the query aborts.
        slowdown_range: (lo, hi) uniform range for straggler slowdowns.
    """

    seed: int | None = None
    task_failure_rate: float = 0.0
    fetch_failure_rate: float = 0.0
    straggler_rate: float = 0.0
    worker_loss_rate: float = 0.0
    memory_pressure_rate: float = 0.0
    max_failures: int = 2
    slowdown_range: tuple[float, float] = (2.0, 8.0)
    task_faults: tuple[TaskFault, ...] = ()
    worker_losses: tuple[WorkerLoss, ...] = ()
    stragglers: tuple[StragglerSpec, ...] = ()
    memory_pressures: tuple[MemoryPressure, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "task_failure_rate",
            "fetch_failure_rate",
            "straggler_rate",
            "worker_loss_rate",
            "memory_pressure_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{name} must be within [0, 1]")
        if self.max_failures < 1:
            raise ValidationError("max_failures must be at least 1")
        lo, hi = self.slowdown_range
        if not 1.0 <= lo <= hi:
            raise ValidationError("slowdown_range must satisfy 1.0 <= lo <= hi")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: nothing ever fails."""
        return cls()

    @classmethod
    def from_rates(
        cls,
        seed: int,
        task_failure_rate: float = 0.06,
        fetch_failure_rate: float = 0.03,
        straggler_rate: float = 0.05,
        worker_loss_rate: float = 0.04,
        memory_pressure_rate: float = 0.05,
        max_failures: int = 2,
    ) -> "FaultPlan":
        """A chaos plan: every fault category active at a moderate rate.

        The default ``max_failures`` stays below the default
        ``max_task_attempts`` (4), so rate-drawn plans are always
        recoverable. Memory pressure only bites when the query carries a
        memory budget; for unbudgeted queries the plan behaves exactly as
        it did without the category.
        """
        return cls(
            seed=seed,
            task_failure_rate=task_failure_rate,
            fetch_failure_rate=fetch_failure_rate,
            straggler_rate=straggler_rate,
            worker_loss_rate=worker_loss_rate,
            memory_pressure_rate=memory_pressure_rate,
            max_failures=max_failures,
        )

    # -- queries ---------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether the plan can never inject anything."""
        has_rates = self.seed is not None and (
            self.task_failure_rate > 0
            or self.fetch_failure_rate > 0
            or self.straggler_rate > 0
            or self.worker_loss_rate > 0
            or self.memory_pressure_rate > 0
        )
        return not has_rates and not (
            self.task_faults
            or self.worker_losses
            or self.stragglers
            or self.memory_pressures
        )

    def _rng(self, stage: int, task: int, salt: str) -> random.Random:
        # String seeding hashes with SHA-512 under the hood: stable across
        # processes and machines, unlike builtin ``hash``.
        return random.Random(f"{self.seed}:{stage}:{task}:{salt}")

    def task_fault(self, stage: int, task: int) -> TaskFault | None:
        """The fault injected into this task, if any (explicit wins)."""
        for fault in self.task_faults:
            if fault.stage == stage and fault.task == task:
                return fault
        if self.seed is None:
            return None
        rng = self._rng(stage, task, "fail")
        draw = rng.random()
        if draw < self.task_failure_rate:
            kind = "task"
        elif draw < self.task_failure_rate + self.fetch_failure_rate:
            kind = "fetch"
        else:
            return None
        failures = rng.randint(1, self.max_failures)
        return TaskFault(stage=stage, task=task, failures=failures, kind=kind)

    def straggler_slowdown(self, stage: int, task: int) -> float | None:
        """This task's slowdown factor, or ``None`` when it runs normally."""
        for spec in self.stragglers:
            if spec.stage == stage and spec.task == task:
                return spec.slowdown
        if self.seed is None or self.straggler_rate <= 0:
            return None
        rng = self._rng(stage, task, "straggle")
        if rng.random() >= self.straggler_rate:
            return None
        return rng.uniform(*self.slowdown_range)

    def worker_lost_at(self, stage: int, num_workers: int) -> int | None:
        """The worker that dies at the start of this stage, if any."""
        for loss in self.worker_losses:
            if loss.stage == stage:
                return loss.worker % num_workers
        if self.seed is None or self.worker_loss_rate <= 0:
            return None
        rng = self._rng(stage, 0, "worker-loss")
        if rng.random() >= self.worker_loss_rate:
            return None
        return rng.randrange(num_workers)

    def memory_pressure_at(self, stage: int) -> float | None:
        """The budget shrink fraction hitting at this stage, if any.

        Drawn with a fresh ``"mem-pressure"`` salt, so plans that predate
        the category keep every other draw byte-identical.
        """
        for pressure in self.memory_pressures:
            if pressure.stage == stage:
                return pressure.fraction
        if self.seed is None or self.memory_pressure_rate <= 0:
            return None
        rng = self._rng(stage, 0, "mem-pressure")
        if rng.random() >= self.memory_pressure_rate:
            return None
        return rng.uniform(0.25, 0.75)


@dataclass
class _StageWork:
    """Work one recorded stage charged (the lineage record for recompute)."""

    tasks: int
    note: str
    bytes_scanned: int = 0
    rows_processed: int = 0
    narrow_rows_processed: int = 0
    shuffle_bytes: int = 0
    broadcast_bytes: int = 0


class FaultInjector:
    """Per-query fault state: consulted by ``ExecutionMetrics.record_stage``.

    The physical executor charges each stage's work *before* recording the
    stage, so the counter delta since the previous record is exactly the
    stage's own work — the injector snapshots the delta as the stage's
    lineage record, then plays the plan's faults against it:

    - **task failure** — the task's share of the stage work is re-charged
      once per failed attempt, plus capped exponential backoff (simulated
      time) per retry;
    - **shuffle-fetch failure** — the lost map output is recomputed from the
      nearest upstream shuffle-producing stage (its per-task work is
      re-charged), then the fetch retries with backoff;
    - **worker loss** — ``1/num_workers`` of every shuffle-producing stage's
      output so far dies with the worker; each such stage re-runs that
      fraction of its tasks (lineage recompute);
    - **straggler** — a slowdown below ``speculation_multiplier`` just
      stretches the stage by the extra task time; at or above it a
      speculative duplicate launches, so the extra cost is one task's work
      plus the detection delay instead of the full slowdown.

    Failures beyond ``max_task_attempts`` raise
    :class:`FaultToleranceExhaustedError` and abort the query.
    """

    def __init__(self, plan: FaultPlan, config: "ClusterConfig"):
        self.plan = plan
        self.config = config
        self._next_stage = 0
        self._lost_workers: set[int] = set()
        self._stage_records: list[_StageWork] = []
        self._snapshot = (0, 0, 0, 0, 0)

    # -- the record_stage hook -------------------------------------------------

    def on_stage(self, metrics: "ExecutionMetrics", tasks: int, note: str) -> None:
        """Inject this stage's faults and charge their recovery."""
        stage = self._next_stage
        self._next_stage += 1
        work = self._take_stage_work(metrics, tasks, note)
        self._stage_records.append(work)

        worker = self.plan.worker_lost_at(stage, self.config.num_workers)
        if worker is not None and worker not in self._lost_workers:
            self._lost_workers.add(worker)
            metrics.worker_losses += 1
            metrics.fault_events.append(f"stage {stage}: worker {worker} lost")
            self._recompute_lineage(metrics, stage)

        fraction = self.plan.memory_pressure_at(stage)
        if fraction is not None and metrics.governor is not None:
            effective = metrics.governor.apply_memory_pressure(metrics, fraction)
            if effective is not None:
                metrics.fault_events.append(
                    f"stage {stage}: memory pressure, effective budget now "
                    f"{effective} bytes"
                )

        for task in range(tasks):
            fault = self.plan.task_fault(stage, task)
            if fault is not None and fault.failures > 0:
                self._apply_task_fault(metrics, stage, task, fault, work)
            slowdown = self.plan.straggler_slowdown(stage, task)
            if slowdown is not None and slowdown > 1.0:
                self._apply_straggler(metrics, stage, task, slowdown, work)

    # -- fault handlers --------------------------------------------------------

    def _apply_task_fault(
        self,
        metrics: "ExecutionMetrics",
        stage: int,
        task: int,
        fault: TaskFault,
        work: _StageWork,
    ) -> None:
        if fault.failures >= self.config.max_task_attempts:
            last_attempt = TaskFailedError(
                f"task {task} of stage {stage} failed attempt {fault.failures}",
                stage=stage,
                task=task,
                attempt=fault.failures,
                kind=fault.kind,
            )
            raise FaultToleranceExhaustedError(
                f"task {task} of stage {stage} ({work.note or 'unnamed'}) failed "
                f"{fault.failures} attempts; max_task_attempts="
                f"{self.config.max_task_attempts}"
            ) from last_attempt
        per_task = 1.0 / max(1, work.tasks)
        if fault.kind == "fetch":
            metrics.fetch_retries += fault.failures
            # The missing map output is regenerated from the stage that
            # produced it: re-run one of its tasks per failed fetch.
            parent = self._latest_shuffle_producer(exclude_from=len(self._stage_records) - 1)
            if parent is not None:
                metrics.recomputed_tasks += fault.failures
                self._charge_recovery(
                    metrics, parent, fault.failures / max(1, parent.tasks)
                )
            else:
                self._charge_recovery(metrics, work, fault.failures * per_task)
        else:
            metrics.task_retries += fault.failures
            self._charge_recovery(metrics, work, fault.failures * per_task)
        backoff = retry_backoff_sec(fault.failures)
        metrics.retry_backoff_sec += backoff
        metrics.retry_waves += fault.failures
        metrics.fault_events.append(
            f"stage {stage} task {task}: {fault.failures} "
            f"{fault.kind}-failure(s), retried"
        )
        if metrics.governor is not None:
            # Retry backoff is simulated wait the deadline must count: the
            # governor charges it and polls, so a query drowning in retries
            # times out deterministically inside the retry loop.
            metrics.governor.on_retry_wait(metrics, backoff)

    def _apply_straggler(
        self,
        metrics: "ExecutionMetrics",
        stage: int,
        task: int,
        slowdown: float,
        work: _StageWork,
    ) -> None:
        task_sec = self._serial_sec(work) / max(1, work.tasks)
        threshold = self.config.speculation_multiplier
        if slowdown >= threshold:
            # Speculation races a fresh copy: pay the duplicate's work and
            # the delay before the scheduler notices the straggler, not the
            # full slowdown.
            metrics.speculative_tasks += 1
            metrics.retry_waves += 1
            self._charge_recovery(metrics, work, 1.0 / max(1, work.tasks))
            metrics.straggler_extra_sec += (threshold - 1.0) * task_sec
            metrics.fault_events.append(
                f"stage {stage} task {task}: straggler x{slowdown:.1f}, "
                "speculative duplicate launched"
            )
        else:
            metrics.straggler_extra_sec += (slowdown - 1.0) * task_sec
            metrics.fault_events.append(
                f"stage {stage} task {task}: straggler x{slowdown:.1f}"
            )

    def _recompute_lineage(self, metrics: "ExecutionMetrics", stage: int) -> None:
        """Recompute the dead worker's share of every shuffle output so far.

        Includes the stage that just completed: the worker held its share of
        that output too when it died.
        """
        fraction = 1.0 / self.config.num_workers
        for record in self._stage_records[: stage + 1]:
            if record.shuffle_bytes <= 0:
                continue
            metrics.recomputed_tasks += max(
                1, record.tasks // self.config.num_workers
            )
            metrics.retry_waves += 1
            self._charge_recovery(metrics, record, fraction)

    # -- accounting ------------------------------------------------------------

    def _take_stage_work(
        self, metrics: "ExecutionMetrics", tasks: int, note: str
    ) -> _StageWork:
        current = (
            metrics.bytes_scanned,
            metrics.rows_processed,
            metrics.narrow_rows_processed,
            metrics.shuffle_bytes,
            metrics.broadcast_bytes,
        )
        delta = tuple(now - then for now, then in zip(current, self._snapshot))
        self._snapshot = current
        return _StageWork(
            tasks=tasks,
            note=note,
            bytes_scanned=delta[0],
            rows_processed=delta[1],
            narrow_rows_processed=delta[2],
            shuffle_bytes=delta[3],
            broadcast_bytes=delta[4],
        )

    def _charge_recovery(
        self, metrics: "ExecutionMetrics", work: _StageWork, fraction: float
    ) -> None:
        # Recovery rows are charged unfused (re-execution restarts the
        # stage's pipeline from scratch), hence narrow rows at full weight.
        metrics.recovery_bytes_scanned += int(work.bytes_scanned * fraction)
        metrics.recovery_rows_processed += int(
            (work.rows_processed + work.narrow_rows_processed) * fraction
        )
        metrics.recovery_shuffle_bytes += int(work.shuffle_bytes * fraction)

    def _serial_sec(self, work: _StageWork) -> float:
        """Single-node seconds for a stage's work (per-task time × tasks)."""
        from .cluster import NARROW_FUSION_FACTOR

        config = self.config
        return config.data_scale * (
            work.bytes_scanned / config.scan_bytes_per_sec
            + (
                work.rows_processed
                + work.narrow_rows_processed / NARROW_FUSION_FACTOR
            )
            / config.rows_per_sec
            + 2 * work.shuffle_bytes / config.network_bytes_per_sec
        )

    def _latest_shuffle_producer(self, exclude_from: int) -> _StageWork | None:
        for record in reversed(self._stage_records[:exclude_from]):
            if record.shuffle_bytes > 0:
                return record
        return None

    @property
    def lost_workers(self) -> frozenset[int]:
        """Workers lost so far in this query."""
        return frozenset(self._lost_workers)


__all__ = [
    "FaultInjector",
    "FaultPlan",
    "MemoryPressure",
    "RETRY_BACKOFF_BASE_SEC",
    "RETRY_BACKOFF_CAP_SEC",
    "StragglerSpec",
    "TaskFault",
    "WorkerLoss",
    "retry_backoff_sec",
]
