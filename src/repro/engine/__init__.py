"""Distributed DataFrame engine (mini-Spark): plans, optimizer, executor."""

from .catalog import Catalog, StoredTable
from .cluster import (
    ClusterConfig,
    CostBreakdown,
    ExecutionMetrics,
    SimulatedCluster,
    estimate_cost,
)
from .data import (
    HashPartitioner,
    PartitionedData,
    estimate_row_bytes,
    partition_by_hash,
    partition_evenly,
    stable_hash,
)
from .dataframe import DataFrame
from .expressions import Expression, and_all, col, lit
from .faults import (
    FaultInjector,
    FaultPlan,
    MemoryPressure,
    StragglerSpec,
    TaskFault,
    WorkerLoss,
)
from .logical import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Explode,
    Filter,
    InMemoryRelation,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Sort,
    TableScan,
    Union,
)
from .optimizer import optimize, prune_columns, push_down_filters, split_conjuncts
from .session import EngineSession, QueryReport

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "Catalog",
    "ClusterConfig",
    "CostBreakdown",
    "DataFrame",
    "Distinct",
    "EngineSession",
    "ExecutionMetrics",
    "Explode",
    "Expression",
    "FaultInjector",
    "FaultPlan",
    "Filter",
    "HashPartitioner",
    "InMemoryRelation",
    "Join",
    "Limit",
    "LogicalPlan",
    "MemoryPressure",
    "PartitionedData",
    "Project",
    "QueryReport",
    "SimulatedCluster",
    "Sort",
    "StoredTable",
    "StragglerSpec",
    "TableScan",
    "TaskFault",
    "Union",
    "WorkerLoss",
    "and_all",
    "col",
    "estimate_cost",
    "estimate_row_bytes",
    "lit",
    "optimize",
    "partition_by_hash",
    "partition_evenly",
    "prune_columns",
    "push_down_filters",
    "split_conjuncts",
    "stable_hash",
]
