"""Lazy DataFrame API over logical plans (Spark DataFrame analogue).

A :class:`DataFrame` is an immutable wrapper around a logical plan; every
transformation returns a new DataFrame, and nothing executes until an action
(:meth:`collect`, :meth:`count`, :meth:`to_dicts`) runs the plan through the
session's optimizer and executor.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import PlanError
from .expressions import Expression, col
from .logical import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Explode,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Sort,
    Union,
)
from .session import EngineSession, QueryReport


class DataFrame:
    """A lazy, immutable relational dataset."""

    def __init__(self, session: EngineSession, plan: LogicalPlan):
        self.session = session
        self.plan = plan

    # -- schema ---------------------------------------------------------------

    @property
    def schema(self):
        """Schema the plan produces."""
        return self.plan.schema

    @property
    def columns(self) -> tuple[str, ...]:
        """Output column names, in order."""
        return self.plan.schema.names

    # -- transformations ---------------------------------------------------------

    def filter(self, condition: Expression) -> "DataFrame":
        """Keep rows satisfying ``condition``."""
        return DataFrame(self.session, Filter(self.plan, condition))

    where = filter

    def select(self, *columns: str | tuple[str, Expression]) -> "DataFrame":
        """Project to the named columns or ``(name, expression)`` pairs."""
        outputs: list[tuple[str, Expression]] = []
        for item in columns:
            if isinstance(item, str):
                outputs.append((item, col(item)))
            else:
                name, expression = item
                outputs.append((name, expression))
        if not outputs:
            raise PlanError("select requires at least one column")
        return DataFrame(self.session, Project(self.plan, tuple(outputs)))

    def rename(self, mapping: dict[str, str]) -> "DataFrame":
        """Rename columns via ``{old: new}``; unmentioned columns pass through."""
        outputs = tuple(
            (mapping.get(name, name), col(name)) for name in self.columns
        )
        return DataFrame(self.session, Project(self.plan, outputs))

    def join(
        self,
        other: "DataFrame",
        on: Sequence[str],
        how: str = "inner",
        hint: str = "auto",
    ) -> "DataFrame":
        """Equi-join on shared column names.

        Args:
            how: ``inner``, ``left``, ``semi``, or ``anti``.
            hint: ``auto`` (size-based strategy), ``broadcast``, or
                ``shuffle`` (disables broadcast, as SPARQLGX's compiled plans
                effectively do).
        """
        if other.session is not self.session:
            raise PlanError("cannot join DataFrames from different sessions")
        return DataFrame(
            self.session, Join(self.plan, other.plan, tuple(on), how=how, hint=hint)
        )

    def explode(self, column: str, output_name: str | None = None) -> "DataFrame":
        """Flatten a list column into one row per element."""
        return DataFrame(self.session, Explode(self.plan, column, output_name))

    def distinct(self) -> "DataFrame":
        """Drop duplicate rows."""
        return DataFrame(self.session, Distinct(self.plan))

    def group_aggregate(
        self,
        keys: Sequence[str],
        aggregates: Sequence[tuple[str, str | None, str]],
    ) -> "DataFrame":
        """Group by ``keys`` and compute aggregates.

        Args:
            keys: grouping columns (empty = one global group).
            aggregates: ``(op, input_column, output_name)`` triples; ``op``
                is ``count`` or ``count_distinct``; ``input_column=None``
                counts rows.
        """
        specs = tuple(
            AggregateSpec(op=op, input_column=column, output=name)
            for op, column, name in aggregates
        )
        return DataFrame(self.session, Aggregate(self.plan, tuple(keys), specs))

    def sort(self, *keys: str | tuple[str, bool]) -> "DataFrame":
        """Sort by columns; pass ``(name, True)`` for descending."""
        normalized = tuple(
            (key, False) if isinstance(key, str) else key for key in keys
        )
        return DataFrame(self.session, Sort(self.plan, normalized))

    def limit(self, count: int | None, offset: int = 0) -> "DataFrame":
        """Keep ``count`` rows after skipping ``offset`` (None = no cap)."""
        return DataFrame(self.session, Limit(self.plan, count, offset))

    def union(self, other: "DataFrame") -> "DataFrame":
        """Concatenate with another frame of the same schema."""
        if other.session is not self.session:
            raise PlanError("cannot union DataFrames from different sessions")
        return DataFrame(self.session, Union((self.plan, other.plan)))

    # -- actions -----------------------------------------------------------------

    def collect(self, run_optimizer: bool = True, tracer=None) -> list[tuple]:
        """Execute the plan and gather all rows on the driver."""
        data, _ = self.session.execute(
            self.plan, run_optimizer=run_optimizer, tracer=tracer
        )
        return data.all_rows()

    def collect_with_report(
        self, run_optimizer: bool = True, tracer=None
    ) -> tuple[list[tuple], QueryReport]:
        """Execute and also return the :class:`QueryReport`."""
        data, report = self.session.execute(
            self.plan, run_optimizer=run_optimizer, tracer=tracer
        )
        return data.all_rows(), report

    def collect_data_with_report(self, run_optimizer: bool = True, tracer=None):
        """Execute and return the physical dataset itself, unmaterialized.

        Under vectorized execution the result is a
        :class:`~repro.engine.vectorized.ColumnarData`, letting callers
        (e.g. the SPARQL finalizer) sort/slice/decode on columns without
        ever building intermediate row tuples; otherwise a
        :class:`~repro.engine.data.PartitionedData`.
        """
        return self.session.execute(
            self.plan, run_optimizer=run_optimizer, tracer=tracer
        )

    def count(self) -> int:
        """Execute the plan and return its row count."""
        data, _ = self.session.execute(self.plan)
        return data.num_rows

    def to_dicts(self) -> list[dict]:
        """Collect as ``{column: value}`` dictionaries."""
        names = self.columns
        return [dict(zip(names, row)) for row in self.collect()]

    def explain(self, optimized: bool = True) -> str:
        """The plan as an indented string (optimized by default)."""
        if optimized:
            from .optimizer import optimize

            return optimize(self.plan).describe()
        return self.plan.describe()

    def __repr__(self) -> str:
        return f"DataFrame({self.plan._describe_line()}, columns={list(self.columns)})"
