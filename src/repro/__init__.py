"""PRoST reproduction: distributed SPARQL over mixed RDF partitioning.

Reproduces Cossu, Färber & Lausen, *"PRoST: Distributed Execution of SPARQL
Queries Using Mixed Partitioning Strategies"* (EDBT 2018) as a pure-Python
library: the PRoST engine itself (Vertical Partitioning + Property Table with
statistics-guided Join Trees), the substrates it runs on (a Spark-like
DataFrame engine with a calibrated cluster cost model, a Parquet-like
columnar store, a simulated HDFS), the three baseline systems of the paper's
evaluation (S2RDF, SPARQLGX, Rya), and a WatDiv-style workload generator.

Quickstart::

    from repro import ProstEngine
    from repro.watdiv import generate_watdiv

    dataset = generate_watdiv(scale=300, seed=7)
    engine = ProstEngine(num_workers=9)
    engine.load(dataset.graph)
    for row in engine.sparql("SELECT ?s ?o WHERE { ?s wsdbm:likes ?o } LIMIT 5"):
        print(row)
"""

from .core.loader import LoadReport
from .core.prost import ProstEngine
from .core.results import QueryExecutionReport, ResultSet
from .errors import ReproError
from .rdf.graph import Graph
from .rdf.ntriples import parse_ntriples_file, parse_ntriples_string
from .rdf.terms import IRI, BlankNode, Literal, Triple
from .sparql.parser import parse_sparql

__version__ = "1.0.0"

__all__ = [
    "BlankNode",
    "Graph",
    "IRI",
    "Literal",
    "LoadReport",
    "ProstEngine",
    "QueryExecutionReport",
    "ReproError",
    "ResultSet",
    "Triple",
    "__version__",
    "parse_ntriples_file",
    "parse_ntriples_string",
    "parse_sparql",
]
