"""SPARQL algebra for the supported fragment.

The paper (§3.2) considers queries "with a unique basic graph pattern",
i.e. conjunctions of triple patterns, optionally with filters. This module
defines the corresponding algebra objects produced by the parser and consumed
by the translators: variables, triple patterns, filter expressions, and the
``SELECT`` query form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..rdf.terms import IRI, BlankNode, Literal
from ..errors import ValidationError


@dataclass(frozen=True, slots=True)
class Variable:
    """A SPARQL variable, e.g. ``?v0`` (stored without the ``?``)."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: A triple-pattern slot: either a variable or a concrete RDF term.
PatternTerm = Union[Variable, IRI, BlankNode, Literal]


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """One triple pattern of a basic graph pattern.

    Subject and object may be variables or terms; the predicate may be a
    variable too, although the WatDiv basic query set always binds it.
    """

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    @property
    def variables(self) -> set[Variable]:
        """All variables mentioned by this pattern."""
        return {slot for slot in (self.subject, self.predicate, self.object)
                if isinstance(slot, Variable)}

    @property
    def has_literal_object(self) -> bool:
        """Whether the object position is a concrete literal (paper §3.3:
        literal constraints get the highest join priority)."""
        return isinstance(self.object, Literal)

    @property
    def has_constant_object(self) -> bool:
        """Whether the object position is any concrete term (IRI or literal)."""
        return not isinstance(self.object, Variable)

    def __str__(self) -> str:
        def show(slot: PatternTerm) -> str:
            return str(slot) if isinstance(slot, Variable) else slot.n3()

        return f"{show(self.subject)} {show(self.predicate)} {show(self.object)}"


# -- filter expressions -----------------------------------------------------

#: Comparison operators supported inside FILTER.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True, slots=True)
class Comparison:
    """A binary comparison, e.g. ``?age > 18`` or ``?name = "alice"``."""

    op: str
    left: PatternTerm
    right: PatternTerm

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValidationError(f"unsupported comparison operator {self.op!r}")

    @property
    def variables(self) -> set[Variable]:
        return {slot for slot in (self.left, self.right) if isinstance(slot, Variable)}


@dataclass(frozen=True, slots=True)
class Regex:
    """A ``regex(?var, "pattern")`` filter call."""

    variable: Variable
    pattern: str

    @property
    def variables(self) -> set[Variable]:
        return {self.variable}


@dataclass(frozen=True, slots=True)
class And:
    """Conjunction of filter expressions (``expr && expr``)."""

    operands: tuple["FilterExpression", ...]

    @property
    def variables(self) -> set[Variable]:
        return set().union(*(operand.variables for operand in self.operands))


@dataclass(frozen=True, slots=True)
class Or:
    """Disjunction of filter expressions (``expr || expr``)."""

    operands: tuple["FilterExpression", ...]

    @property
    def variables(self) -> set[Variable]:
        return set().union(*(operand.variables for operand in self.operands))


FilterExpression = Union[Comparison, Regex, And, Or]


@dataclass(frozen=True, slots=True)
class CountAggregate:
    """A ``(COUNT([DISTINCT] ?var | *) AS ?alias)`` projection item.

    ``variable`` is ``None`` for ``COUNT(*)``. Counting a variable counts
    its *bound* solutions, per SPARQL 1.1 semantics.
    """

    alias: Variable
    variable: Variable | None = None
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.variable is None else str(self.variable)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"(COUNT({inner}) AS {self.alias})"


@dataclass(frozen=True, slots=True)
class OrderCondition:
    """One ORDER BY key: a variable plus direction."""

    variable: Variable
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    """A parsed SELECT query.

    The core form is a single basic graph pattern (the paper's fragment,
    §3.2); two extensions from PRoST's later development are also modeled:
    ``OPTIONAL { ... }`` blocks (left-join semantics) and a WHERE clause that
    is a ``UNION`` of plain BGPs.

    Attributes:
        variables: the projection; empty tuple means ``SELECT *``.
        patterns: the required BGP's triple patterns, in query order (empty
            when the query is a pure UNION).
        filters: top-level filter expressions (implicitly conjoined).
        optional_groups: OPTIONAL blocks, each a plain conjunction of triple
            patterns, applied left to right.
        union_branches: when non-empty, the WHERE clause is the union of
            these BGPs and ``patterns`` is empty.
        distinct: whether ``DISTINCT`` was given.
        order_by: ORDER BY conditions, in order.
        limit / offset: result slicing, ``None`` when absent.
    """

    variables: tuple[Variable, ...]
    patterns: tuple[TriplePattern, ...]
    filters: tuple[FilterExpression, ...] = ()
    form: str = "SELECT"  # "SELECT" or "ASK" 
    optional_groups: tuple[tuple[TriplePattern, ...], ...] = ()
    union_branches: tuple[tuple[TriplePattern, ...], ...] = ()
    aggregates: tuple[CountAggregate, ...] = ()
    group_by: tuple[Variable, ...] = ()
    distinct: bool = False
    order_by: tuple[OrderCondition, ...] = ()
    limit: int | None = None
    offset: int | None = None

    @property
    def is_select_star(self) -> bool:
        return not self.variables

    @property
    def is_union(self) -> bool:
        return bool(self.union_branches)

    @property
    def pattern_variables(self) -> set[Variable]:
        """All variables mentioned anywhere in the query's patterns."""
        found: set[Variable] = set()
        for pattern in self.all_patterns():
            found |= pattern.variables
        return found

    def all_patterns(self) -> tuple[TriplePattern, ...]:
        """Required, optional, and union-branch patterns, in query order."""
        collected = list(self.patterns)
        for group in self.optional_groups:
            collected.extend(group)
        for branch in self.union_branches:
            collected.extend(branch)
        return tuple(collected)

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates)

    @property
    def is_ask(self) -> bool:
        return self.form == "ASK"

    @property
    def projection(self) -> tuple[Variable, ...]:
        """The effective projection: explicit variables (plus aggregate
        aliases, after the plain variables), or all variables in
        first-appearance order for ``SELECT *``."""
        if self.aggregates:
            return self.variables + tuple(a.alias for a in self.aggregates)
        if self.variables:
            return self.variables
        seen: list[Variable] = []
        for pattern in self.all_patterns():
            for slot in (pattern.subject, pattern.predicate, pattern.object):
                if isinstance(slot, Variable) and slot not in seen:
                    seen.append(slot)
        return tuple(seen)


def join_variables(left: set[Variable], right: set[Variable]) -> set[Variable]:
    """Variables shared between two pattern groups (the join keys)."""
    return left & right
