"""Recursive-descent parser for the supported SPARQL fragment.

Grammar (informally)::

    Query      := Prologue SELECT [DISTINCT] (Var+ | '*') WHERE GroupGraph
                  Modifiers
    Prologue   := (PREFIX pname: <iri>)*
    GroupGraph := '{' (TriplesBlock | Filter)* '}'
    TriplesBlock := Term PropertyList ('.' TriplesBlock?)?
    PropertyList := Verb ObjectList (';' Verb ObjectList)*
    ObjectList := Term (',' Term)*
    Filter     := FILTER '(' OrExpr ')' | FILTER regex(...)
    Modifiers  := (GROUP BY Var+)? (ORDER BY (Var | ASC(Var) | DESC(Var))+)?
                  (LIMIT n)? (OFFSET n)?

Beyond the paper's "unique basic graph pattern" fragment (§3.2) the parser
also accepts three extensions PRoST grew later: ``OPTIONAL { BGP }`` blocks,
a WHERE clause that is a UNION of braced BGPs, and ``COUNT`` aggregates with
``GROUP BY``. The remaining constructs of full SPARQL (sub-queries, property
paths, GRAPH, other aggregates) raise :class:`UnsupportedSparqlError`.
"""

from __future__ import annotations

from ..errors import SparqlSyntaxError, UnsupportedSparqlError
from ..rdf.terms import IRI, RDF_TYPE, BlankNode, Literal
from .algebra import (
    And,
    Comparison,
    CountAggregate,
    FilterExpression,
    Or,
    OrderCondition,
    PatternTerm,
    Regex,
    SelectQuery,
    TriplePattern,
    Variable,
)
from .tokenizer import Token, tokenize

#: Prefixes available without declaration (WatDiv and RDF standard namespaces).
DEFAULT_PREFIXES = {
    "rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
    "rdfs": "http://www.w3.org/2000/01/rdf-schema#",
    "xsd": "http://www.w3.org/2001/XMLSchema#",
    "foaf": "http://xmlns.com/foaf/",
    "dc": "http://purl.org/dc/terms/",
    "wsdbm": "http://db.uwaterloo.ca/~galuc/wsdbm/",
    "rev": "http://purl.org/stuff/rev#",
    "gr": "http://purl.org/goodrelations/",
    "gn": "http://www.geonames.org/ontology#",
    "mo": "http://purl.org/ontology/mo/",
    "og": "http://ogp.me/ns#",
    "sorg": "http://schema.org/",
}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0
        self.prefixes = dict(DEFAULT_PREFIXES)

    # -- token helpers -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def check(self, kind: str, value: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            wanted = value if value is not None else kind
            raise SparqlSyntaxError(
                f"expected {wanted!r} but found {self.current.value!r} "
                f"at offset {self.current.position}"
            )
        return token

    # -- grammar -----------------------------------------------------------

    def parse_query(self) -> SelectQuery:
        self.parse_prologue()
        if self.check("KEYWORD") and self.current.value in ("CONSTRUCT", "DESCRIBE"):
            raise UnsupportedSparqlError(f"{self.current.value} queries are not supported")
        if self.accept("KEYWORD", "ASK"):
            return self._parse_ask()
        self.expect("KEYWORD", "SELECT")
        distinct = self.accept("KEYWORD", "DISTINCT") is not None
        self.accept("KEYWORD", "REDUCED")
        variables, aggregates = self.parse_projection()
        self.expect("KEYWORD", "WHERE")
        patterns, filters, optional_groups, union_branches = self.parse_group_graph()
        group_by = self.parse_group_by()
        order_by = self.parse_order_by()
        limit, offset = self.parse_limit_offset()
        self.expect("EOF")
        query = SelectQuery(
            variables=variables,
            patterns=patterns,
            filters=filters,
            optional_groups=optional_groups,
            union_branches=union_branches,
            aggregates=aggregates,
            group_by=group_by,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )
        self._validate(query)
        return query

    def _parse_ask(self) -> SelectQuery:
        """``ASK [WHERE] { ... }`` — existence check, no projection."""
        self.accept("KEYWORD", "WHERE")
        patterns, filters, optional_groups, union_branches = self.parse_group_graph()
        self.expect("EOF")
        query = SelectQuery(
            variables=(),
            patterns=patterns,
            filters=filters,
            optional_groups=optional_groups,
            union_branches=union_branches,
            form="ASK",
            limit=1,
        )
        self._validate(query)
        return query

    def parse_prologue(self) -> None:
        while True:
            if self.accept("KEYWORD", "PREFIX"):
                name = self.expect("PNAME").value
                if not name.endswith(":"):
                    raise SparqlSyntaxError(f"malformed prefix declaration {name!r}")
                iri = self.expect("IRIREF").value
                self.prefixes[name[:-1]] = iri
            elif self.accept("KEYWORD", "BASE"):
                self.expect("IRIREF")
            else:
                return

    def parse_projection(
        self,
    ) -> tuple[tuple[Variable, ...], tuple[CountAggregate, ...]]:
        if self.accept("PUNCT", "*"):
            return (), ()
        variables: list[Variable] = []
        aggregates: list[CountAggregate] = []
        while True:
            if self.check("VAR"):
                variables.append(Variable(self.advance().value))
            elif self.check("PUNCT", "("):
                aggregates.append(self.parse_aggregate())
            else:
                break
        if not variables and not aggregates:
            raise SparqlSyntaxError("SELECT requires at least one variable or '*'")
        return tuple(variables), tuple(aggregates)

    def parse_aggregate(self) -> CountAggregate:
        """``( COUNT( [DISTINCT] ?var | * ) AS ?alias )``."""
        self.expect("PUNCT", "(")
        self.expect("KEYWORD", "COUNT")
        self.expect("PUNCT", "(")
        distinct = self.accept("KEYWORD", "DISTINCT") is not None
        if self.accept("PUNCT", "*"):
            variable = None
        else:
            variable = Variable(self.expect("VAR").value)
        self.expect("PUNCT", ")")
        self.expect("KEYWORD", "AS")
        alias = Variable(self.expect("VAR").value)
        self.expect("PUNCT", ")")
        return CountAggregate(alias=alias, variable=variable, distinct=distinct)

    def parse_group_by(self) -> tuple[Variable, ...]:
        if not self.accept("KEYWORD", "GROUP"):
            return ()
        self.expect("KEYWORD", "BY")
        variables: list[Variable] = []
        while self.check("VAR"):
            variables.append(Variable(self.advance().value))
        if not variables:
            raise SparqlSyntaxError("GROUP BY requires at least one variable")
        return tuple(variables)

    def parse_group_graph(
        self,
    ) -> tuple[
        tuple[TriplePattern, ...],
        tuple[FilterExpression, ...],
        tuple[tuple[TriplePattern, ...], ...],
        tuple[tuple[TriplePattern, ...], ...],
    ]:
        """Parse the WHERE group: a BGP with OPTIONAL blocks, or a UNION."""
        self.expect("PUNCT", "{")
        if self.check("PUNCT", "{"):
            branches = self.parse_union_branches()
            self.expect("PUNCT", "}")
            return (), (), (), branches
        patterns: list[TriplePattern] = []
        filters: list[FilterExpression] = []
        optional_groups: list[tuple[TriplePattern, ...]] = []
        while not self.check("PUNCT", "}"):
            if self.check("KEYWORD", "UNION"):
                raise UnsupportedSparqlError(
                    "UNION must combine braced groups: { ... } UNION { ... }"
                )
            if self.accept("KEYWORD", "OPTIONAL"):
                optional_groups.append(self.parse_plain_group("OPTIONAL"))
                self.accept("PUNCT", ".")
                continue
            if self.accept("KEYWORD", "FILTER"):
                filters.append(self.parse_filter())
                self.accept("PUNCT", ".")
                continue
            patterns.extend(self.parse_triples_same_subject())
            if not self.accept("PUNCT", "."):
                break
        self.expect("PUNCT", "}")
        if not patterns:
            raise SparqlSyntaxError("empty basic graph pattern")
        return tuple(patterns), tuple(filters), tuple(optional_groups), ()

    def parse_union_branches(self) -> tuple[tuple[TriplePattern, ...], ...]:
        """Parse ``{ BGP } UNION { BGP } [UNION { BGP } ...]``."""
        branches = [self.parse_plain_group("UNION branch")]
        while self.accept("KEYWORD", "UNION"):
            branches.append(self.parse_plain_group("UNION branch"))
        if len(branches) < 2:
            raise UnsupportedSparqlError(
                "nested groups are only supported as UNION branches"
            )
        return tuple(branches)

    def parse_plain_group(self, context: str) -> tuple[TriplePattern, ...]:
        """Parse a braced plain conjunction of triple patterns."""
        self.expect("PUNCT", "{")
        patterns: list[TriplePattern] = []
        while not self.check("PUNCT", "}"):
            if self.check("KEYWORD") and self.current.value in (
                "OPTIONAL", "UNION", "FILTER",
            ):
                raise UnsupportedSparqlError(
                    f"{self.current.value} inside an {context} group is not supported"
                )
            patterns.extend(self.parse_triples_same_subject())
            if not self.accept("PUNCT", "."):
                break
        self.expect("PUNCT", "}")
        if not patterns:
            raise SparqlSyntaxError(f"empty {context} group")
        return tuple(patterns)

    def parse_triples_same_subject(self) -> list[TriplePattern]:
        subject = self.parse_pattern_term()
        patterns: list[TriplePattern] = []
        while True:
            predicate = self.parse_verb()
            while True:
                obj = self.parse_pattern_term()
                patterns.append(TriplePattern(subject, predicate, obj))
                if not self.accept("PUNCT", ","):
                    break
            if not self.accept("PUNCT", ";"):
                break
            if self.check("PUNCT", ".") or self.check("PUNCT", "}"):
                break  # tolerate a trailing ';'
        return patterns

    def parse_verb(self) -> PatternTerm:
        if self.accept("KEYWORD", "A"):
            return IRI(RDF_TYPE)
        term = self.parse_pattern_term()
        if isinstance(term, (Literal, BlankNode)):
            raise SparqlSyntaxError("predicate must be an IRI or a variable")
        return term

    def parse_pattern_term(self) -> PatternTerm:
        token = self.current
        if token.kind == "VAR":
            self.advance()
            return Variable(token.value)
        if token.kind == "IRIREF":
            self.advance()
            return IRI(token.value)
        if token.kind == "PNAME":
            self.advance()
            return IRI(self.expand_pname(token))
        if token.kind == "BNODE":
            self.advance()
            return BlankNode(token.value)
        if token.kind == "STRING":
            return self.parse_literal()
        if token.kind == "NUMBER":
            self.advance()
            datatype = (
                "http://www.w3.org/2001/XMLSchema#decimal"
                if "." in token.value
                else "http://www.w3.org/2001/XMLSchema#integer"
            )
            return Literal(token.value, datatype=datatype)
        raise SparqlSyntaxError(
            f"expected a term but found {token.value!r} at offset {token.position}"
        )

    def parse_literal(self) -> Literal:
        lexical = self.expect("STRING").value
        if self.check("LANGTAG"):
            return Literal(lexical, language=self.advance().value)
        if self.accept("PUNCT", "^^"):
            token = self.current
            if token.kind == "IRIREF":
                self.advance()
                return Literal(lexical, datatype=token.value)
            if token.kind == "PNAME":
                self.advance()
                return Literal(lexical, datatype=self.expand_pname(token))
            raise SparqlSyntaxError("expected datatype IRI after '^^'")
        return Literal(lexical)

    def expand_pname(self, token: Token) -> str:
        prefix, _, local = token.value.partition(":")
        if prefix not in self.prefixes:
            raise SparqlSyntaxError(
                f"undeclared prefix {prefix!r} at offset {token.position}"
            )
        return self.prefixes[prefix] + local

    # -- filters -----------------------------------------------------------

    def parse_filter(self) -> FilterExpression:
        if self.accept("KEYWORD", "REGEX"):
            return self.parse_regex_call()
        self.expect("PUNCT", "(")
        expression = self.parse_or_expression()
        self.expect("PUNCT", ")")
        return expression

    def parse_or_expression(self) -> FilterExpression:
        operands = [self.parse_and_expression()]
        while self.accept("PUNCT", "||"):
            operands.append(self.parse_and_expression())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def parse_and_expression(self) -> FilterExpression:
        operands = [self.parse_primary_expression()]
        while self.accept("PUNCT", "&&"):
            operands.append(self.parse_primary_expression())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def parse_primary_expression(self) -> FilterExpression:
        if self.accept("PUNCT", "("):
            inner = self.parse_or_expression()
            self.expect("PUNCT", ")")
            return inner
        if self.accept("KEYWORD", "REGEX"):
            return self.parse_regex_call()
        left = self.parse_pattern_term()
        op_token = self.current
        if op_token.kind != "PUNCT" or op_token.value not in ("=", "!=", "<", "<=", ">", ">="):
            raise SparqlSyntaxError(
                f"expected a comparison operator, found {op_token.value!r}"
            )
        self.advance()
        right = self.parse_pattern_term()
        return Comparison(op_token.value, left, right)

    def parse_regex_call(self) -> Regex:
        self.expect("PUNCT", "(")
        variable = self.parse_pattern_term()
        if not isinstance(variable, Variable):
            raise UnsupportedSparqlError("regex() over non-variables is not supported")
        self.expect("PUNCT", ",")
        pattern = self.expect("STRING").value
        if self.accept("PUNCT", ","):
            self.expect("STRING")  # flags accepted and ignored
        self.expect("PUNCT", ")")
        return Regex(variable, pattern)

    # -- solution modifiers --------------------------------------------------

    def parse_order_by(self) -> tuple[OrderCondition, ...]:
        if not self.accept("KEYWORD", "ORDER"):
            return ()
        self.expect("KEYWORD", "BY")
        conditions: list[OrderCondition] = []
        while True:
            if self.accept("KEYWORD", "ASC"):
                self.expect("PUNCT", "(")
                conditions.append(OrderCondition(self._order_var(), descending=False))
                self.expect("PUNCT", ")")
            elif self.accept("KEYWORD", "DESC"):
                self.expect("PUNCT", "(")
                conditions.append(OrderCondition(self._order_var(), descending=True))
                self.expect("PUNCT", ")")
            elif self.check("VAR"):
                conditions.append(OrderCondition(Variable(self.advance().value)))
            else:
                break
        if not conditions:
            raise SparqlSyntaxError("ORDER BY requires at least one condition")
        return tuple(conditions)

    def _order_var(self) -> Variable:
        return Variable(self.expect("VAR").value)

    def parse_limit_offset(self) -> tuple[int | None, int | None]:
        limit: int | None = None
        offset: int | None = None
        for _ in range(2):
            if self.accept("KEYWORD", "LIMIT"):
                limit = int(self.expect("NUMBER").value)
            elif self.accept("KEYWORD", "OFFSET"):
                offset = int(self.expect("NUMBER").value)
        return limit, offset

    # -- validation ----------------------------------------------------------

    def _validate(self, query: SelectQuery) -> None:
        bgp_variables = query.pattern_variables
        for variable in query.variables:
            if variable not in bgp_variables:
                raise SparqlSyntaxError(
                    f"projected variable {variable} does not occur in the pattern"
                )
        for filter_expression in query.filters:
            for variable in filter_expression.variables:
                if variable not in bgp_variables:
                    raise SparqlSyntaxError(
                        f"filter variable {variable} does not occur in the pattern"
                    )
        aliases = {aggregate.alias for aggregate in query.aggregates}
        if len(aliases) != len(query.aggregates):
            raise SparqlSyntaxError("duplicate aggregate aliases")
        for aggregate in query.aggregates:
            if aggregate.alias in bgp_variables:
                raise SparqlSyntaxError(
                    f"aggregate alias {aggregate.alias} clashes with a pattern variable"
                )
            if aggregate.variable is not None and aggregate.variable not in bgp_variables:
                raise SparqlSyntaxError(
                    f"aggregated variable {aggregate.variable} does not occur in the pattern"
                )
        for variable in query.group_by:
            if variable not in bgp_variables:
                raise SparqlSyntaxError(
                    f"GROUP BY variable {variable} does not occur in the pattern"
                )
        if query.aggregates:
            group_set = set(query.group_by)
            for variable in query.variables:
                if variable not in group_set:
                    raise SparqlSyntaxError(
                        f"projected variable {variable} must appear in GROUP BY "
                        "when aggregates are used"
                    )
        elif query.group_by:
            raise SparqlSyntaxError("GROUP BY requires an aggregate in the projection")
        for condition in query.order_by:
            if condition.variable not in bgp_variables and condition.variable not in aliases:
                raise SparqlSyntaxError(
                    f"ORDER BY variable {condition.variable} does not occur in the pattern"
                )


def parse_sparql(query: str) -> SelectQuery:
    """Parse a SPARQL SELECT query string into a :class:`SelectQuery`.

    Raises:
        SparqlSyntaxError: when the text is not valid SPARQL.
        UnsupportedSparqlError: for valid SPARQL outside the BGP fragment.
    """
    return _Parser(tokenize(query)).parse_query()
