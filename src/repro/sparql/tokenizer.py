"""Tokenizer for the supported SPARQL fragment.

Produces a flat token stream for the recursive-descent parser. Token kinds:

- ``IRIREF``   — ``<http://...>`` (value without the angle brackets)
- ``PNAME``    — prefixed name ``wsdbm:User`` or bare prefix ``wsdbm:``
- ``VAR``      — ``?name`` / ``$name`` (value without the sigil)
- ``STRING``   — quoted literal lexical form (unescaped)
- ``LANGTAG``  — ``@en`` (value without ``@``)
- ``NUMBER``   — integer or decimal lexical form
- ``KEYWORD``  — SELECT/WHERE/... (value upper-cased) and the ``a`` shorthand
- ``PUNCT``    — ``{ } ( ) . ; , = != < <= > >= && || ^^ *``
- ``BNODE``    — ``_:label``
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import SparqlSyntaxError
from ..rdf.terms import unescape_literal

KEYWORDS = {
    "SELECT", "DISTINCT", "REDUCED", "WHERE", "FILTER", "PREFIX", "BASE",
    "LIMIT", "OFFSET", "ORDER", "BY", "ASC", "DESC", "REGEX", "UNION",
    "OPTIONAL", "A", "COUNT", "AS", "GROUP", "ASK", "CONSTRUCT", "DESCRIBE",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+|\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<VAR>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<LANGTAG>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
  | (?P<NUMBER>[+-]?\d+(?:\.\d+)?)
  | (?P<BNODE>_:[A-Za-z0-9][A-Za-z0-9_.-]*)
  | (?P<PNAME>[A-Za-z_][A-Za-z0-9_.-]*?:[A-Za-z0-9_.-]*|[A-Za-z_][A-Za-z0-9_]*)
  | (?P<PUNCT>\^\^|&&|\|\||!=|<=|>=|[{}().;,=<>*!])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


#: Sentinel token appended at the end of every stream.
def _eof(position: int) -> Token:
    return Token("EOF", "", position)


def tokenize(query: str) -> list[Token]:
    """Tokenize a query string.

    Raises:
        SparqlSyntaxError: on characters outside the grammar.
    """
    tokens: list[Token] = []
    pos = 0
    length = len(query)
    while pos < length:
        match = _TOKEN_RE.match(query, pos)
        if match is None:
            raise SparqlSyntaxError(
                f"unexpected character {query[pos]!r} at offset {pos}"
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind == "WS":
            pos = match.end()
            continue
        if kind == "IRIREF":
            tokens.append(Token("IRIREF", text[1:-1], pos))
        elif kind == "VAR":
            tokens.append(Token("VAR", text[1:], pos))
        elif kind == "STRING":
            try:
                tokens.append(Token("STRING", unescape_literal(text[1:-1]), pos))
            except ValueError as exc:
                raise SparqlSyntaxError(f"bad literal at offset {pos}: {exc}") from exc
        elif kind == "LANGTAG":
            tokens.append(Token("LANGTAG", text[1:], pos))
        elif kind == "BNODE":
            tokens.append(Token("BNODE", text[2:], pos))
        elif kind == "PNAME":
            upper = text.upper()
            if ":" not in text and upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, pos))
            elif ":" in text:
                tokens.append(Token("PNAME", text, pos))
            else:
                raise SparqlSyntaxError(
                    f"unexpected identifier {text!r} at offset {pos}"
                )
        else:
            tokens.append(Token(kind, text, pos))
        pos = match.end()
    tokens.append(_eof(pos))
    return tokens
