"""Structural analysis of basic graph patterns.

WatDiv groups its queries by *shape* — star, linear, snowflake, complex —
and the paper's evaluation (§4.1) reports per-shape results. This module
classifies an arbitrary BGP into those classes from its join graph:

- **star** — every triple pattern shares one subject variable;
- **linear** — the patterns form a path: each join variable links exactly
  two patterns and no variable anchors more than two patterns;
- **snowflake** — several stars connected by path edges;
- **complex** — anything denser (cycles, high-degree hubs, mixed shapes).

It also computes the quantities the translators reason about: join
variables, the join-graph degree of each variable, and connectivity.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from .algebra import SelectQuery, TriplePattern, Variable
from ..errors import ValidationError

#: The shape classes, in WatDiv's naming.
SHAPES = ("star", "linear", "snowflake", "complex")


@dataclass(frozen=True)
class BgpAnalysis:
    """Structural facts about one basic graph pattern.

    Attributes:
        shape: one of :data:`SHAPES`.
        num_patterns: triple-pattern count.
        join_variables: variables occurring in two or more patterns.
        subject_stars: subject variables anchoring ≥2 patterns, with sizes.
        is_connected: whether the join graph has a single component.
        has_cycle: whether the join graph contains a cycle.
    """

    shape: str
    num_patterns: int
    join_variables: frozenset[Variable]
    subject_stars: dict[Variable, int]
    is_connected: bool
    has_cycle: bool


def analyze_bgp(patterns: tuple[TriplePattern, ...] | list[TriplePattern]) -> BgpAnalysis:
    """Classify a conjunction of triple patterns by shape."""
    patterns = list(patterns)
    if not patterns:
        raise ValidationError("cannot analyze an empty pattern list")

    occurrences: dict[Variable, list[int]] = defaultdict(list)
    for index, pattern in enumerate(patterns):
        for variable in pattern.variables:
            occurrences[variable].append(index)
    join_variables = {v for v, where in occurrences.items() if len(where) > 1}

    subject_stars: dict[Variable, int] = {}
    for variable in join_variables | set(occurrences):
        size = sum(1 for p in patterns if p.subject == variable)
        if size >= 2:
            subject_stars[variable] = size

    connected = _is_connected(patterns, occurrences)
    cycle = _has_cycle(patterns, join_variables)

    shape = _classify(patterns, join_variables, subject_stars, connected, cycle)
    return BgpAnalysis(
        shape=shape,
        num_patterns=len(patterns),
        join_variables=frozenset(join_variables),
        subject_stars=subject_stars,
        is_connected=connected,
        has_cycle=cycle,
    )


def analyze_query(query: SelectQuery) -> BgpAnalysis:
    """Classify a query's full pattern set (required + optional + union)."""
    return analyze_bgp(query.all_patterns())


def _classify(
    patterns: list[TriplePattern],
    join_variables: set[Variable],
    subject_stars: dict[Variable, int],
    connected: bool,
    cycle: bool,
) -> str:
    if len(patterns) == 1:
        return "linear"
    if not connected or cycle:
        return "complex"
    if len(subject_stars) == 1 and sum(subject_stars.values()) == len(patterns):
        return "star"
    # Degree of each join variable in the join graph (patterns it touches).
    degrees = {
        variable: sum(1 for p in patterns if variable in p.variables)
        for variable in join_variables
    }
    if degrees and max(degrees.values()) <= 2 and not subject_stars:
        return "linear"
    if subject_stars:
        return "snowflake"
    return "complex"


def _is_connected(patterns: list[TriplePattern], occurrences) -> bool:
    if len(patterns) <= 1:
        return True
    adjacency: dict[int, set[int]] = defaultdict(set)
    for indexes in occurrences.values():
        for a in indexes:
            for b in indexes:
                if a != b:
                    adjacency[a].add(b)
    # Constant terms shared between patterns also connect them.
    by_constant: dict[str, list[int]] = defaultdict(list)
    for index, pattern in enumerate(patterns):
        for slot in (pattern.subject, pattern.object):
            if not isinstance(slot, Variable):
                by_constant[slot.n3()].append(index)
    for indexes in by_constant.values():
        for a in indexes:
            for b in indexes:
                if a != b:
                    adjacency[a].add(b)
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return len(seen) == len(patterns)


def _has_cycle(patterns: list[TriplePattern], join_variables: set[Variable]) -> bool:
    """Cycle detection on the bipartite pattern/variable incidence graph.

    A BGP's join graph has a cycle exactly when the bipartite graph between
    patterns and their join variables has more edges than a forest allows.
    """
    edges = 0
    nodes = len(patterns)
    used_variables: set[Variable] = set()
    for index, pattern in enumerate(patterns):
        for variable in pattern.variables & join_variables:
            edges += 1
            used_variables.add(variable)
    nodes += len(used_variables)
    # A connected forest has nodes − components edges; count components.
    components = _count_components(patterns, join_variables, used_variables)
    return edges > nodes - components


def _count_components(patterns, join_variables, used_variables) -> int:
    parent: dict[object, object] = {}

    def find(x):
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        parent[find(a)] = find(b)

    for index, pattern in enumerate(patterns):
        find(("p", index))
        for variable in pattern.variables & join_variables:
            union(("p", index), ("v", variable))
    roots = {find(("p", i)) for i in range(len(patterns))}
    roots |= {find(("v", v)) for v in used_variables}
    return len(roots)
