"""SPARQL front end: tokenizer, parser, algebra, and shape analysis."""

from .analysis import BgpAnalysis, analyze_bgp, analyze_query
from .algebra import (
    And,
    Comparison,
    CountAggregate,
    FilterExpression,
    Or,
    OrderCondition,
    Regex,
    SelectQuery,
    TriplePattern,
    Variable,
)
from .parser import DEFAULT_PREFIXES, parse_sparql
from .tokenizer import Token, tokenize

__all__ = [
    "And",
    "BgpAnalysis",
    "CountAggregate",
    "analyze_bgp",
    "analyze_query",
    "Comparison",
    "DEFAULT_PREFIXES",
    "FilterExpression",
    "Or",
    "OrderCondition",
    "Regex",
    "SelectQuery",
    "Token",
    "TriplePattern",
    "Variable",
    "parse_sparql",
    "tokenize",
]
