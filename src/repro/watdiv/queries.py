"""The WatDiv basic-testing query set (paper §4.1).

Twenty query templates in four shape classes — Complex (C1-C3), Snowflake
(F1-F5), Linear (L1-L5), and Star (S1-S7) — structurally faithful to the
published WatDiv basic testing templates. ``%kind%`` placeholders are
instantiated deterministically from a generated dataset, as WatDiv's query
generator instantiates its ``%x%`` parameters from the data.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .generator import WatDivDataset

_PREAMBLE = """\
PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
PREFIX sorg: <http://schema.org/>
PREFIX rev: <http://purl.org/stuff/rev#>
PREFIX gr: <http://purl.org/goodrelations/>
PREFIX gn: <http://www.geonames.org/ontology#>
PREFIX og: <http://ogp.me/ns#>
PREFIX mo: <http://purl.org/ontology/mo/>
PREFIX foaf: <http://xmlns.com/foaf/>
PREFIX dc: <http://purl.org/dc/terms/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
"""


@dataclass(frozen=True)
class QueryTemplate:
    """One template: name, shape class, and parameterized SPARQL text."""

    name: str
    group: str
    template: str

    def instantiate(self, dataset: WatDivDataset, salt: int = 0) -> str:
        """Fill ``%kind%`` placeholders with IRIs from the dataset."""
        counter = [salt]

        def substitute(match: re.Match) -> str:
            kind = match.group(1)
            value = dataset.placeholder(kind, counter[0])
            counter[0] += 1
            return value.n3()

        body = re.sub(r"%([a-z_]+)%", substitute, self.template)
        return _PREAMBLE + body


TEMPLATES: tuple[QueryTemplate, ...] = (
    # -- Complex -----------------------------------------------------------------
    QueryTemplate(
        "C1",
        "C",
        """SELECT ?v0 ?v4 ?v6 ?v7 WHERE {
  ?v0 sorg:caption ?v1 .
  ?v0 sorg:text ?v2 .
  ?v0 sorg:contentRating ?v3 .
  ?v0 rev:hasReview ?v4 .
  ?v4 rev:title ?v5 .
  ?v4 rev:reviewer ?v6 .
  ?v7 sorg:actor ?v6 .
  ?v7 sorg:language ?v8 .
}""",
    ),
    QueryTemplate(
        "C2",
        "C",
        """SELECT ?v0 ?v3 ?v4 ?v8 WHERE {
  ?v0 sorg:legalName ?v1 .
  ?v0 gr:offers ?v2 .
  ?v2 sorg:eligibleRegion %country% .
  ?v2 gr:includes ?v3 .
  ?v4 sorg:jobTitle ?v5 .
  ?v4 foaf:homepage ?v6 .
  ?v4 wsdbm:makesPurchase ?v7 .
  ?v7 wsdbm:purchaseFor ?v3 .
  ?v3 rev:hasReview ?v8 .
  ?v8 rev:totalVotes ?v9 .
}""",
    ),
    QueryTemplate(
        "C3",
        "C",
        """SELECT ?v0 WHERE {
  ?v0 wsdbm:likes ?v1 .
  ?v0 wsdbm:friendOf ?v2 .
  ?v0 dc:Location ?v3 .
  ?v0 foaf:age ?v4 .
  ?v0 wsdbm:gender ?v5 .
  ?v0 foaf:givenName ?v6 .
}""",
    ),
    # -- Snowflake ------------------------------------------------------------------
    QueryTemplate(
        "F1",
        "F",
        """SELECT ?v0 ?v2 ?v3 ?v4 ?v5 WHERE {
  ?v0 og:tag %topic% .
  ?v0 rdf:type ?v2 .
  ?v3 sorg:trailer ?v4 .
  ?v3 sorg:keywords ?v5 .
  ?v3 wsdbm:hasGenre ?v0 .
  ?v3 rdf:type %product_category% .
}""",
    ),
    QueryTemplate(
        "F2",
        "F",
        """SELECT ?v0 ?v1 ?v2 ?v4 ?v5 ?v6 ?v7 WHERE {
  ?v0 foaf:homepage ?v1 .
  ?v0 og:title ?v2 .
  ?v0 rdf:type ?v3 .
  ?v0 sorg:caption ?v4 .
  ?v0 sorg:description ?v5 .
  ?v1 sorg:url ?v6 .
  ?v1 wsdbm:hits ?v7 .
  ?v0 wsdbm:hasGenre %sub_genre% .
}""",
    ),
    QueryTemplate(
        "F3",
        "F",
        """SELECT ?v0 ?v1 ?v2 ?v4 ?v5 ?v6 WHERE {
  ?v0 sorg:contentRating ?v1 .
  ?v0 sorg:contentSize ?v2 .
  ?v0 wsdbm:hasGenre %sub_genre% .
  ?v4 wsdbm:makesPurchase ?v5 .
  ?v5 wsdbm:purchaseDate ?v6 .
  ?v5 wsdbm:purchaseFor ?v0 .
}""",
    ),
    QueryTemplate(
        "F4",
        "F",
        """SELECT ?v0 ?v1 ?v2 ?v3 ?v4 ?v5 ?v7 ?v8 WHERE {
  ?v0 foaf:homepage ?v1 .
  ?v2 gr:includes ?v0 .
  ?v0 og:tag %topic% .
  ?v0 sorg:description ?v3 .
  ?v0 sorg:contentSize ?v8 .
  ?v1 sorg:url ?v4 .
  ?v1 wsdbm:hits ?v5 .
  ?v1 sorg:language %language% .
  ?v7 wsdbm:likes ?v0 .
}""",
    ),
    QueryTemplate(
        "F5",
        "F",
        """SELECT ?v0 ?v1 ?v3 ?v4 ?v5 ?v6 WHERE {
  ?v0 gr:includes ?v1 .
  %retailer% gr:offers ?v0 .
  ?v0 gr:price ?v3 .
  ?v0 gr:validThrough ?v4 .
  ?v1 og:title ?v5 .
  ?v1 rdf:type ?v6 .
}""",
    ),
    # -- Linear ----------------------------------------------------------------------
    QueryTemplate(
        "L1",
        "L",
        """SELECT ?v0 ?v2 ?v3 WHERE {
  ?v0 wsdbm:subscribes %website% .
  ?v2 sorg:caption ?v3 .
  ?v0 wsdbm:likes ?v2 .
}""",
    ),
    QueryTemplate(
        "L2",
        "L",
        """SELECT ?v1 ?v2 WHERE {
  %city% gn:parentCountry ?v1 .
  ?v2 wsdbm:likes %product% .
  ?v2 sorg:nationality ?v1 .
}""",
    ),
    QueryTemplate(
        "L3",
        "L",
        """SELECT ?v0 ?v1 WHERE {
  ?v0 wsdbm:likes ?v1 .
  ?v0 wsdbm:subscribes %website% .
}""",
    ),
    QueryTemplate(
        "L4",
        "L",
        """SELECT ?v0 ?v2 WHERE {
  ?v0 og:tag %topic% .
  ?v0 sorg:caption ?v2 .
}""",
    ),
    QueryTemplate(
        "L5",
        "L",
        """SELECT ?v0 ?v1 ?v3 WHERE {
  ?v0 sorg:jobTitle ?v1 .
  %city% gn:parentCountry ?v3 .
  ?v0 sorg:nationality ?v3 .
}""",
    ),
    # -- Star ----------------------------------------------------------------------------
    QueryTemplate(
        "S1",
        "S",
        """SELECT ?v0 ?v1 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 ?v9 WHERE {
  ?v0 gr:includes ?v1 .
  %retailer% gr:offers ?v0 .
  ?v0 gr:price ?v3 .
  ?v0 gr:serialNumber ?v4 .
  ?v0 gr:validFrom ?v5 .
  ?v0 gr:validThrough ?v6 .
  ?v0 sorg:eligibleQuantity ?v7 .
  ?v0 sorg:eligibleRegion ?v8 .
  ?v0 sorg:priceValidUntil ?v9 .
}""",
    ),
    QueryTemplate(
        "S2",
        "S",
        """SELECT ?v0 ?v1 ?v3 WHERE {
  ?v0 dc:Location ?v1 .
  ?v0 sorg:nationality %country% .
  ?v0 wsdbm:gender ?v3 .
  ?v0 rdf:type %role% .
}""",
    ),
    QueryTemplate(
        "S3",
        "S",
        """SELECT ?v0 ?v2 ?v3 ?v4 WHERE {
  ?v0 rdf:type %product_category% .
  ?v0 sorg:caption ?v2 .
  ?v0 wsdbm:hasGenre ?v3 .
  ?v0 sorg:publisher ?v4 .
}""",
    ),
    QueryTemplate(
        "S4",
        "S",
        """SELECT ?v0 ?v2 ?v3 WHERE {
  ?v0 foaf:age %age_group% .
  ?v0 foaf:familyName ?v2 .
  ?v3 mo:artist ?v0 .
  ?v0 sorg:nationality %country% .
}""",
    ),
    QueryTemplate(
        "S5",
        "S",
        """SELECT ?v0 ?v2 ?v3 WHERE {
  ?v0 rdf:type %product_category% .
  ?v0 sorg:description ?v2 .
  ?v0 sorg:keywords ?v3 .
  ?v0 sorg:language %language% .
}""",
    ),
    QueryTemplate(
        "S6",
        "S",
        """SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 mo:conductor ?v1 .
  ?v0 rdf:type ?v2 .
  ?v0 wsdbm:hasGenre %sub_genre% .
}""",
    ),
    QueryTemplate(
        "S7",
        "S",
        """SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 rdf:type ?v1 .
  ?v0 sorg:text ?v2 .
  %user% wsdbm:likes ?v0 .
}""",
    ),
)

#: Query names in benchmark display order.
QUERY_NAMES: tuple[str, ...] = tuple(template.name for template in TEMPLATES)

#: Shape classes in paper order.
QUERY_GROUPS: tuple[str, ...] = ("C", "F", "L", "S")


@dataclass(frozen=True)
class BenchmarkQuery:
    """One instantiated benchmark query."""

    name: str
    group: str
    text: str


def basic_query_set(dataset: WatDivDataset) -> list[BenchmarkQuery]:
    """Instantiate all twenty templates against a dataset.

    The salt is derived from the template name so each query picks its own
    (deterministic) placeholder entities.
    """
    queries = []
    for index, template in enumerate(TEMPLATES):
        queries.append(
            BenchmarkQuery(
                name=template.name,
                group=template.group,
                text=template.instantiate(dataset, salt=index),
            )
        )
    return queries


def queries_by_group(queries: list[BenchmarkQuery]) -> dict[str, list[BenchmarkQuery]]:
    """Group instantiated queries by their shape class."""
    grouped: dict[str, list[BenchmarkQuery]] = {group: [] for group in QUERY_GROUPS}
    for query in queries:
        grouped[query.group].append(query)
    return grouped
