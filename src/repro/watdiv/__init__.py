"""WatDiv-style workload: schema, generator, and the 20 basic queries."""

from .generator import WatDivDataset, generate_watdiv
from .queries import (
    QUERY_GROUPS,
    QUERY_NAMES,
    TEMPLATES,
    BenchmarkQuery,
    QueryTemplate,
    basic_query_set,
    queries_by_group,
)
from .schema import MULTIVALUED_PROPERTIES, Populations, entity_iri

__all__ = [
    "BenchmarkQuery",
    "MULTIVALUED_PROPERTIES",
    "Populations",
    "QUERY_GROUPS",
    "QUERY_NAMES",
    "QueryTemplate",
    "TEMPLATES",
    "WatDivDataset",
    "basic_query_set",
    "entity_iri",
    "generate_watdiv",
    "queries_by_group",
]
