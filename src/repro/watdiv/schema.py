"""WatDiv-style schema: namespaces, entity classes, and property universe.

The Waterloo SPARQL Diversity Test Suite (Aluç et al., ISWC 2014) models an
e-commerce universe — users, products, reviews, offers, retailers, websites —
whose property mix stresses very different query shapes. This module pins
down the schema our generator reproduces: entity classes with scale-dependent
populations and the properties used by the 20 basic-testing queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import ValidationError

WSDBM = "http://db.uwaterloo.ca/~galuc/wsdbm/"
FOAF = "http://xmlns.com/foaf/"
DC = "http://purl.org/dc/terms/"
SORG = "http://schema.org/"
GR = "http://purl.org/goodrelations/"
GN = "http://www.geonames.org/ontology#"
MO = "http://purl.org/ontology/mo/"
OG = "http://ogp.me/ns#"
REV = "http://purl.org/stuff/rev#"
RDF = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
XSD = "http://www.w3.org/2001/XMLSchema#"

RDF_TYPE = RDF + "type"


def entity_iri(kind: str, index: int) -> str:
    """The IRI of the ``index``-th entity of a class, e.g. ``wsdbm:User37``."""
    return f"{WSDBM}{kind}{index}"


@dataclass(frozen=True)
class Populations:
    """Entity counts derived from the scale factor.

    ``scale`` roughly equals the user count; total triples come out at about
    55-65 × scale, so ``scale=1700`` gives a ~100k-triple graph (a 1/1000
    scale model of the paper's WatDiv100M).
    """

    scale: int

    def __post_init__(self) -> None:
        if self.scale < 10:
            raise ValidationError("scale must be at least 10")

    @property
    def users(self) -> int:
        return self.scale

    @property
    def products(self) -> int:
        return max(25, self.scale // 2)

    @property
    def reviews(self) -> int:
        return max(30, int(self.products * 1.5))

    @property
    def offers(self) -> int:
        return max(20, int(self.products * 0.9))

    @property
    def retailers(self) -> int:
        return max(3, self.scale // 60)

    @property
    def websites(self) -> int:
        return max(5, self.scale // 20)

    @property
    def purchases(self) -> int:
        return max(25, int(self.scale * 1.2))

    @property
    def cities(self) -> int:
        return max(12, self.scale // 40)

    @property
    def countries(self) -> int:
        return 25

    @property
    def topics(self) -> int:
        return max(16, self.scale // 25)

    @property
    def sub_genres(self) -> int:
        return 21

    @property
    def languages(self) -> int:
        return 10

    @property
    def product_categories(self) -> int:
        return 15

    @property
    def roles(self) -> int:
        return 3

    @property
    def age_groups(self) -> int:
        return 9


#: Properties that are multi-valued by construction (list columns in the PT).
MULTIVALUED_PROPERTIES = frozenset(
    {
        WSDBM + "follows",
        WSDBM + "friendOf",
        WSDBM + "likes",
        WSDBM + "subscribes",
        WSDBM + "makesPurchase",
        WSDBM + "hasGenre",
        OG + "tag",
        REV + "hasReview",
        SORG + "eligibleRegion",
    }
)

#: Query-relevant predicate IRIs, for documentation and tests.
ALL_PROPERTIES = (
    RDF_TYPE,
    WSDBM + "follows",
    WSDBM + "friendOf",
    WSDBM + "likes",
    WSDBM + "subscribes",
    WSDBM + "makesPurchase",
    WSDBM + "purchaseFor",
    WSDBM + "purchaseDate",
    WSDBM + "userId",
    WSDBM + "gender",
    WSDBM + "hasGenre",
    WSDBM + "hits",
    FOAF + "familyName",
    FOAF + "givenName",
    FOAF + "age",
    FOAF + "homepage",
    DC + "Location",
    SORG + "nationality",
    SORG + "jobTitle",
    SORG + "email",
    SORG + "caption",
    SORG + "description",
    SORG + "keywords",
    SORG + "contentRating",
    SORG + "contentSize",
    SORG + "text",
    SORG + "language",
    SORG + "trailer",
    SORG + "publisher",
    SORG + "actor",
    SORG + "url",
    SORG + "legalName",
    SORG + "eligibleRegion",
    SORG + "eligibleQuantity",
    SORG + "priceValidUntil",
    OG + "title",
    OG + "tag",
    MO + "artist",
    MO + "conductor",
    GR + "offers",
    GR + "includes",
    GR + "price",
    GR + "serialNumber",
    GR + "validFrom",
    GR + "validThrough",
    GN + "parentCountry",
    REV + "hasReview",
    REV + "reviewer",
    REV + "title",
    REV + "text",
    REV + "rating",
    REV + "totalVotes",
)
