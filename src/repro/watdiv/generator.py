"""WatDiv-style dataset generator.

Reproduces the *structure* of the WatDiv data model at laptop scale: the same
entity classes, property domains/ranges, multi-valued properties, and
correlations (products have genres/topics; users like products, follow each
other, and make purchases; retailers offer products through offers; reviews
link products to users). Deterministic for a given ``(scale, seed)``.

The real WatDiv100M dataset (the paper's workload) is a 100M-triple instance
of this schema; our generator produces the closest synthetic equivalent the
evaluation can run on a laptop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..rdf.graph import Graph
from ..rdf.terms import IRI, Literal, Triple
from .schema import (
    DC,
    FOAF,
    GN,
    GR,
    MO,
    OG,
    RDF_TYPE,
    REV,
    SORG,
    WSDBM,
    XSD,
    Populations,
    entity_iri,
)

_WORDS = (
    "alpha", "bravo", "cirrus", "delta", "ember", "fjord", "glade", "harbor",
    "indigo", "juniper", "krypton", "lumen", "meadow", "nimbus", "onyx",
    "prairie", "quartz", "ridge", "summit", "tundra", "umber", "vertex",
    "willow", "xenon", "yonder", "zephyr",
)


@dataclass
class WatDivDataset:
    """A generated graph plus the entity registries queries draw from."""

    graph: Graph
    scale: int
    seed: int
    users: list[IRI] = field(default_factory=list)
    products: list[IRI] = field(default_factory=list)
    reviews: list[IRI] = field(default_factory=list)
    offers: list[IRI] = field(default_factory=list)
    retailers: list[IRI] = field(default_factory=list)
    websites: list[IRI] = field(default_factory=list)
    purchases: list[IRI] = field(default_factory=list)
    cities: list[IRI] = field(default_factory=list)
    countries: list[IRI] = field(default_factory=list)
    topics: list[IRI] = field(default_factory=list)
    sub_genres: list[IRI] = field(default_factory=list)
    languages: list[IRI] = field(default_factory=list)
    product_categories: list[IRI] = field(default_factory=list)
    roles: list[IRI] = field(default_factory=list)
    age_groups: list[IRI] = field(default_factory=list)

    def placeholder(self, kind: str, salt: int = 0) -> IRI:
        """A deterministic representative entity for query templates.

        Always picks from the front third of the registry, where the Zipfian
        assignment concentrates references, so instantiated queries have
        non-empty results — mirroring how WatDiv instantiates ``%x%``
        placeholders from the generated data.
        """
        registry = {
            "user": self.users,
            "product": self.products,
            "retailer": self.retailers,
            "website": self.websites,
            "city": self.cities,
            "country": self.countries,
            "topic": self.topics,
            "sub_genre": self.sub_genres,
            "language": self.languages,
            "product_category": self.product_categories,
            "role": self.roles,
            "age_group": self.age_groups,
        }[kind]
        window = max(1, len(registry) // 3)
        return registry[salt % window]


def _zipf_choice(rng: random.Random, items: list[IRI]) -> IRI:
    """Zipf-flavoured pick: low indexes are much more popular (WatDiv's
    popularity skew, which is what makes some placeholders selective and
    others not)."""
    n = len(items)
    # Inverse-CDF sampling of a discrete power law via a squared uniform.
    index = int(n * rng.random() ** 2.2)
    return items[min(index, n - 1)]


def _sample_distinct(rng: random.Random, items: list[IRI], count: int) -> list[IRI]:
    picked: dict[str, IRI] = {}
    attempts = 0
    while len(picked) < count and attempts < count * 4:
        item = _zipf_choice(rng, items)
        picked[item.value] = item
        attempts += 1
    return list(picked.values())


def _string(rng: random.Random, words: int) -> Literal:
    return Literal(" ".join(rng.choice(_WORDS) for _ in range(words)))


def _integer(value: int) -> Literal:
    return Literal(str(value), datatype=XSD + "integer")


def _date(rng: random.Random) -> Literal:
    year = rng.randint(2000, 2017)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return Literal(f"{year:04d}-{month:02d}-{day:02d}", datatype=XSD + "date")


def generate_watdiv(scale: int = 300, seed: int = 7) -> WatDivDataset:
    """Generate a deterministic WatDiv-style dataset.

    Args:
        scale: roughly the user count; triples ≈ 55-65 × scale.
        seed: RNG seed; the same (scale, seed) always yields the same graph.
    """
    populations = Populations(scale)
    rng = random.Random(seed)
    graph = Graph()
    dataset = WatDivDataset(graph=graph, scale=scale, seed=seed)

    def add(subject: IRI, predicate: str, obj) -> None:
        graph.add(Triple(subject, IRI(predicate), obj))

    # -- dictionaries -----------------------------------------------------------
    dataset.countries = [IRI(entity_iri("Country", i)) for i in range(populations.countries)]
    dataset.topics = [IRI(entity_iri("Topic", i)) for i in range(populations.topics)]
    dataset.sub_genres = [IRI(entity_iri("SubGenre", i)) for i in range(populations.sub_genres)]
    dataset.languages = [IRI(entity_iri("Language", i)) for i in range(populations.languages)]
    dataset.product_categories = [
        IRI(entity_iri("ProductCategory", i)) for i in range(populations.product_categories)
    ]
    dataset.roles = [IRI(entity_iri("Role", i)) for i in range(populations.roles)]
    dataset.age_groups = [IRI(entity_iri("AgeGroup", i)) for i in range(populations.age_groups)]

    # Sub-genres are first-class entities in WatDiv: they are typed and
    # carry topic tags, which query F1 navigates through.
    genre_class = IRI(entity_iri("Genre", 0))
    for sub_genre in dataset.sub_genres:
        add(sub_genre, RDF_TYPE, genre_class)
        for topic in _sample_distinct(rng, dataset.topics, rng.randint(1, 2)):
            add(sub_genre, OG + "tag", topic)

    # -- geography ---------------------------------------------------------------
    dataset.cities = [IRI(entity_iri("City", i)) for i in range(populations.cities)]
    for city in dataset.cities:
        add(city, GN + "parentCountry", _zipf_choice(rng, dataset.countries))

    # -- websites -----------------------------------------------------------------
    dataset.websites = [IRI(entity_iri("Website", i)) for i in range(populations.websites)]
    for website in dataset.websites:
        add(website, SORG + "url", _string(rng, 1))
        add(website, WSDBM + "hits", _integer(rng.randint(1, 1_000_000)))
        if rng.random() < 0.6:
            add(website, SORG + "language", _zipf_choice(rng, dataset.languages))

    # -- users ----------------------------------------------------------------------
    dataset.users = [IRI(entity_iri("User", i)) for i in range(populations.users)]
    for user in dataset.users:
        add(user, RDF_TYPE, _zipf_choice(rng, dataset.roles))
        add(user, WSDBM + "userId", _integer(rng.randint(1, 10 * populations.users)))
        if rng.random() < 0.9:
            add(user, FOAF + "givenName", _string(rng, 1))
        if rng.random() < 0.9:
            add(user, FOAF + "familyName", _string(rng, 1))
        if rng.random() < 0.8:
            add(user, WSDBM + "gender", _string(rng, 1))
        if rng.random() < 0.7:
            add(user, FOAF + "age", _zipf_choice(rng, dataset.age_groups))
        if rng.random() < 0.6:
            add(user, DC + "Location", _zipf_choice(rng, dataset.cities))
        if rng.random() < 0.7:
            add(user, SORG + "nationality", _zipf_choice(rng, dataset.countries))
        if rng.random() < 0.25:
            add(user, SORG + "jobTitle", _string(rng, 1))
        if rng.random() < 0.3:
            add(user, SORG + "email", _string(rng, 1))
        if rng.random() < 0.2:
            add(user, FOAF + "homepage", _zipf_choice(rng, dataset.websites))

    # -- social edges (multi-valued) ---------------------------------------------------
    for user in dataset.users:
        for friend in _sample_distinct(rng, dataset.users, rng.randint(0, 12)):
            if friend != user:
                add(user, WSDBM + "follows", friend)
        for friend in _sample_distinct(rng, dataset.users, rng.randint(2, 9)):
            if friend != user:
                add(user, WSDBM + "friendOf", friend)
        for website in _sample_distinct(rng, dataset.websites, rng.randint(0, 2)):
            add(user, WSDBM + "subscribes", website)

    # -- products --------------------------------------------------------------------------
    dataset.products = [IRI(entity_iri("Product", i)) for i in range(populations.products)]
    for product in dataset.products:
        add(product, RDF_TYPE, _zipf_choice(rng, dataset.product_categories))
        for genre in _sample_distinct(rng, dataset.sub_genres, rng.randint(1, 3)):
            add(product, WSDBM + "hasGenre", genre)
        for topic in _sample_distinct(rng, dataset.topics, rng.randint(0, 2)):
            add(product, OG + "tag", topic)
        if rng.random() < 0.75:
            add(product, OG + "title", _string(rng, 2))
        if rng.random() < 0.5:
            add(product, SORG + "caption", _string(rng, 3))
        if rng.random() < 0.6:
            add(product, SORG + "description", _string(rng, 5))
        if rng.random() < 0.45:
            add(product, SORG + "keywords", _string(rng, 3))
        if rng.random() < 0.35:
            add(product, SORG + "contentRating", _string(rng, 1))
        if rng.random() < 0.35:
            add(product, SORG + "contentSize", _integer(rng.randint(1, 5000)))
        if rng.random() < 0.4:
            add(product, SORG + "text", _string(rng, 6))
        if rng.random() < 0.5:
            add(product, SORG + "language", _zipf_choice(rng, dataset.languages))
        if rng.random() < 0.2:
            add(product, SORG + "trailer", _string(rng, 1))
        if rng.random() < 0.3:
            add(product, SORG + "publisher", _string(rng, 1))
        if rng.random() < 0.25:
            add(product, SORG + "actor", _zipf_choice(rng, dataset.users))
        if rng.random() < 0.2:
            add(product, MO + "artist", _zipf_choice(rng, dataset.users))
        if rng.random() < 0.12:
            add(product, MO + "conductor", _zipf_choice(rng, dataset.users))
        if rng.random() < 0.25:
            add(product, FOAF + "homepage", _zipf_choice(rng, dataset.websites))

    # -- likes (user → product, multi-valued, Zipf on products) ---------------------------------
    for user in dataset.users:
        for product in _sample_distinct(rng, dataset.products, rng.randint(1, 8)):
            add(user, WSDBM + "likes", product)

    # -- reviews -----------------------------------------------------------------------------------
    dataset.reviews = [IRI(entity_iri("Review", i)) for i in range(populations.reviews)]
    for review in dataset.reviews:
        product = _zipf_choice(rng, dataset.products)
        add(product, REV + "hasReview", review)
        add(review, REV + "reviewer", _zipf_choice(rng, dataset.users))
        add(review, REV + "rating", _integer(rng.randint(1, 10)))
        if rng.random() < 0.7:
            add(review, REV + "title", _string(rng, 2))
        if rng.random() < 0.5:
            add(review, REV + "text", _string(rng, 8))
        if rng.random() < 0.6:
            add(review, REV + "totalVotes", _integer(rng.randint(0, 500)))

    # -- retailers and offers ---------------------------------------------------------------------------
    dataset.retailers = [IRI(entity_iri("Retailer", i)) for i in range(populations.retailers)]
    dataset.offers = [IRI(entity_iri("Offer", i)) for i in range(populations.offers)]
    for retailer in dataset.retailers:
        add(retailer, SORG + "legalName", _string(rng, 2))
    for index, offer in enumerate(dataset.offers):
        retailer = dataset.retailers[index % len(dataset.retailers)]
        add(retailer, GR + "offers", offer)
        add(offer, GR + "includes", _zipf_choice(rng, dataset.products))
        add(offer, GR + "price", _integer(rng.randint(1, 2000)))
        if rng.random() < 0.65:
            add(offer, GR + "serialNumber", _integer(rng.randint(1, 10**6)))
        if rng.random() < 0.6:
            add(offer, GR + "validFrom", _date(rng))
        if rng.random() < 0.6:
            add(offer, GR + "validThrough", _date(rng))
        if rng.random() < 0.55:
            add(offer, SORG + "eligibleQuantity", _integer(rng.randint(1, 100)))
        for country in _sample_distinct(rng, dataset.countries, rng.randint(0, 3)):
            add(offer, SORG + "eligibleRegion", country)
        if rng.random() < 0.45:
            add(offer, SORG + "priceValidUntil", _date(rng))

    # -- purchases ----------------------------------------------------------------------------------------
    dataset.purchases = [IRI(entity_iri("Purchase", i)) for i in range(populations.purchases)]
    for purchase in dataset.purchases:
        buyer = _zipf_choice(rng, dataset.users)
        add(buyer, WSDBM + "makesPurchase", purchase)
        add(purchase, WSDBM + "purchaseFor", _zipf_choice(rng, dataset.products))
        if rng.random() < 0.8:
            add(purchase, WSDBM + "purchaseDate", _date(rng))

    return dataset
