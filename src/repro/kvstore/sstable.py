"""Immutable sorted runs (SSTable analogue) for the key-value store.

A :class:`SortedRun` is a frozen, sorted sequence of ``(key, value)`` string
pairs supporting binary-searched range scans — the storage primitive that
gives Accumulo (and thus Rya) its fast point and range lookups.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Iterator
from ..errors import ValidationError


class SortedRun:
    """An immutable sorted run of key-value pairs with unique keys."""

    def __init__(self, items: Iterable[tuple[str, str]]):
        pairs = sorted(items)
        self._keys = [key for key, _ in pairs]
        self._values = [value for _, value in pairs]
        for i in range(1, len(self._keys)):
            if self._keys[i] == self._keys[i - 1]:
                raise ValidationError(f"duplicate key in sorted run: {self._keys[i]!r}")

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return zip(iter(self._keys), iter(self._values))

    @property
    def first_key(self) -> str | None:
        return self._keys[0] if self._keys else None

    @property
    def last_key(self) -> str | None:
        return self._keys[-1] if self._keys else None

    def get(self, key: str) -> str | None:
        """Point lookup; ``None`` when absent."""
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return self._values[index]
        return None

    def scan(self, start: str | None = None, stop: str | None = None) -> Iterator[tuple[str, str]]:
        """Yield pairs with ``start <= key < stop`` in key order.

        ``None`` bounds are open: scan from the beginning / to the end.
        """
        index = 0 if start is None else bisect_left(self._keys, start)
        while index < len(self._keys):
            key = self._keys[index]
            if stop is not None and key >= stop:
                return
            yield key, self._values[index]
            index += 1

    def seek_position(self, start: str | None) -> int:
        """Binary-search position for a scan start (exposed for cost metrics)."""
        return 0 if start is None else bisect_left(self._keys, start)


def merge_runs(runs: list[SortedRun]) -> SortedRun:
    """Merge runs into one; later runs win on duplicate keys (compaction)."""
    merged: dict[str, str] = {}
    for run in runs:
        for key, value in run:
            merged[key] = value
    return SortedRun(merged.items())


def prefix_upper_bound(prefix: str) -> str | None:
    """The smallest string greater than every string with ``prefix``.

    Returns ``None`` when no such bound exists (prefix of all ``\\uffff``).
    """
    chars = list(prefix)
    while chars:
        code = ord(chars[-1])
        if code < 0x10FFFF:
            chars[-1] = chr(code + 1)
            return "".join(chars)
        chars.pop()
    return None
