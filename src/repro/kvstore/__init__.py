"""Sorted key-value store (mini-Accumulo): sorted runs, tablets, scans."""

from .sstable import SortedRun, merge_runs, prefix_upper_bound
from .store import ScanMetrics, SortedKeyValueStore, Tablet

__all__ = [
    "ScanMetrics",
    "SortedKeyValueStore",
    "SortedRun",
    "Tablet",
    "merge_runs",
    "prefix_upper_bound",
]
