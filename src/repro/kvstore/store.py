"""Sorted key-value store with tablets (mini-Accumulo).

Data lives in an in-memory memtable plus frozen :class:`SortedRun` files; a
scan merge-reads all of them. Keys are range-partitioned into *tablets*
assigned to tablet servers, as in Accumulo, so the store can report which
server answers a scan and account per-server load.

Scan cost accounting (seeks and entries read) feeds the Rya baseline's
simulated query-time model.
"""

from __future__ import annotations

import heapq
import zlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from .sstable import SortedRun, merge_runs, prefix_upper_bound
from ..errors import TableNotFoundError, ValidationError

#: Flush the memtable into a sorted run once it reaches this many entries.
DEFAULT_MEMTABLE_LIMIT = 100_000


@dataclass
class ScanMetrics:
    """Cumulative scan-side cost counters."""

    seeks: int = 0
    entries_read: int = 0
    scans: int = 0

    def reset(self) -> None:
        self.seeks = 0
        self.entries_read = 0
        self.scans = 0


@dataclass(frozen=True)
class Tablet:
    """A contiguous key range served by one tablet server.

    ``start`` is inclusive and ``stop`` exclusive; ``None`` means open-ended.
    """

    start: str | None
    stop: str | None
    server: int


@dataclass
class _TableData:
    memtable: dict[str, str] = field(default_factory=dict)
    runs: list[SortedRun] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.memtable) + sum(len(run) for run in self.runs)


class SortedKeyValueStore:
    """A multi-table sorted KV store with range-partitioned tablets.

    Args:
        num_tablet_servers: how many servers tablets are spread over.
        memtable_limit: entries buffered before an automatic flush.
    """

    def __init__(
        self, num_tablet_servers: int = 9, memtable_limit: int = DEFAULT_MEMTABLE_LIMIT
    ):
        if num_tablet_servers <= 0:
            raise ValidationError("num_tablet_servers must be positive")
        self.num_tablet_servers = num_tablet_servers
        self.memtable_limit = memtable_limit
        self._tables: dict[str, _TableData] = {}
        self.metrics = ScanMetrics()

    # -- table management ------------------------------------------------------

    def create_table(self, name: str) -> None:
        """Create an empty table; creating an existing table is an error."""
        if name in self._tables:
            raise ValidationError(f"table already exists: {name!r}")
        self._tables[name] = _TableData()

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def table_size(self, name: str) -> int:
        """Number of live entries in a table."""
        return len(self._table(name))

    def stored_bytes(self, name: str | None = None) -> int:
        """On-disk bytes, as Accumulo RFiles store them.

        Each sorted run is serialized with relative-key (prefix) encoding —
        a key costs only its suffix beyond the previous key — and the whole
        stream is gzip-compressed, matching RFile's block compression.
        Memtable entries are counted uncompressed, as the in-memory map.
        """
        tables = [self._table(name)] if name else self._tables.values()
        total = 0
        for data in tables:
            for key, value in data.memtable.items():
                total += len(key.encode()) + len(value.encode())
            for run in data.runs:
                stream = bytearray()
                previous = ""
                for key, value in run:
                    shared = _common_prefix_length(previous, key)
                    suffix = key[shared:]
                    stream += b"\x00" + suffix.encode() + b"\x00" + value.encode()
                    previous = key
                total += len(zlib.compress(bytes(stream), level=6))
        return total

    def _table(self, name: str) -> _TableData:
        data = self._tables.get(name)
        if data is None:
            raise TableNotFoundError(f"no such table: {name!r}")
        return data

    # -- writes ------------------------------------------------------------------

    def put(self, table: str, key: str, value: str = "") -> None:
        """Insert or overwrite one entry."""
        data = self._table(table)
        data.memtable[key] = value
        if len(data.memtable) >= self.memtable_limit:
            self.flush(table)

    def batch_put(self, table: str, items: Iterable[tuple[str, str]]) -> int:
        """Bulk ingest; returns the number of entries written."""
        count = 0
        for key, value in items:
            self.put(table, key, value)
            count += 1
        return count

    def flush(self, table: str) -> None:
        """Freeze the memtable into a sorted run."""
        data = self._table(table)
        if data.memtable:
            data.runs.append(SortedRun(data.memtable.items()))
            data.memtable = {}

    def compact(self, table: str) -> None:
        """Merge all runs (and the memtable) into a single run."""
        data = self._table(table)
        self.flush(table)
        if len(data.runs) > 1:
            data.runs = [merge_runs(data.runs)]

    # -- reads ---------------------------------------------------------------------

    def get(self, table: str, key: str) -> str | None:
        """Point lookup across memtable and runs (newest wins)."""
        data = self._table(table)
        self.metrics.seeks += 1
        if key in data.memtable:
            self.metrics.entries_read += 1
            return data.memtable[key]
        for run in reversed(data.runs):
            value = run.get(key)
            if value is not None:
                self.metrics.entries_read += 1
                return value
        return None

    def scan(
        self, table: str, start: str | None = None, stop: str | None = None
    ) -> Iterator[tuple[str, str]]:
        """Merge-scan ``[start, stop)`` over all runs and the memtable."""
        data = self._table(table)
        self.metrics.scans += 1
        sources: list[Iterator[tuple[str, str]]] = []
        for run in data.runs:
            self.metrics.seeks += 1
            sources.append(run.scan(start, stop))
        if data.memtable:
            self.metrics.seeks += 1
            in_range = sorted(
                (key, value)
                for key, value in data.memtable.items()
                if (start is None or key >= start) and (stop is None or key < stop)
            )
            sources.append(iter(in_range))
        last_key: str | None = None
        for key, value in heapq.merge(*sources):
            if key == last_key:
                continue  # duplicate across runs: keep first (runs are disjoint in practice)
            last_key = key
            self.metrics.entries_read += 1
            yield key, value

    def prefix_scan(self, table: str, prefix: str) -> Iterator[tuple[str, str]]:
        """Scan every entry whose key starts with ``prefix``."""
        return self.scan(table, start=prefix, stop=prefix_upper_bound(prefix))

    # -- tablets ------------------------------------------------------------------

    def tablets(self, table: str) -> list[Tablet]:
        """Range-partition the table's current keyspace into tablets.

        Splits the sorted keyspace into ``num_tablet_servers`` near-equal
        ranges (one per server); a small table may yield fewer tablets.
        """
        keys = sorted(key for key, _ in self.scan(table))
        # The metrics hit from this internal scan is not a user scan: undo it.
        self.metrics.scans -= 1
        self.metrics.entries_read -= len(keys)
        if not keys:
            return [Tablet(start=None, stop=None, server=0)]
        per_tablet = max(1, len(keys) // self.num_tablet_servers)
        tablets: list[Tablet] = []
        start: str | None = None
        for server in range(self.num_tablet_servers):
            boundary_index = (server + 1) * per_tablet
            if server == self.num_tablet_servers - 1 or boundary_index >= len(keys):
                tablets.append(Tablet(start=start, stop=None, server=server))
                break
            stop = keys[boundary_index]
            tablets.append(Tablet(start=start, stop=stop, server=server))
            start = stop
        return tablets

    def tablet_for_key(self, table: str, key: str) -> Tablet:
        """The tablet owning ``key`` under the current split."""
        for tablet in self.tablets(table):
            if (tablet.start is None or key >= tablet.start) and (
                tablet.stop is None or key < tablet.stop
            ):
                return tablet
        raise AssertionError("tablets must cover the whole keyspace")

    def server_for_key(self, table: str, key: str) -> int:
        """Which tablet server owns ``key`` under the current split."""
        for tablet in self.tablets(table):
            if (tablet.start is None or key >= tablet.start) and (
                tablet.stop is None or key < tablet.stop
            ):
                return tablet.server
        raise AssertionError("tablets must cover the whole keyspace")


def _common_prefix_length(left: str, right: str) -> int:
    """Length of the longest common prefix of two strings."""
    limit = min(len(left), len(right))
    index = 0
    while index < limit and left[index] == right[index]:
        index += 1
    return index
