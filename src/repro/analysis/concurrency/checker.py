"""The guarded-by / lockset checker: CC101–CC105 over annotated classes.

The analysis is deliberately *lexical*: a guarded field access counts as
protected only when it sits syntactically inside a ``with self.<lock>``
block (or in a method annotated ``# requires-lock``, whose call sites are
checked instead). Lexical scope is what makes the verdict decidable
without alias analysis — and it matches how the serving data plane is
actually written: short critical sections around cache and counter state,
never a lock smuggled through a variable.

Diagnostics:

- **CC101** — a guarded field is read or written outside its lock (also:
  a ``# requires-lock`` method called without the lock, and the
  *inference* finding — a field mutated from two or more public entry
  points with no declared guard at all);
- **CC102** — ``# guarded-by`` names a lock attribute the class never
  assigns a ``threading.Lock``/``RLock``/``Condition`` to;
- **CC103** — two methods acquire the same pair of locks in opposite
  nesting orders: a static deadlock smell;
- **CC104** — a guarded mutable container is returned or yielded by
  reference, escaping its lock's protection (copy it instead);
- **CC105** — a blocking call (engine execution, dataset load, admission
  waits, sleeps, spills) is made while holding a cache/stats lock.

``__init__`` bodies are exempt (the object is not shared until the
constructor returns), and nested functions are analyzed as if no lock
were held (a closure may run on any thread, long after the lock is
gone).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..lint.base import LintViolation, SourceFile
from .model import CONTAINER_MUTATORS, ClassModel, build_class_model

RULE = "concurrency"

#: Subpackages whose classes form the concurrently-served data plane.
SCAN_SUBPACKAGES = ("serve", "governor")

#: Additional single modules in scope (the engine-facing caches).
SCAN_MODULES = ("core/prost.py",)

#: Callable names (terminal attribute or bare name) that block: executing
#: a query, loading a dataset, waiting on admission or a condition,
#: sleeping, or spilling to disk. None of these may run while a
#: cache/stats lock is held.
BLOCKING_CALLS = frozenset(
    {
        "sparql",
        "dataframe",
        "execute_prepared",
        "execute_batch",
        "collect",
        "collect_data_with_report",
        "load",
        "admit",
        "acquire",
        "wait",
        "wait_for",
        "sleep",
        "spill",
        "flush",
    }
)


@dataclass(frozen=True)
class ConcurrencyViolation:
    """One CC-code finding at one node path.

    Attributes:
        code: ``CC101`` … ``CC105``.
        path: source file relative to the scanned package root.
        line: 1-indexed source line of the offending node.
        symbol: dotted node path inside the module, e.g.
            ``QueryServer._serve_admitted`` (class.method) or
            ``Governor.rejected`` (class.field) for declaration-level
            findings.
        message: what is wrong and what the discipline demands.
    """

    code: str
    path: str
    line: int
    symbol: str
    message: str

    def format(self) -> str:
        """One display line: ``path:line: CODE [symbol] message``."""
        return f"{self.path}:{self.line}: {self.code} [{self.symbol}] {self.message}"

    def to_lint(self) -> LintViolation:
        """The same finding as a runner-compatible lint violation."""
        return LintViolation(
            rule=RULE,
            path=self.path,
            line=self.line,
            message=f"[{self.symbol}] {self.message}",
            code=self.code,
        )


def check_concurrency(sources: list[SourceFile]) -> list[LintViolation]:
    """The lint-runner entry point: scoped scan, lint-shaped findings."""
    return [finding.to_lint() for finding in check_concurrency_sources(sources)]


def check_concurrency_sources(
    sources: list[SourceFile],
) -> list[ConcurrencyViolation]:
    """All CC findings across the in-scope modules of a parsed package."""
    findings: list[ConcurrencyViolation] = []
    for source in sources:
        in_scope = (
            source.subpackage in SCAN_SUBPACKAGES
            or source.relative_name in SCAN_MODULES
        )
        if not in_scope:
            continue
        findings.extend(check_module(source))
    return findings


def check_module(source: SourceFile) -> list[ConcurrencyViolation]:
    """All CC findings in one module (classes only; module-level code has
    no ``self`` to lock)."""
    lines = source.source.splitlines()
    findings: list[ConcurrencyViolation] = []
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef):
            model = build_class_model(node, lines)
            if model.is_concurrent:
                findings.extend(_check_class(model, source.relative_name))
    findings.sort(key=lambda f: (f.line, f.code, f.symbol))
    return findings


# -- per-class analysis ----------------------------------------------------------


def _check_class(model: ClassModel, path: str) -> list[ConcurrencyViolation]:
    findings: list[ConcurrencyViolation] = []
    findings.extend(_check_guard_declarations(model, path))
    order_pairs: dict[tuple[str, str], tuple[str, int]] = {}
    mutations: dict[str, list[tuple[str, int]]] = {}
    for member in model.node.body:
        if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if member.name == "__init__":
            continue
        visitor = _MethodVisitor(model, path, member.name, order_pairs)
        held = frozenset(
            {model.requires[member.name]} if member.name in model.requires else set()
        )
        visitor.run(member, held)
        findings.extend(visitor.findings)
        for field_name, line in visitor.mutations:
            mutations.setdefault(field_name, []).append((member.name, line))
    findings.extend(_infer_unguarded(model, path, mutations))
    return findings


def _check_guard_declarations(
    model: ClassModel, path: str
) -> list[ConcurrencyViolation]:
    """CC102: every declared guard must name a real lock attribute."""
    findings = []
    for declaration in model.guards.values():
        if declaration.lock not in model.lock_attrs:
            findings.append(
                ConcurrencyViolation(
                    code="CC102",
                    path=path,
                    line=declaration.line,
                    symbol=f"{model.name}.{declaration.field_name}",
                    message=(
                        f"guarded-by names '{declaration.lock}', but the class "
                        "never assigns it a threading.Lock/RLock/Condition in "
                        "__init__"
                    ),
                )
            )
    return findings


def _infer_unguarded(
    model: ClassModel,
    path: str,
    mutations: dict[str, list[tuple[str, int]]],
) -> list[ConcurrencyViolation]:
    """The inference half of CC101: a field with no declared guard mutated
    from more than one public entry point is shared mutable state."""
    reach = _public_entry_points(model)
    findings = []
    for field_name in sorted(mutations):
        if field_name in model.guards or field_name in model.unguarded_ok:
            continue
        if field_name in model.lock_attrs:
            continue
        entries: set[str] = set()
        for method, _line in mutations[field_name]:
            entries.update(reach.get(method, set()))
        if len(entries) < 2:
            continue
        first_method, first_line = min(mutations[field_name], key=lambda m: m[1])
        listed = ", ".join(sorted(entries))
        findings.append(
            ConcurrencyViolation(
                code="CC101",
                path=path,
                line=first_line,
                symbol=f"{model.name}.{field_name}",
                message=(
                    f"field '{field_name}' is mutated from {len(entries)} public "
                    f"entry points ({listed}) with no declared guard; annotate "
                    "it '# guarded-by: <lock>' (or '# unguarded-ok: <reason>' "
                    "if the race is benign)"
                ),
            )
        )
    return findings


def _public_entry_points(model: ClassModel) -> dict[str, set[str]]:
    """For each method, the public methods that can (transitively) reach it
    through intra-class ``self.x()`` calls — a property access counts too,
    since properties execute their body on attribute read."""
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {
        member.name: member
        for member in model.node.body
        if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    calls: dict[str, set[str]] = {}
    for name, member in methods.items():
        called: set[str] = set()
        for node in ast.walk(member):
            if isinstance(node, ast.Attribute) and (
                isinstance(node.value, ast.Name) and node.value.id == "self"
            ):
                if node.attr in methods:
                    called.add(node.attr)
        calls[name] = called
    public = [
        name
        for name in methods
        if not name.startswith("_") or name in ("__len__", "__repr__", "__iter__")
    ]
    reach: dict[str, set[str]] = {name: set() for name in methods}
    for entry in public:
        stack = [entry]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            reach[current].add(entry)
            stack.extend(calls.get(current, set()))
    return reach


class _MethodVisitor(ast.NodeVisitor):
    """Walk one method body tracking the lexically-held lock set."""

    def __init__(
        self,
        model: ClassModel,
        path: str,
        method: str,
        order_pairs: dict[tuple[str, str], tuple[str, int]],
    ) -> None:
        self.model = model
        self.path = path
        self.method = method
        self.findings: list[ConcurrencyViolation] = []
        #: (field, line) write sites feeding the inference pass.
        self.mutations: list[tuple[str, int]] = []
        #: Shared across the class: (outer, inner) → first (method, line).
        self.order_pairs = order_pairs
        self._held: frozenset[str] = frozenset()
        #: Lambdas passed to ``self.<held-cond>.wait_for(...)``: the
        #: predicate is evaluated with the condition re-acquired, so it
        #: keeps the lockset instead of the nested-scope reset.
        self._condition_predicates: set[int] = set()

    def run(
        self, member: ast.FunctionDef | ast.AsyncFunctionDef, held: frozenset[str]
    ) -> None:
        """Analyze one method body starting from ``held`` locks."""
        self._held = held
        for stmt in member.body:
            self.visit(stmt)

    # -- helpers -----------------------------------------------------------------

    def _self_attr(self, node: ast.expr) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _report(self, code: str, line: int, message: str) -> None:
        self.findings.append(
            ConcurrencyViolation(
                code=code,
                path=self.path,
                line=line,
                symbol=f"{self.model.name}.{self.method}",
                message=message,
            )
        )

    def _record_mutation(self, target: ast.expr, line: int) -> None:
        """Attribute the write to the innermost ``self.<field>`` root."""
        node = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            root = self._self_attr(node)
            if root is not None:
                self.mutations.append((root, line))
                return
            node = node.value

    # -- lock acquisition --------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: list[str] = []
        for item in node.items:
            lock = self._self_attr(item.context_expr)
            if lock is not None and lock in self.model.lock_attrs:
                for outer in sorted(self._held):
                    self._note_order(outer, lock, node.lineno)
                acquired.append(lock)
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        previous = self._held
        self._held = self._held | frozenset(acquired)
        for stmt in node.body:
            self.visit(stmt)
        self._held = previous

    def _note_order(self, outer: str, inner: str, line: int) -> None:
        """CC103: record outer→inner; flag when the reverse pair exists."""
        pair = (outer, inner)
        reverse = (inner, outer)
        if reverse in self.order_pairs:
            other_method, other_line = self.order_pairs[reverse]
            self._report(
                "CC103",
                line,
                f"acquires '{inner}' while holding '{outer}', but "
                f"{self.model.name}.{other_method} (line {other_line}) acquires "
                "them in the opposite order — lock-order inversion can "
                "deadlock",
            )
        self.order_pairs.setdefault(pair, (self.method, line))

    # -- nested scopes run without the lock --------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if id(node) in self._condition_predicates:
            self.generic_visit(node)  # runs with the condition re-acquired
            return
        self._visit_nested(node)

    def _visit_nested(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        previous = self._held
        self._held = frozenset()
        self.generic_visit(node)
        self._held = previous

    # -- accesses ----------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        field_name = self._self_attr(node)
        if field_name is not None and field_name in self.model.guards:
            guard = self.model.guards[field_name].lock
            if guard not in self._held:
                self._report(
                    "CC101",
                    node.lineno,
                    f"access to '{field_name}' (guarded by '{guard}') outside "
                    f"a 'with self.{guard}' block",
                )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_mutation(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_mutation(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_mutation(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_mutation(target, node.lineno)
        self.generic_visit(node)

    # -- calls: requires-lock sites, blocking-under-lock, container mutators -----

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("wait_for", "wait")
            and self._self_attr(func.value) in self._held
        ):
            for argument in node.args:
                if isinstance(argument, ast.Lambda):
                    self._condition_predicates.add(id(argument))
        if isinstance(func, ast.Attribute):
            owner = self._self_attr(func)
            if owner is not None and func.attr in self.model.requires:
                needed = self.model.requires[func.attr]
                if needed not in self._held:
                    self._report(
                        "CC101",
                        node.lineno,
                        f"call to '{func.attr}' requires '{needed}' held "
                        "(# requires-lock), but no enclosing "
                        f"'with self.{needed}' block holds it",
                    )
            container = self._self_attr(func.value)
            if (
                container is not None
                and container in self.model.container_fields
                and func.attr in CONTAINER_MUTATORS
            ):
                self.mutations.append((container, node.lineno))
        self._check_blocking(node)
        self.generic_visit(node)

    def _check_blocking(self, node: ast.Call) -> None:
        if not self._held:
            return
        func = node.func
        name: str | None = None
        if isinstance(func, ast.Attribute):
            name = func.attr
            held_lock = self._self_attr(func.value)
            if held_lock is not None and held_lock in self._held:
                return  # waiting/notifying on the lock you hold: Condition
        elif isinstance(func, ast.Name):
            name = func.id
        if name in BLOCKING_CALLS:
            held = ", ".join(sorted(self._held))
            self._report(
                "CC105",
                node.lineno,
                f"blocking call '{name}' while holding lock(s) {held}; "
                "release the lock before executing, loading, waiting, or "
                "spilling",
            )

    # -- escapes -----------------------------------------------------------------

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._check_escape(node.value, node.lineno, "returned")
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if node.value is not None:
            self._check_escape(node.value, node.lineno, "yielded")
        self.generic_visit(node)

    def _check_escape(self, value: ast.expr, line: int, verb: str) -> None:
        """CC104: a guarded container leaving the class by reference."""
        candidates: list[ast.expr] = [value]
        if isinstance(value, ast.Tuple):
            candidates = list(value.elts)
        for candidate in candidates:
            field_name = self._self_attr(candidate)
            if (
                field_name is not None
                and field_name in self.model.guards
                and field_name in self.model.container_fields
            ):
                self._report(
                    "CC104",
                    line,
                    f"guarded container '{field_name}' {verb} by reference — "
                    "the caller escapes the lock; return a copy "
                    "(dict(...)/list(...)) instead",
                )
