"""The per-class concurrency model the lockset checker runs against.

A class declares its locking discipline with three comment-level
annotations (comments, not decorators, so the data plane pays zero import
or runtime cost for being analyzable):

- ``# guarded-by: <lock-attr>`` on the ``__init__`` line assigning a
  shared mutable field: every later read or write of that field must sit
  lexically inside a ``with self.<lock-attr>`` block;
- ``# requires-lock: <lock-attr>`` on a ``def`` line: the method's body
  is analyzed as if the lock were held, and every *call site* of the
  method must itself hold the lock (the private-helper-under-lock
  pattern, e.g. ``Governor._admissible``);
- ``# unguarded-ok: <reason>`` on a field assignment: the field is
  deliberately unsynchronized (last-writer-wins diagnostics and the
  like); the multi-entry-point mutation inference skips it.

:func:`build_class_model` extracts all three plus the class's lock
attributes (``self.x = threading.Lock() / RLock() / Condition()``) into a
:class:`ClassModel`; :mod:`repro.analysis.concurrency.checker` consumes
the model and emits the ``CC101``–``CC105`` diagnostics.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

#: Constructor names recognized as lock-like when assigned in ``__init__``.
LOCK_CONSTRUCTORS = ("Lock", "RLock", "Condition")

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_REQUIRES_LOCK = re.compile(r"#\s*requires-lock:\s*([A-Za-z_][A-Za-z0-9_]*)")
_UNGUARDED_OK = re.compile(r"#\s*unguarded-ok:")


@dataclass(frozen=True)
class GuardDeclaration:
    """One ``# guarded-by`` annotation: field name, lock attr, source line."""

    field_name: str
    lock: str
    line: int


@dataclass
class ClassModel:
    """Everything the checker needs to know about one class.

    Attributes:
        name: the class name (diagnostic symbol paths start with it).
        node: the class's AST node.
        lock_attrs: attribute names assigned a ``threading`` lock-like
            object in ``__init__`` (these are what ``with self.<attr>``
            blocks acquire).
        guards: declared guard per field name.
        requires: method name → lock the caller must already hold.
        unguarded_ok: fields explicitly exempted from inference.
        fields: every attribute assigned on ``self`` in ``__init__``,
            mapped to the assignment line (inference scans these).
        container_fields: the subset of :attr:`fields` initialized to a
            builtin mutable container (dict/list/set/OrderedDict/…) —
            the fields whose mutating *method calls* count as writes and
            whose direct ``return`` escapes a lock's protection.
    """

    name: str
    node: ast.ClassDef
    lock_attrs: set[str] = field(default_factory=set)
    guards: dict[str, GuardDeclaration] = field(default_factory=dict)
    requires: dict[str, str] = field(default_factory=dict)
    unguarded_ok: set[str] = field(default_factory=set)
    fields: dict[str, int] = field(default_factory=dict)
    container_fields: set[str] = field(default_factory=set)

    @property
    def is_concurrent(self) -> bool:
        """Whether the class participates in the analysis at all: it owns
        a lock attribute or declares at least one guard."""
        return bool(self.lock_attrs or self.guards)


#: Call / constructor names treated as builtin mutable containers.
_CONTAINER_CALLS = (
    "dict",
    "list",
    "set",
    "OrderedDict",
    "defaultdict",
    "deque",
    "Counter",
)

#: Method names that mutate a builtin container in place.
CONTAINER_MUTATORS = (
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "move_to_end",
    "appendleft",
    "popleft",
)


def _self_attribute(node: ast.expr) -> str | None:
    """The attribute name when ``node`` is exactly ``self.<name>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_call(value: ast.expr) -> bool:
    """Whether an ``__init__`` assignment value constructs a lock."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in LOCK_CONSTRUCTORS
    if isinstance(func, ast.Name):
        return func.id in LOCK_CONSTRUCTORS
    return False


def _is_container_value(value: ast.expr) -> bool:
    """Whether an ``__init__`` assignment value is a mutable container."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else None
        )
        return name in _CONTAINER_CALLS
    return False


def _assignment_targets(stmt: ast.stmt) -> tuple[list[ast.expr], ast.expr | None]:
    """Assignment target expressions and the assigned value, if any."""
    if isinstance(stmt, ast.Assign):
        return stmt.targets, stmt.value
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.target], stmt.value
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target], stmt.value
    return [], None


def build_class_model(node: ast.ClassDef, source_lines: list[str]) -> ClassModel:
    """Extract the concurrency model of one class from its AST + comments.

    Args:
        node: the class definition.
        source_lines: the *module's* source split into lines (1-indexed
            via ``lineno - 1``) — annotations are comments, invisible to
            the AST.
    """
    model = ClassModel(name=node.name, node=node)
    for member in node.body:
        if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        required = _line_match(_REQUIRES_LOCK, source_lines, member.lineno)
        if required is not None:
            model.requires[member.name] = required
        if member.name != "__init__":
            continue
        for stmt in ast.walk(member):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets, value = _assignment_targets(stmt)
            for target in targets:
                field_name = _self_attribute(target)
                if field_name is None:
                    continue
                model.fields.setdefault(field_name, stmt.lineno)
                if value is not None and _is_lock_call(value):
                    model.lock_attrs.add(field_name)
                if value is not None and _is_container_value(value):
                    model.container_fields.add(field_name)
                guard = _line_match(_GUARDED_BY, source_lines, stmt.lineno)
                if guard is not None:
                    model.guards[field_name] = GuardDeclaration(
                        field_name, guard, stmt.lineno
                    )
                if _line_has(_UNGUARDED_OK, source_lines, stmt.lineno):
                    model.unguarded_ok.add(field_name)
    return model


def _candidate_lines(lines: list[str], lineno: int) -> list[str]:
    """The annotation-bearing lines for a statement at ``lineno``: the line
    itself, plus the line above *only when it is a standalone comment* (so
    an annotation can sit on its own line above a long assignment, but a
    trailing comment on the previous statement is never mis-attributed)."""
    out = []
    if 1 <= lineno <= len(lines):
        out.append(lines[lineno - 1])
    if 2 <= lineno <= len(lines) + 1:
        above = lines[lineno - 2]
        if above.lstrip().startswith("#"):
            out.append(above)
    return out


def _line_match(pattern: re.Pattern[str], lines: list[str], lineno: int) -> str | None:
    """The pattern's first group on ``lineno`` or a standalone-comment line
    directly above it."""
    for candidate in _candidate_lines(lines, lineno):
        match = pattern.search(candidate)
        if match:
            return match.group(1)
    return None


def _line_has(pattern: re.Pattern[str], lines: list[str], lineno: int) -> bool:
    """Whether the pattern appears on ``lineno`` or a standalone-comment
    line directly above it."""
    for candidate in _candidate_lines(lines, lineno):
        if pattern.search(candidate):
            return True
    return False
