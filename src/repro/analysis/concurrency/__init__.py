"""Concurrency-safety static analysis over the serving data plane.

The serving layer (:mod:`repro.serve`), the governor, and the engine's
prepared-statement caches are hit from many threads at once —
``prost-repro replay`` alone drives a :class:`~repro.serve.QueryServer`
from N closed-loop client threads. This package proves, before any of
that traffic runs, that every piece of shared mutable state is accessed
under its declared lock:

- :mod:`~repro.analysis.concurrency.model` — extracts each class's
  locking discipline from lightweight ``# guarded-by`` /
  ``# requires-lock`` / ``# unguarded-ok`` comment annotations plus its
  ``threading`` lock attributes;
- :mod:`~repro.analysis.concurrency.checker` — the lexical lockset
  checker emitting ``CC101``–``CC105`` (unguarded access, bad guard
  declaration, lock-order inversion, escaping guarded container,
  blocking call under lock), plus an inference pass that flags
  undeclared shared mutable state.

The checker runs as a pass of ``prost-repro lint`` (and the tier-1 lint
tests); its dynamic counterpart is :mod:`repro.testing.interleave`, which
replays seeded thread interleavings over the same code paths.
"""

from __future__ import annotations

from .checker import (
    BLOCKING_CALLS,
    ConcurrencyViolation,
    check_concurrency,
    check_concurrency_sources,
    check_module,
)
from .model import ClassModel, GuardDeclaration, build_class_model

__all__ = [
    "BLOCKING_CALLS",
    "ClassModel",
    "ConcurrencyViolation",
    "GuardDeclaration",
    "build_class_model",
    "check_concurrency",
    "check_concurrency_sources",
    "check_module",
]
