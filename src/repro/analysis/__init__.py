"""Static analysis: plan verification and architectural lints.

Two layers, both free of third-party dependencies:

- **Plan verifier** (:mod:`repro.analysis.verifier`) — schema and
  partitioning inference over Join Trees and engine logical plans, plus a
  checker that rejects plans violating the paper's invariants before they
  run: unbound variable references, PT nodes grouping patterns that do not
  share a subject, priorities inconsistent with the loading-time statistics,
  colocated joins without co-partitioning on the join key, and broadcast
  hints whose build side exceeds the configured threshold. The
  :class:`~repro.core.prost.ProstEngine` runs it before every query
  (``REPRO_PLAN_CHECK=0`` opts out); ``prost-repro check`` runs it
  standalone with EXPLAIN-style diagnostics.
- **Repo lints** (:mod:`repro.analysis.lint`) — AST passes enforcing the
  codebase's own contracts: import layering, data-plane determinism, the
  metrics registry, and the error hierarchy. Exposed as ``prost-repro
  lint`` and as tier-1 pytest checks.
"""

from __future__ import annotations

import os

from .diagnostics import Diagnostic, render_diagnostics
from .lineage import verify_cached_plan
from .verifier import (
    check_query,
    verify_join_tree,
    verify_logical_plan,
    verify_query,
)

__all__ = [
    "Diagnostic",
    "check_query",
    "plan_check_enabled",
    "render_diagnostics",
    "set_plan_check_enabled",
    "verify_cached_plan",
    "verify_join_tree",
    "verify_logical_plan",
    "verify_query",
]


_plan_check_enabled = os.environ.get("REPRO_PLAN_CHECK", "1").strip().lower() not in (
    "0",
    "false",
    "no",
    "off",
)


def plan_check_enabled() -> bool:
    """Whether ``ProstEngine`` verifies every plan before executing it."""
    return _plan_check_enabled


def set_plan_check_enabled(enabled: bool) -> bool:
    """Flip pre-execution plan verification; returns the previous setting."""
    global _plan_check_enabled
    previous = _plan_check_enabled
    _plan_check_enabled = bool(enabled)
    return previous
