"""Metrics-contract lint.

Counter names (``engine.shuffle_bytes``, ``faults.task_retries``, …) have
exactly one home: :mod:`repro.obs.metrics`, which registers every counter
in the :data:`~repro.obs.metrics.REGISTRY` and exports the names used as
strings elsewhere as constants. This pass rejects:

- any inline ``"layer.counter"`` string literal outside ``obs/metrics.py``
  (use the exported constant, so a rename cannot silently diverge), and
- any such literal — anywhere — that names a counter the registry does not
  know (a misspelled or stale name).
"""

from __future__ import annotations

import ast
import re

from .base import LintViolation, SourceFile

RULE = "metrics"

#: The module allowed to spell counter names inline.
REGISTRY_MODULE = "obs/metrics.py"

#: What a dotted counter name looks like.
COUNTER_PATTERN = re.compile(r"^(engine|faults|governor|serve|hdfs|cost)\.[a-z_]+$")


def registered_counter_names() -> frozenset[str]:
    """Every name the process-wide registry knows."""
    from ...obs.metrics import REGISTRY

    return frozenset(spec.name for spec in REGISTRY)


def check_metrics(sources: list[SourceFile]) -> list[LintViolation]:
    """All metrics-contract violations across the parsed package."""
    known = registered_counter_names()
    violations: list[LintViolation] = []
    for source in sources:
        in_registry_module = source.relative_name == REGISTRY_MODULE
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
                continue
            if not COUNTER_PATTERN.match(node.value):
                continue
            if node.value not in known:
                violations.append(
                    LintViolation(
                        RULE,
                        source.relative_name,
                        node.lineno,
                        f"counter name {node.value!r} is not in the metrics "
                        "registry (repro.obs.metrics.REGISTRY)",
                    )
                )
            elif not in_registry_module:
                violations.append(
                    LintViolation(
                        RULE,
                        source.relative_name,
                        node.lineno,
                        f"inline counter literal {node.value!r}; use the "
                        "constant exported by repro.obs.metrics",
                    )
                )
    return violations
