"""Architectural lints: AST passes over the ``repro`` source tree.

Each pass enforces one contract the codebase states in prose elsewhere:

- :mod:`~repro.analysis.lint.layering` — the data plane (``engine``,
  ``columnar``, ``hdfs``) never imports ``baselines``/``sparql``/``obs``,
  and ``obs`` stays optional (module-level imports only inside ``obs``).
- :mod:`~repro.analysis.lint.determinism` — the data plane draws no
  wall-clock time or unseeded randomness and never iterates a bare set.
- :mod:`~repro.analysis.lint.metrics` — counter names appear as string
  literals only in :mod:`repro.obs.metrics`, the registry's home.
- :mod:`~repro.analysis.lint.errors` — every ``raise`` uses the
  :mod:`repro.errors` hierarchy.

Run all of them with :func:`~repro.analysis.lint.runner.run_lints`
(``prost-repro lint`` on the command line); tier-1 tests assert the shipped
tree is clean.
"""

from __future__ import annotations

from .base import LintViolation, SourceFile, load_source_files
from .runner import run_lints

__all__ = [
    "LintViolation",
    "SourceFile",
    "load_source_files",
    "run_lints",
]
