"""Data-plane determinism lint.

The simulated cluster must be bit-for-bit reproducible: the differential
fuzz harness and the seeded fault injector both rely on a query producing
the same result (and the same simulated cost) on every run. So the data
plane draws no wall-clock time and no ambient randomness:

- ``time.time``/``time.time_ns`` are banned (``time.perf_counter`` is fine:
  it only feeds *reported* wall-clock durations, never control flow);
- module-level ``random.*`` functions, ``os.urandom`` and ``uuid.uuid1/4``
  are banned everywhere in the data plane; explicitly seeded
  ``random.Random(seed)`` instances are the one sanctioned source of
  randomness, and only ``engine/faults.py`` (the seeded chaos injector)
  and the test-data generators under ``testing``/``watdiv`` hold one;
- iterating a bare ``set(...)``/set literal in a ``for`` loop is banned —
  Python set order varies across processes (hash randomization), which
  leaks into row order; iterate ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast

from .base import LintViolation, SourceFile

RULE = "determinism"

#: Subpackages forming the deterministic data plane.
DATA_PLANE = (
    "engine",
    "core",
    "columnar",
    "governor",
    "hdfs",
    "kvstore",
    "rdf",
    "sparql",
    "vector",
)

#: Modules allowed to hold a seeded ``random.Random`` (relative names).
SEEDED_RANDOM_ALLOWED = ("engine/faults.py",)

_BANNED_CALLS = {
    ("time", "time"): "wall-clock time",
    ("time", "time_ns"): "wall-clock time",
    ("os", "urandom"): "OS entropy",
    ("uuid", "uuid1"): "time/host-derived UUIDs",
    ("uuid", "uuid4"): "random UUIDs",
}


def check_determinism(sources: list[SourceFile]) -> list[LintViolation]:
    """All determinism violations across the parsed package."""
    violations: list[LintViolation] = []
    for source in sources:
        if source.subpackage not in DATA_PLANE:
            continue
        violations.extend(_check_module(source))
    return violations


def _check_module(source: SourceFile) -> list[LintViolation]:
    found: list[LintViolation] = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            found.extend(_check_attribute(source, node))
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            found.extend(_check_from_import(source, node))
        elif isinstance(node, (ast.For, ast.comprehension)):
            found.extend(_check_iteration(source, node))
    return found


def _check_attribute(
    source: SourceFile, node: ast.Attribute
) -> list[LintViolation]:
    assert isinstance(node.value, ast.Name)
    key = (node.value.id, node.attr)
    if key in _BANNED_CALLS:
        return [
            LintViolation(
                RULE,
                source.relative_name,
                node.lineno,
                f"{key[0]}.{key[1]} draws {_BANNED_CALLS[key]}; the data "
                "plane must stay deterministic",
            )
        ]
    if key[0] == "random" and key[1] != "Random":
        allowed = source.relative_name in SEEDED_RANDOM_ALLOWED
        if not allowed:
            return [
                LintViolation(
                    RULE,
                    source.relative_name,
                    node.lineno,
                    f"module-level random.{key[1]} uses ambient global state; "
                    "use an explicitly seeded random.Random instance",
                )
            ]
    return []


def _check_from_import(
    source: SourceFile, node: ast.ImportFrom
) -> list[LintViolation]:
    found: list[LintViolation] = []
    for alias in node.names:
        key = (node.module or "", alias.name)
        if key in _BANNED_CALLS:
            found.append(
                LintViolation(
                    RULE,
                    source.relative_name,
                    node.lineno,
                    f"importing {key[1]} from {key[0]} draws "
                    f"{_BANNED_CALLS[key]}; the data plane must stay "
                    "deterministic",
                )
            )
        if key[0] == "random" and key[1] != "Random":
            found.append(
                LintViolation(
                    RULE,
                    source.relative_name,
                    node.lineno,
                    f"importing {alias.name} from random uses ambient global "
                    "state; use an explicitly seeded random.Random instance",
                )
            )
    return found


def _check_iteration(
    source: SourceFile, node: ast.For | ast.comprehension
) -> list[LintViolation]:
    iterated = node.iter
    is_bare_set = isinstance(iterated, ast.Set) or (
        isinstance(iterated, ast.Call)
        and isinstance(iterated.func, ast.Name)
        and iterated.func.id in ("set", "frozenset")
    )
    if not is_bare_set:
        return []
    line = node.iter.lineno
    return [
        LintViolation(
            RULE,
            source.relative_name,
            line,
            "iterating a bare set: order varies under hash randomization; "
            "wrap it in sorted(...)",
        )
    ]
