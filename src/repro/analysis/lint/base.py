"""Shared plumbing for the lint passes: parsed sources and violations."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator


@dataclass(frozen=True)
class LintViolation:
    """One broken contract at one source location.

    Attributes:
        rule: the pass that found it (``layering``, ``determinism``, …).
        path: source file, relative to the scanned root when possible.
        line: 1-indexed line of the offending node.
        message: what is wrong and what the contract demands instead.
        code: stable diagnostic code for passes that assign one (the
            concurrency pass's ``CC101``–``CC105``); ``None`` elsewhere.
    """

    rule: str
    path: str
    line: int
    message: str
    code: str | None = None

    def format(self) -> str:
        """One display line: ``path:line: [rule] message`` (the code, when
        present, leads the message)."""
        prefix = f"{self.code}: " if self.code else ""
        return f"{self.path}:{self.line}: [{self.rule}] {prefix}{self.message}"


@dataclass(frozen=True)
class SourceFile:
    """One parsed module of the scanned package."""

    path: Path
    #: Dotted module name, e.g. ``repro.engine.executor``.
    module: str
    tree: ast.Module
    #: Path below the package root, e.g. ``engine/executor.py``.
    relative_name: str
    #: Raw module text: comment-level annotations (``# guarded-by: …``)
    #: are invisible to ``ast``, so passes that read them re-split this.
    source: str = ""

    @property
    def subpackage(self) -> str:
        """First package level below ``repro`` (``engine``, ``obs``, …);
        empty for top-level modules like ``repro.errors``."""
        parts = self.module.split(".")
        if len(parts) > 2:
            return parts[1]
        if len(parts) == 2 and self.path.name == "__init__.py":
            return parts[1]  # the subpackage's own __init__
        return ""


def package_root() -> Path:
    """Directory of the installed ``repro`` package (the default scan root)."""
    import repro

    return Path(repro.__file__).resolve().parent


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``.py`` file under ``root``, in a stable order."""
    yield from sorted(root.rglob("*.py"))


def load_source_files(root: Path | None = None) -> list[SourceFile]:
    """Parse every module of the package rooted at ``root``.

    ``root`` must be the directory of a package named like its last path
    component (defaults to the installed ``repro`` package).
    """
    if root is None:
        root = package_root()
    root = root.resolve()
    package = root.name
    files: list[SourceFile] = []
    for path in iter_python_files(root):
        relative = path.relative_to(root)
        parts = (package, *relative.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        files.append(
            SourceFile(
                path=path,
                module=".".join(parts),
                tree=tree,
                relative_name=relative.as_posix(),
                source=source,
            )
        )
    return files


def resolve_import(source: SourceFile, node: ast.ImportFrom) -> str:
    """The absolute dotted module a ``from … import …`` refers to."""
    if node.level == 0:
        return node.module or ""
    base = source.module.split(".")
    if not source.path.name == "__init__.py":
        base = base[:-1]
    if node.level > 1:
        base = base[: len(base) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def imported_modules(source: SourceFile, node: ast.stmt) -> list[str]:
    """Absolute dotted modules referenced by one import statement."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        return [resolve_import(source, node)]
    return []
