"""Error-hierarchy lint.

Everything ``src/repro`` raises must come from the :mod:`repro.errors`
hierarchy, so callers can catch ``ReproError`` (or a layer's subclass) and
know they have covered the package. Accepted forms:

- ``raise SomeReproError(...)`` for any class defined in ``errors.py``;
- a small allowlist of builtins with control-flow meaning
  (``NotImplementedError``, ``AssertionError``, ``StopIteration``,
  ``SystemExit``, ``KeyboardInterrupt``);
- bare ``raise`` and re-raising a caught variable (lowercase name);
- factory calls (``raise self.error(...)``, ``raise make_error(...)``) —
  the factory's return type is checked by the type checker, not this lint.
"""

from __future__ import annotations

import ast

from ...errors import ValidationError
from .base import LintViolation, SourceFile

RULE = "errors"

#: Builtins with control-flow (not error-reporting) meaning.
ALLOWED_BUILTINS = frozenset(
    {
        "NotImplementedError",
        "AssertionError",
        "StopIteration",
        "SystemExit",
        "KeyboardInterrupt",
    }
)


def hierarchy_class_names(sources: list[SourceFile]) -> frozenset[str]:
    """Exception class names defined by the package's ``errors`` module."""
    for source in sources:
        if source.module.endswith(".errors") and source.subpackage == "":
            return frozenset(
                node.name
                for node in source.tree.body
                if isinstance(node, ast.ClassDef)
            )
    raise ValidationError("no top-level errors module in the scanned package")


def check_errors(sources: list[SourceFile]) -> list[LintViolation]:
    """All raises outside the error hierarchy across the parsed package."""
    allowed = hierarchy_class_names(sources) | ALLOWED_BUILTINS
    violations: list[LintViolation] = []
    for source in sources:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Raise):
                violation = _check_raise(source, node, allowed)
                if violation is not None:
                    violations.append(violation)
    return violations


def _check_raise(
    source: SourceFile, node: ast.Raise, allowed: frozenset[str]
) -> LintViolation | None:
    exc = node.exc
    if exc is None:
        return None  # bare re-raise
    name = _raised_name(exc)
    if name is None:
        return None  # attribute access / factory call / expression: allowed
    if name in allowed or name[:1].islower():
        return None  # hierarchy class, allowlisted builtin, or caught variable
    return LintViolation(
        RULE,
        source.relative_name,
        node.lineno,
        f"raise {name}(...) bypasses the repro.errors hierarchy; raise a "
        "ReproError subclass instead",
    )


def _raised_name(exc: ast.expr) -> str | None:
    """The bare name being raised, when statically visible."""
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None
