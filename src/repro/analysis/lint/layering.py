"""Import-layering lint.

Two contracts from ``docs/ARCHITECTURE.md``:

1. The generic data plane — ``repro.engine``, ``repro.columnar``,
   ``repro.hdfs`` — knows nothing about SPARQL or competing systems: it
   never imports ``repro.baselines`` or ``repro.sparql``, at any scope.
   (``repro.core`` sits above and may use all of them.)
2. Observability is an optional layer: no module outside ``repro.obs``
   imports it unconditionally at module level. Lazy imports inside
   functions — the pattern the engine's tracing hooks and ``core.prost``
   use — keep the data path importable and fast when tracing is off;
   ``if TYPE_CHECKING:`` imports never execute and are likewise fine.
"""

from __future__ import annotations

import ast

from .base import LintViolation, SourceFile, imported_modules

RULE = "layering"

#: Subpackages forming the SPARQL-agnostic data plane.
GENERIC_LAYERS = ("engine", "columnar", "governor", "hdfs", "vector")

#: Subpackages the generic layers must never import, at any scope.
FORBIDDEN_FOR_GENERIC = ("baselines", "sparql")

#: The optional observability layer.
OPTIONAL_LAYER = "obs"


def check_layering(sources: list[SourceFile]) -> list[LintViolation]:
    """All layering violations across the parsed package."""
    violations: list[LintViolation] = []
    for source in sources:
        if source.subpackage in GENERIC_LAYERS:
            violations.extend(_check_generic_layer(source))
        if source.subpackage != OPTIONAL_LAYER:
            violations.extend(_check_optional_obs(source))
    return violations


def _check_generic_layer(source: SourceFile) -> list[LintViolation]:
    found: list[LintViolation] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        for module in imported_modules(source, node):
            layer = _repro_layer(module)
            if layer in FORBIDDEN_FOR_GENERIC:
                found.append(
                    LintViolation(
                        RULE,
                        source.relative_name,
                        node.lineno,
                        f"the generic layer {source.subpackage!r} must not "
                        f"import repro.{layer} ({module})",
                    )
                )
    return found


def _check_optional_obs(source: SourceFile) -> list[LintViolation]:
    found: list[LintViolation] = []
    for node in source.tree.body:  # unconditional module level only
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        for module in imported_modules(source, node):
            if _repro_layer(module) == OPTIONAL_LAYER:
                found.append(
                    LintViolation(
                        RULE,
                        source.relative_name,
                        node.lineno,
                        "repro.obs is optional: import it lazily inside the "
                        f"function that needs it, not at module level ({module})",
                    )
                )
    return found


def _repro_layer(module: str) -> str:
    """The ``repro`` subpackage a dotted module belongs to, or ``""``."""
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return ""
