"""Run every lint pass over the package and collect violations."""

from __future__ import annotations

from pathlib import Path

from .base import LintViolation, load_source_files
from .determinism import check_determinism
from .errors import check_errors
from .layering import check_layering
from .metrics import check_metrics

#: Every pass, in report order.
ALL_PASSES = (check_layering, check_determinism, check_metrics, check_errors)


def run_lints(root: Path | None = None) -> list[LintViolation]:
    """All violations in the package rooted at ``root`` (default: installed
    ``repro``), sorted by file and line."""
    sources = load_source_files(root)
    violations: list[LintViolation] = []
    for lint_pass in ALL_PASSES:
        violations.extend(lint_pass(sources))
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def render_report(violations: list[LintViolation]) -> str:
    """Human-readable report, one line per violation plus a summary."""
    if not violations:
        return "lint: clean"
    lines = [violation.format() for violation in violations]
    lines.append(f"lint: {len(violations)} violation(s)")
    return "\n".join(lines)
