"""Run every lint pass over the package and collect violations."""

from __future__ import annotations

import json
from pathlib import Path

from .base import LintViolation, SourceFile, load_source_files
from .determinism import check_determinism
from .errors import check_errors
from .layering import check_layering
from .metrics import check_metrics


def _check_concurrency(sources: list[SourceFile]) -> list[LintViolation]:
    """The CC101–CC105 lockset pass, imported lazily: the concurrency
    subpackage itself imports lint plumbing, so a module-level import here
    would be circular when ``repro.analysis.concurrency`` loads first."""
    from ..concurrency.checker import check_concurrency

    return check_concurrency(sources)


#: Every pass, in report order.
ALL_PASSES = (
    check_layering,
    check_determinism,
    check_metrics,
    check_errors,
    _check_concurrency,
)


def run_lints(root: Path | None = None) -> list[LintViolation]:
    """All violations in the package rooted at ``root`` (default: installed
    ``repro``), sorted by file and line."""
    sources = load_source_files(root)
    violations: list[LintViolation] = []
    for lint_pass in ALL_PASSES:
        violations.extend(lint_pass(sources))
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def render_report(violations: list[LintViolation]) -> str:
    """Human-readable report, one line per violation plus a summary."""
    if not violations:
        return "lint: clean"
    lines = [violation.format() for violation in violations]
    lines.append(f"lint: {len(violations)} violation(s)")
    return "\n".join(lines)


def render_json(violations: list[LintViolation]) -> str:
    """Machine-readable report: a JSON array of findings (CI annotations).

    Each element carries ``path``, ``line``, ``rule``, ``code`` (``null``
    for passes without stable codes), and ``message``; the array is sorted
    the same way as the text report, and the output ends with a newline.
    """
    payload = [
        {
            "path": violation.path,
            "line": violation.line,
            "rule": violation.rule,
            "code": violation.code,
            "message": violation.message,
        }
        for violation in violations
    ]
    return json.dumps(payload, indent=2) + "\n"
