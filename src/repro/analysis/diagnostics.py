"""Diagnostics emitted by the static plan verifier.

Every violated invariant becomes one :class:`Diagnostic` carrying a stable
code (the ``PV1xx`` range covers Join-Tree invariants, ``PV2xx`` engine-plan
invariants, ``PV3xx`` advisory resource-governance forecasts that never fail
the gate, ``PV4xx`` cached-plan lineage — see :mod:`repro.analysis.lineage`),
a human-readable message, and a *node path* — the location of
the offending node inside its tree, in the same shape the EXPLAIN renderers
use — so a failing check points at the exact plan node, not just the query.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Catalogue of diagnostic codes, code → one-line description. Kept in one
#: place so tests and documentation cannot drift from the verifier.
CODES: dict[str, str] = {
    "PV101": "a projected or filtered variable is bound by no tree node",
    "PV102": "a node is attached where it shares no variable (needless cartesian)",
    "PV103": "a property-table node groups patterns with different key terms",
    "PV104": "a property-table node contains an unbound predicate",
    "PV105": "a node's priority disagrees with the statistics-based score",
    "PV106": "the root is not the minimum-priority node",
    "PV108": "a node's declared partitioning disagrees with its storage layout",
    "PV109": "the tree's patterns do not cover the query's basic graph pattern",
    "PV110": "a node's pattern count is invalid for its kind",
    "PV201": "join key columns have inconsistent types across the two sides",
    "PV202": "a join declared colocated is not co-partitioned on its keys",
    "PV203": "a table scan's declared partitioning disagrees with the catalog",
    "PV204": "a broadcast-hinted join's build side exceeds the size threshold",
    "PV205": "a shuffle hint discards existing co-partitioning on the join keys",
    "PV301": "a broadcast join's build side exceeds the memory budget (will degrade to a shuffle join)",
    "PV302": "a hash join's build side exceeds the memory budget (will spill to disk)",
    "PV401": "a cached plan's lineage epoch does not match the engine's current plan epoch",
}

#: Advisory codes: the plan is degraded-but-valid — the governor handles the
#: condition at runtime (degradation ladder / spill), so these inform EXPLAIN
#: and ``prost-repro check`` output but never fail the pre-execution gate.
ADVISORY_CODES: frozenset[str] = frozenset({"PV301", "PV302"})


@dataclass(frozen=True)
class Diagnostic:
    """One violated invariant, pointing at a specific plan node.

    Attributes:
        code: stable identifier from :data:`CODES`.
        message: what is wrong, in terms of the offending node.
        node_path: location of the node — ``root``, ``root.children[1]``, …
            for Join Trees; ``plan``, ``plan.left``, … for logical plans.
        node_label: the node's own rendering (``VP``, ``PT[2 patterns]``,
            ``Join(on=['v1'], how=inner)``, …) for display.
    """

    code: str
    message: str
    node_path: str
    node_label: str = ""

    def format(self) -> str:
        """One display line: ``PVxxx at <path> (<label>): <message>``."""
        label = f" ({self.node_label})" if self.node_label else ""
        return f"{self.code} at {self.node_path}{label}: {self.message}"


def render_diagnostics(diagnostics: list[Diagnostic], tree_text: str | None = None) -> str:
    """EXPLAIN-style report: the offending tree, then one line per finding."""
    lines: list[str] = []
    if tree_text:
        lines.append(tree_text)
        lines.append("")
    lines.append(f"{len(diagnostics)} plan invariant violation(s):")
    for diagnostic in diagnostics:
        lines.append(f"  !! {diagnostic.format()}")
    return "\n".join(lines)
