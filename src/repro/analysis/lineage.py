"""Cached-plan lineage verification (the ``PV4xx`` range).

The serve layer's plan cache stores verified, ready-to-execute frames keyed
on the engine's :attr:`~repro.core.prost.ProstEngine.plan_epoch` — the
fingerprint of everything a plan's validity depends on (dataset version,
partitioning strategy, statistics mode, planner-relevant cluster knobs).
Keying alone already prevents stale hits; :func:`verify_cached_plan` is the
defense-in-depth twin run *again* immediately before a cached plan
executes, so a bookkeeping bug in the cache (or a caller bypassing it)
surfaces as an auditable diagnostic instead of silently executing a plan
built against a dataset that no longer exists.

A ``PV401`` finding is advisory to the caller in one specific sense: the
correct reaction is *evict and replan*, never crash — the server does
exactly that and counts the eviction.
"""

from __future__ import annotations

from .diagnostics import Diagnostic


def verify_cached_plan(
    cached_epoch: tuple, current_epoch: tuple, node_path: str = "plan"
) -> list[Diagnostic]:
    """Diagnostics for executing a plan cached under ``cached_epoch`` now.

    Returns an empty list when the epochs match (the cached plan's lineage
    is current), or a single ``PV401`` diagnostic naming both epochs when
    they differ. The message spells out which fingerprint components moved,
    so a surprising eviction is attributable (dataset reload vs. a
    re-provisioned engine with different partitioning knobs).
    """
    if cached_epoch == current_epoch:
        return []
    drifted = [
        f"component {index}: {cached!r} -> {current!r}"
        for index, (cached, current) in enumerate(zip(cached_epoch, current_epoch))
        if cached != current
    ]
    if len(cached_epoch) != len(current_epoch):
        drifted.append(
            f"epoch arity changed ({len(cached_epoch)} -> {len(current_epoch)})"
        )
    return [
        Diagnostic(
            code="PV401",
            message=(
                "cached plan lineage is stale: "
                + "; ".join(drifted)
                + " (evict and replan)"
            ),
            node_path=node_path,
            node_label="cached plan",
        )
    ]
