"""The static plan verifier: schema + partitioning inference and checking.

Verification happens at the two plan layers the system has:

- :func:`verify_join_tree` checks one PRoST Join Tree against the paper's
  structural invariants (§3.2–3.3): node kinds and pattern grouping, the
  statistics-based priority ordering, declared partitioning versus the
  storage layout, and join connectivity (no needless cartesian products).
- :func:`verify_logical_plan` walks an engine logical plan bottom-up,
  deriving each operator's ground-truth partitioning from the catalog's
  actual table layout, and rejects plans whose *declared* partitioning
  (:attr:`repro.engine.logical.LogicalPlan.partitioning`) disagrees — the
  static analogue of a colocated join silently reading shuffled data — plus
  broadcast hints whose build side cannot fit under the threshold.

Both return :class:`~repro.analysis.diagnostics.Diagnostic` lists;
:func:`check_query` bundles them for the engine's pre-execution gate and
raises :class:`~repro.errors.PlanVerificationError` on any finding.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.join_tree import JoinTree, JoinTreeNode, ObjectPtNode, PtNode, VpNode
from ..engine.logical import (
    Aggregate,
    Distinct,
    Explode,
    Filter,
    InMemoryRelation,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Sort,
    TableScan,
    Union,
)
from ..errors import PlanVerificationError
from ..sparql.algebra import SelectQuery, Variable
from .diagnostics import ADVISORY_CODES, Diagnostic, render_diagnostics

if TYPE_CHECKING:
    from ..core.translator import JoinTreeTranslator
    from ..engine.catalog import Catalog
    from ..engine.cluster import ClusterConfig

#: Relative tolerance for priority recomputation (scores are pure float
#: arithmetic over integer statistics; anything beyond rounding noise is a
#: tampered or stale priority).
_PRIORITY_TOLERANCE = 1e-6


# -- Join-Tree verification ---------------------------------------------------


def verify_join_tree(
    tree: JoinTree,
    translator: "JoinTreeTranslator | None" = None,
    min_group_size: int = 2,
    patterns: Sequence[object] | None = None,
) -> list[Diagnostic]:
    """All invariant violations of one Join Tree (empty list = plan is good).

    Args:
        tree: the tree to verify.
        translator: when given, node priorities are recomputed with its
            statistics and scoring (PV105/PV106); its ``min_group_size``
            also overrides the default.
        patterns: the basic graph pattern the tree is supposed to answer;
            when given, coverage is checked (PV109).
    """
    if translator is not None:
        min_group_size = translator.min_group_size
    diagnostics: list[Diagnostic] = []
    paths = node_paths(tree)
    for node in tree.nodes:
        path = paths[id(node)]
        diagnostics.extend(_check_node_structure(node, path, min_group_size))
        diagnostics.extend(_check_node_partitioning(node, path))
        if translator is not None and translator.use_statistics:
            diagnostics.extend(_check_node_priority(node, path, translator))
    diagnostics.extend(_check_root_priority(tree, paths))
    diagnostics.extend(_check_connectivity(tree, paths))
    if patterns is not None:
        diagnostics.extend(_check_coverage(tree, patterns))
    return diagnostics


def node_paths(tree: JoinTree) -> dict[int, str]:
    """``id(node) → path`` (``root``, ``root.children[1]``, …) for a tree."""
    paths: dict[int, str] = {}

    def visit(node: JoinTreeNode, path: str) -> None:
        paths[id(node)] = path
        for index, child in enumerate(node.children):
            visit(child, f"{path}.children[{index}]")

    visit(tree.root, "root")
    return paths


def _check_node_structure(
    node: JoinTreeNode, path: str, min_group_size: int
) -> list[Diagnostic]:
    """Kind-specific pattern grouping rules (PV103, PV104, PV110)."""
    found: list[Diagnostic] = []
    label = node.label()
    if isinstance(node, VpNode):
        if len(node.patterns) != 1:
            found.append(
                Diagnostic(
                    "PV110",
                    f"a VP node answers exactly one pattern, found {len(node.patterns)}",
                    path,
                    label,
                )
            )
        return found
    if not isinstance(node, (PtNode, ObjectPtNode)):
        found.append(
            Diagnostic(
                "PV110", f"unknown node kind {type(node).__name__}", path, label
            )
        )
        return found
    if len(node.patterns) < min_group_size:
        found.append(
            Diagnostic(
                "PV110",
                f"{node.kind} node groups {len(node.patterns)} pattern(s), "
                f"below the minimum group size {min_group_size}",
                path,
                label,
            )
        )
    slot_name = "object" if isinstance(node, ObjectPtNode) else "subject"
    keys = {
        getattr(pattern, slot_name) for pattern in node.patterns
    }
    if len(keys) > 1:
        found.append(
            Diagnostic(
                "PV103",
                f"{node.kind} node groups patterns with "
                f"{len(keys)} different {slot_name}s: "
                + ", ".join(sorted(str(key) for key in keys)),
                path,
                label,
            )
        )
    for pattern in node.patterns:
        if isinstance(pattern.predicate, Variable):
            found.append(
                Diagnostic(
                    "PV104",
                    f"{node.kind} node contains the unbound predicate "
                    f"?{pattern.predicate.name}; wide-table columns require "
                    "constant predicates",
                    path,
                    label,
                )
            )
    return found


def _check_node_partitioning(node: JoinTreeNode, path: str) -> list[Diagnostic]:
    """Declared partitioning must match the storage layout (PV108)."""
    declared = node.declared_partitioning
    if declared is None:
        return []
    natural = node.natural_partitioning()
    if declared == natural:
        return []
    return [
        Diagnostic(
            "PV108",
            f"declared partitioning {list(declared)} disagrees with the "
            f"storage-derived partitioning {list(natural)}",
            path,
            node.label(),
        )
    ]


def _check_node_priority(
    node: JoinTreeNode, path: str, translator: "JoinTreeTranslator"
) -> list[Diagnostic]:
    """Priorities must match the statistics-based score (PV105)."""
    expected = translator.score(node)
    tolerance = _PRIORITY_TOLERANCE * max(1.0, abs(expected))
    if abs(node.priority - expected) <= tolerance:
        return []
    return [
        Diagnostic(
            "PV105",
            f"priority {node.priority:.6g} disagrees with the "
            f"statistics-based score {expected:.6g}",
            path,
            node.label(),
        )
    ]


def _check_root_priority(tree: JoinTree, paths: dict[int, str]) -> list[Diagnostic]:
    """The largest (minimum-priority) node must be the root (PV106)."""
    root = tree.root
    for node in tree.nodes:
        if node.priority < root.priority:
            return [
                Diagnostic(
                    "PV106",
                    f"node priority {node.priority:.6g} undercuts the root's "
                    f"{root.priority:.6g}; the minimum-priority node must be "
                    "the root (paper §3.3)",
                    paths[id(node)],
                    node.label(),
                )
            ]
    return []


def _check_connectivity(tree: JoinTree, paths: dict[int, str]) -> list[Diagnostic]:
    """Replay the executor's fold; flag avoidable cartesian joins (PV102).

    A child joining its parent's accumulated frame on zero shared variables
    is a cartesian product. That is legitimate only when the query's join
    graph is genuinely disconnected — if the child shares a variable with
    *any* node outside its own subtree, the attachment is wrong.
    """
    found: list[Diagnostic] = []
    subtree_vars: dict[int, set[str]] = {}
    subtree_ids: dict[int, set[int]] = {}

    def collect(node: JoinTreeNode) -> tuple[set[str], set[int]]:
        names = {variable.name for variable in node.variables}
        ids = {id(node)}
        for child in node.children:
            child_names, child_ids = collect(child)
            names |= child_names
            ids |= child_ids
        subtree_vars[id(node)] = names
        subtree_ids[id(node)] = ids
        return names, ids

    collect(tree.root)
    all_nodes = tree.nodes

    def outside_vars(child: JoinTreeNode) -> set[str]:
        """Variables of every node *not* in the child's subtree."""
        inside = subtree_ids[id(child)]
        names: set[str] = set()
        for node in all_nodes:
            if id(node) not in inside:
                names.update(variable.name for variable in node.variables)
        return names

    def visit(node: JoinTreeNode) -> None:
        accumulated = {variable.name for variable in node.variables}
        for child in sorted(node.children, key=lambda n: -n.priority):
            child_vars = subtree_vars[id(child)]
            if not (accumulated & child_vars):
                shared_elsewhere = child_vars & outside_vars(child)
                if shared_elsewhere:
                    found.append(
                        Diagnostic(
                            "PV102",
                            "attached below a parent sharing no variable "
                            "(cartesian product), although it shares "
                            f"{sorted(shared_elsewhere)} with other tree nodes",
                            paths[id(child)],
                            child.label(),
                        )
                    )
            accumulated |= child_vars
            visit(child)

    visit(tree.root)
    return found


def _check_coverage(
    tree: JoinTree, patterns: Sequence[object]
) -> list[Diagnostic]:
    """The tree must answer exactly the query's patterns (PV109)."""
    expected = Counter(str(pattern) for pattern in patterns)
    actual = Counter(str(pattern) for pattern in tree.patterns())
    if expected == actual:
        return []
    missing = sorted((expected - actual).elements())
    extra = sorted((actual - expected).elements())
    parts = []
    if missing:
        parts.append(f"missing {missing}")
    if extra:
        parts.append(f"extraneous {extra}")
    return [
        Diagnostic(
            "PV109",
            "tree patterns do not cover the basic graph pattern: "
            + "; ".join(parts),
            "root",
            tree.root.label(),
        )
    ]


# -- query-level verification -------------------------------------------------


def verify_query(
    query: SelectQuery,
    trees: Sequence[JoinTree],
    optional_trees: Sequence[JoinTree] = (),
    translator: "JoinTreeTranslator | None" = None,
) -> list[Diagnostic]:
    """Verify every tree of a query plus cross-tree variable binding.

    ``trees`` holds one tree per UNION branch (one for a plain BGP);
    ``optional_trees`` one per OPTIONAL group, in query order.
    """
    diagnostics: list[Diagnostic] = []
    branches = (
        list(query.union_branches) if query.is_union else [query.patterns]
    )
    for tree, branch in zip(trees, branches):
        diagnostics.extend(
            verify_join_tree(tree, translator=translator, patterns=branch)
        )
    for tree, group in zip(optional_trees, query.optional_groups):
        diagnostics.extend(
            verify_join_tree(tree, translator=translator, patterns=group)
        )
    diagnostics.extend(_check_bound_variables(query, trees, optional_trees))
    return diagnostics


def _check_bound_variables(
    query: SelectQuery,
    trees: Sequence[JoinTree],
    optional_trees: Sequence[JoinTree],
) -> list[Diagnostic]:
    """Projection/filter/grouping variables must be bound somewhere (PV101)."""
    bound: set[str] = set()
    for tree in list(trees) + list(optional_trees):
        for node in tree.nodes:
            bound.update(node.output_variables())
    found: list[Diagnostic] = []

    def check(names: Iterable[str], role: str) -> None:
        for name in names:
            if name not in bound:
                found.append(
                    Diagnostic(
                        "PV101",
                        f"{role} references ?{name}, which no tree node binds",
                        "root",
                        "query",
                    )
                )

    for expression in query.filters:
        check(
            sorted(variable.name for variable in expression.variables), "FILTER"
        )
    if query.is_aggregate:
        check((variable.name for variable in query.group_by), "GROUP BY")
        for aggregate in query.aggregates:
            if aggregate.variable is not None:
                check((aggregate.variable.name,), "aggregate")
        selectable = bound | {a.alias.name for a in query.aggregates}
        for variable in query.projection:
            if variable.name not in selectable:
                found.append(
                    Diagnostic(
                        "PV101",
                        f"SELECT references ?{variable.name}, which is neither "
                        "grouped nor aggregated",
                        "root",
                        "query",
                    )
                )
        return found
    check((variable.name for variable in query.projection), "SELECT")
    return found


# -- logical-plan verification ------------------------------------------------


@dataclass(frozen=True)
class _Derived:
    """Catalog-grounded facts about one operator's output."""

    partitioning: tuple[str, ...] | None
    num_partitions: int | None
    est_rows: int | None


def verify_logical_plan(
    plan: LogicalPlan,
    catalog: "Catalog | None" = None,
    config: "ClusterConfig | None" = None,
) -> list[Diagnostic]:
    """All engine-plan invariant violations (empty list = plan is good).

    With a ``catalog``, each scan's declared ``partition_columns`` is checked
    against the table's actual layout (PV203) and partitioning is derived
    from ground truth; with a ``config``, broadcast hints are checked against
    the size threshold (PV204) and shuffle hints against discarded
    co-partitioning (PV205).
    """
    diagnostics: list[Diagnostic] = []
    _derive(plan, "plan", catalog, config, diagnostics)
    return diagnostics


def _derive(
    plan: LogicalPlan,
    path: str,
    catalog: "Catalog | None",
    config: "ClusterConfig | None",
    out: list[Diagnostic],
) -> _Derived:
    if isinstance(plan, TableScan):
        return _derive_scan(plan, path, catalog, out)
    if isinstance(plan, InMemoryRelation):
        return _Derived(None, None, len(plan.rows))
    if isinstance(plan, (Filter, Distinct)):
        child = _derive(plan.child, f"{path}.child", catalog, config, out)
        if isinstance(plan, Filter):
            return _Derived(child.partitioning, child.num_partitions, child.est_rows)
        all_columns = tuple(plan.schema.names)
        if child.partitioning == all_columns:
            partitions = child.num_partitions
        else:
            partitions = config.default_partitions if config else None
        return _Derived(all_columns, partitions, child.est_rows)
    if isinstance(plan, Project):
        child = _derive(plan.child, f"{path}.child", catalog, config, out)
        return _Derived(
            _rename_partitioning(plan, child.partitioning),
            child.num_partitions,
            child.est_rows,
        )
    if isinstance(plan, Explode):
        child = _derive(plan.child, f"{path}.child", catalog, config, out)
        partitioning = child.partitioning
        if partitioning is not None and plan.column in partitioning:
            partitioning = None
        return _Derived(partitioning, child.num_partitions, child.est_rows)
    if isinstance(plan, (Sort, Limit)):
        child = _derive(plan.child, f"{path}.child", catalog, config, out)
        rows = child.est_rows
        if isinstance(plan, Limit) and plan.count is not None and rows is not None:
            rows = min(rows, plan.count)
        return _Derived(None, 1, rows)
    if isinstance(plan, Aggregate):
        child = _derive(plan.child, f"{path}.child", catalog, config, out)
        return _Derived(plan.keys or None, None, child.est_rows)
    if isinstance(plan, Union):
        rows: int | None = 0
        for index, branch in enumerate(plan.inputs):
            derived = _derive(branch, f"{path}.inputs[{index}]", catalog, config, out)
            if rows is not None and derived.est_rows is not None:
                rows += derived.est_rows
            else:
                rows = None
        return _Derived(None, None, rows)
    if isinstance(plan, Join):
        return _derive_join(plan, path, catalog, config, out)
    return _Derived(None, None, None)


def _derive_scan(
    plan: TableScan, path: str, catalog: "Catalog | None", out: list[Diagnostic]
) -> _Derived:
    if catalog is None:
        return _Derived(plan.partitioning, None, None)
    stored = catalog.get(plan.table_name)
    partitioner = stored.data.partitioner
    actual = partitioner.columns if partitioner is not None else None
    if plan.partition_columns != actual:
        out.append(
            Diagnostic(
                "PV203",
                f"scan of {plan.table_name!r} declares partitioning "
                f"{list(plan.partition_columns) if plan.partition_columns else None}, "
                f"but the catalog stores the table partitioned on "
                f"{list(actual) if actual else None}",
                path,
                plan._describe_line(),
            )
        )
    derived = actual
    if derived is not None and plan.columns is not None:
        if not set(derived) <= set(plan.columns):
            derived = None
    return _Derived(derived, stored.data.num_partitions, stored.row_count)


def _derive_join(
    plan: Join,
    path: str,
    catalog: "Catalog | None",
    config: "ClusterConfig | None",
    out: list[Diagnostic],
) -> _Derived:
    left = _derive(plan.left, f"{path}.left", catalog, config, out)
    right = _derive(plan.right, f"{path}.right", catalog, config, out)
    label = plan._describe_line()

    for key in plan.on:
        left_type = plan.left.schema.column(key).type
        right_type = plan.right.schema.column(key).type
        if left_type != right_type:
            out.append(
                Diagnostic(
                    "PV201",
                    f"join key {key!r} is {left_type!r} on the left side but "
                    f"{right_type!r} on the right",
                    path,
                    label,
                )
            )

    if config is not None and plan.how != "cross":
        out.extend(_check_budget(plan, left, right, path, label, config))

    if plan.how == "cross":
        rows = (
            left.est_rows * right.est_rows
            if left.est_rows is not None and right.est_rows is not None
            else None
        )
        return _Derived(None, None, rows)
    if plan.how in ("semi", "anti"):
        return _Derived(left.partitioning, left.num_partitions, left.est_rows)

    co_partitioned = (
        left.partitioning == plan.on and right.partitioning == plan.on
    )
    declared_colocated = (
        plan.left.partitioning == plan.on and plan.right.partitioning == plan.on
    )
    if declared_colocated and not co_partitioned and catalog is not None:
        out.append(
            Diagnostic(
                "PV202",
                f"declared colocated on {list(plan.on)}, but the catalog-"
                f"derived partitionings are left={_fmt(left.partitioning)} "
                f"right={_fmt(right.partitioning)}",
                path,
                label,
            )
        )
    if (
        co_partitioned
        and left.num_partitions is not None
        and right.num_partitions is not None
        and left.num_partitions != right.num_partitions
    ):
        out.append(
            Diagnostic(
                "PV202",
                f"both sides are partitioned on {list(plan.on)} but with "
                f"{left.num_partitions} vs {right.num_partitions} partitions; "
                "the colocated join silently degrades",
                path,
                label,
            )
        )
    if plan.hint == "shuffle" and co_partitioned and catalog is not None:
        if left.num_partitions == right.num_partitions:
            out.append(
                Diagnostic(
                    "PV205",
                    f"shuffle hint forces a repartition although both sides "
                    f"are already co-partitioned on {list(plan.on)}",
                    path,
                    label,
                )
            )
    if plan.hint == "broadcast" and config is not None:
        out.extend(_check_broadcast(plan, left, right, path, label, config))

    rows = (
        max(left.est_rows, right.est_rows)
        if left.est_rows is not None and right.est_rows is not None
        else None
    )
    if co_partitioned:
        partitions = (
            left.num_partitions
            if left.num_partitions == right.num_partitions
            else None
        )
        return _Derived(plan.on, partitions, rows)
    return _Derived(None, None, rows)


def _check_broadcast(
    plan: Join,
    left: _Derived,
    right: _Derived,
    path: str,
    label: str,
    config: "ClusterConfig",
) -> list[Diagnostic]:
    """A broadcast hint must have a build side under the threshold (PV204)."""
    # Imported here, not at module level: the estimation constant lives with
    # the EXPLAIN machinery and obs stays an optional layer.
    from ..obs.explain import ESTIMATED_CELL_BYTES

    def estimated_bytes(side: _Derived, schema_width: int) -> int | None:
        if side.est_rows is None:
            return None
        return side.est_rows * schema_width * ESTIMATED_CELL_BYTES

    left_bytes = estimated_bytes(left, len(plan.left.schema.names))
    right_bytes = estimated_bytes(right, len(plan.right.schema.names))
    if plan.how != "inner":
        build_bytes = right_bytes  # only the build (right) side may ship
    elif left_bytes is None or right_bytes is None:
        build_bytes = None
    else:
        build_bytes = min(left_bytes, right_bytes)
    if build_bytes is None:
        return []
    threshold = config.broadcast_threshold_bytes / config.data_scale
    if build_bytes <= threshold:
        return []
    return [
        Diagnostic(
            "PV204",
            f"broadcast hint with an estimated build side of {build_bytes} "
            f"bytes, above the {threshold:.0f}-byte threshold",
            path,
            label,
        )
    ]


def _check_budget(
    plan: Join,
    left: _Derived,
    right: _Derived,
    path: str,
    label: str,
    config: "ClusterConfig",
) -> list[Diagnostic]:
    """Advisory degradation forecast under a memory budget (PV301, PV302).

    Mirrors the runtime governor's decisions over *estimated* sizes: a
    broadcast build side over the budget will be demoted to a shuffle join,
    and a keyed hash build over the budget will run as a partitioned
    grace-hash spill. Both are degraded-but-valid plans, so these codes are
    advisory (:data:`~repro.analysis.diagnostics.ADVISORY_CODES`) — they
    never fail the pre-execution gate.
    """
    budget = config.memory_budget_bytes
    if budget is None:
        return []
    from ..obs.explain import ESTIMATED_CELL_BYTES

    def estimated_bytes(side: _Derived, schema_width: int) -> int | None:
        if side.est_rows is None:
            return None
        return side.est_rows * schema_width * ESTIMATED_CELL_BYTES

    left_bytes = estimated_bytes(left, len(plan.left.schema.names))
    right_bytes = estimated_bytes(right, len(plan.right.schema.names))
    found: list[Diagnostic] = []
    if plan.hint == "broadcast":
        if plan.how != "inner" or left_bytes is None or right_bytes is None:
            build_bytes = right_bytes  # only the build (right) side may ship
        else:
            build_bytes = min(left_bytes, right_bytes)
        if build_bytes is not None and build_bytes > budget:
            found.append(
                Diagnostic(
                    "PV301",
                    f"broadcast build side estimated at {build_bytes} bytes "
                    f"exceeds the {budget}-byte memory budget; the governor "
                    "will degrade it to a shuffle join",
                    path,
                    label,
                )
            )
    if right_bytes is not None and right_bytes > budget:
        found.append(
            Diagnostic(
                "PV302",
                f"hash-join build side estimated at {right_bytes} bytes "
                f"exceeds the {budget}-byte memory budget; the governor will "
                "run it as a partitioned grace-hash spill",
                path,
                label,
            )
        )
    return found


def _rename_partitioning(
    plan: Project, partitioning: tuple[str, ...] | None
) -> tuple[str, ...] | None:
    """Ground-truth twin of ``Project.partitioning`` over derived facts."""
    if partitioning is None:
        return None
    from ..engine.expressions import ColumnRef

    rename: dict[str, str] = {}
    for out_name, expression in plan.outputs:
        if isinstance(expression, ColumnRef):
            rename.setdefault(expression.name, out_name)
    try:
        return tuple(rename[name] for name in partitioning)
    except KeyError:
        return None


def _fmt(partitioning: tuple[str, ...] | None) -> str:
    return str(list(partitioning)) if partitioning is not None else "None"


# -- the engine's pre-execution gate ------------------------------------------


def check_query(
    query: SelectQuery,
    trees: Sequence[JoinTree],
    optional_trees: Sequence[JoinTree],
    plan: LogicalPlan,
    translator: "JoinTreeTranslator | None" = None,
    catalog: "Catalog | None" = None,
    config: "ClusterConfig | None" = None,
) -> None:
    """Verify a fully-planned query; raise on any violated invariant.

    Raises:
        PlanVerificationError: carrying every
            :class:`~repro.analysis.diagnostics.Diagnostic`, with an
            EXPLAIN-style rendering of the offending tree as the message.
    """
    diagnostics = verify_query(
        query, trees, optional_trees, translator=translator
    )
    diagnostics.extend(verify_logical_plan(plan, catalog=catalog, config=config))
    # Advisory (PV3xx) findings describe degraded-but-valid plans the
    # governor handles at runtime; only genuine violations block execution.
    blocking = [d for d in diagnostics if d.code not in ADVISORY_CODES]
    if not blocking:
        return
    tree_text = "\n".join(tree.describe() for tree in list(trees) + list(optional_trees))
    raise PlanVerificationError(
        render_diagnostics(blocking, tree_text), diagnostics=tuple(blocking)
    )
