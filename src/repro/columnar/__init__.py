"""Columnar storage (mini-Parquet): encodings, schemas, and table files."""

from .binio import ByteReader, ByteWriter
from .encoding import (
    DICTIONARY,
    ENCODINGS,
    PLAIN,
    RLE,
    decode,
    encode_best,
    encode_dictionary,
    encode_plain,
    encode_rle,
)
from .schema import ColumnSchema, TableSchema, validate_value
from .table_file import (
    DEFAULT_ROW_GROUP_SIZE,
    ChunkInfo,
    FileStatistics,
    file_statistics,
    iter_rows_as_dicts,
    read_schema,
    read_table,
    write_table,
)

__all__ = [
    "ByteReader",
    "ByteWriter",
    "ChunkInfo",
    "ColumnSchema",
    "DEFAULT_ROW_GROUP_SIZE",
    "DICTIONARY",
    "ENCODINGS",
    "FileStatistics",
    "PLAIN",
    "RLE",
    "TableSchema",
    "decode",
    "encode_best",
    "encode_dictionary",
    "encode_plain",
    "encode_rle",
    "file_statistics",
    "iter_rows_as_dicts",
    "read_schema",
    "read_table",
    "validate_value",
    "write_table",
]
