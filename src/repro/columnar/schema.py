"""Schemas for columnar tables.

The Property Table needs exactly what Parquet gives Jena-style stores: nullable
scalar columns plus *list* columns for multi-valued predicates (paper §3.1).
Supported column types:

- ``string``, ``int``, ``double``, ``bool`` — nullable scalars
- ``list<string>``, ``list<int>`` — nullable lists of scalars
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchemaError

SCALAR_TYPES = ("string", "int", "double", "bool")
LIST_TYPES = ("list<string>", "list<int>")
ALL_TYPES = SCALAR_TYPES + LIST_TYPES


@dataclass(frozen=True, slots=True)
class ColumnSchema:
    """One column: name plus logical type. All columns are nullable."""

    name: str
    type: str

    def __post_init__(self) -> None:
        if self.type not in ALL_TYPES:
            raise SchemaError(f"unknown column type {self.type!r} for {self.name!r}")
        if not self.name:
            raise SchemaError("column name must be non-empty")

    @property
    def is_list(self) -> bool:
        return self.type in LIST_TYPES

    @property
    def element_type(self) -> str:
        """The scalar type of a list column's elements (or the type itself)."""
        if self.is_list:
            return self.type[len("list<") : -1]
        return self.type


class TableSchema:
    """An ordered set of uniquely named columns."""

    def __init__(self, columns: list[ColumnSchema] | tuple[ColumnSchema, ...]):
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {duplicates}")
        self.columns: tuple[ColumnSchema, ...] = tuple(columns)
        self._names: tuple[str, ...] = tuple(names)
        self._by_name = {column.name: i for i, column in enumerate(self.columns)}

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, TableSchema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def column(self, name: str) -> ColumnSchema:
        """Look up a column by name.

        Raises:
            SchemaError: for an unknown column.
        """
        index = self._by_name.get(name)
        if index is None:
            raise SchemaError(f"unknown column {name!r}; have {list(self.names)}")
        return self.columns[index]

    def index_of(self, name: str) -> int:
        """Positional index of a column (raises SchemaError when unknown)."""
        index = self._by_name.get(name)
        if index is None:
            raise SchemaError(f"unknown column {name!r}; have {list(self.names)}")
        return index

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def select(self, names: list[str] | tuple[str, ...]) -> "TableSchema":
        """A new schema containing only ``names``, in the given order."""
        return TableSchema([self.column(name) for name in names])

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.type}" for c in self.columns)
        return f"TableSchema({inner})"


def validate_value(column: ColumnSchema, value) -> None:
    """Check one cell value against a column schema.

    Raises:
        SchemaError: when the value does not fit the column type.
    """
    if value is None:
        return
    if column.is_list:
        if not isinstance(value, (list, tuple)):
            raise SchemaError(
                f"column {column.name!r} expects a list, got {type(value).__name__}"
            )
        for element in value:
            _validate_scalar(column.element_type, element, column.name)
        return
    _validate_scalar(column.type, value, column.name)


def _validate_scalar(type_name: str, value, column_name: str) -> None:
    expected = {
        "string": str,
        "int": int,
        "double": (int, float),
        "bool": bool,
    }[type_name]
    if type_name == "int" and isinstance(value, bool):
        raise SchemaError(f"column {column_name!r} expects int, got bool")
    if not isinstance(value, expected):
        raise SchemaError(
            f"column {column_name!r} expects {type_name}, got {type(value).__name__}"
        )
