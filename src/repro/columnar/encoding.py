"""Column encodings: PLAIN, RLE, and DICTIONARY.

The paper (§3.1) leans on Parquet's run-length encoding to make the
NULL-heavy Property Table cheap to store: a long run of NULLs collapses to a
single (count, NULL) pair. We reproduce that mechanism:

- ``PLAIN`` — values written one after another.
- ``RLE`` — (run-length, value) pairs; ideal for NULL runs and low-cardinality
  columns.
- ``DICTIONARY`` — distinct values written once, then RLE-coded indexes;
  ideal for repetitive strings such as IRIs sharing a namespace.

The chunk writer tries all three and keeps the smallest, like Parquet's
encoder fallback.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import EncodingError
from .binio import ByteReader, ByteWriter
from .schema import ColumnSchema

PLAIN = "plain"
RLE = "rle"
DICTIONARY = "dictionary"

ENCODINGS = (PLAIN, RLE, DICTIONARY)

#: Tag bytes for nullable value units.
_NULL = 0
_PRESENT = 1


# -- single-value units -------------------------------------------------------


def _write_scalar(writer: ByteWriter, type_name: str, value) -> None:
    if type_name == "string":
        writer.write_string(value)
    elif type_name == "int":
        writer.write_varint(value)
    elif type_name == "double":
        writer.write_double(float(value))
    elif type_name == "bool":
        writer.write_bytes(b"\x01" if value else b"\x00")
    else:
        raise EncodingError(f"unknown scalar type {type_name!r}")


def _read_scalar(reader: ByteReader, type_name: str):
    if type_name == "string":
        return reader.read_string()
    if type_name == "int":
        return reader.read_varint()
    if type_name == "double":
        return reader.read_double()
    if type_name == "bool":
        return reader.read_bytes(1) == b"\x01"
    raise EncodingError(f"unknown scalar type {type_name!r}")


def write_value(writer: ByteWriter, column: ColumnSchema, value) -> None:
    """Write one nullable cell (scalar or list) as a tagged unit."""
    if value is None:
        writer.write_bytes(bytes([_NULL]))
        return
    writer.write_bytes(bytes([_PRESENT]))
    if column.is_list:
        writer.write_uvarint(len(value))
        for element in value:
            _write_scalar(writer, column.element_type, element)
    else:
        _write_scalar(writer, column.type, value)


def read_value(reader: ByteReader, column: ColumnSchema):
    """Read one nullable cell written by :func:`write_value`."""
    tag = reader.read_bytes(1)[0]
    if tag == _NULL:
        return None
    if tag != _PRESENT:
        raise EncodingError(f"bad value tag {tag}")
    if column.is_list:
        count = reader.read_uvarint()
        return [_read_scalar(reader, column.element_type) for _ in range(count)]
    return _read_scalar(reader, column.type)


def _hashable(value):
    """Lists are unhashable; freeze them for run/dictionary comparisons."""
    if isinstance(value, list):
        return tuple(value)
    return value


def _thaw(value):
    if isinstance(value, tuple):
        return list(value)
    return value


# -- encoders -------------------------------------------------------------------


def encode_plain(column: ColumnSchema, values: Sequence) -> bytes:
    """Encode values one after another."""
    writer = ByteWriter()
    writer.write_uvarint(len(values))
    for value in values:
        write_value(writer, column, value)
    return writer.getvalue()


def decode_plain(column: ColumnSchema, data: bytes) -> list:
    reader = ByteReader(data)
    count = reader.read_uvarint()
    return [read_value(reader, column) for _ in range(count)]


def encode_rle(column: ColumnSchema, values: Sequence) -> bytes:
    """Encode values as (run-length, value) pairs."""
    writer = ByteWriter()
    writer.write_uvarint(len(values))
    index = 0
    while index < len(values):
        current = _hashable(values[index])
        run = 1
        while index + run < len(values) and _hashable(values[index + run]) == current:
            run += 1
        writer.write_uvarint(run)
        write_value(writer, column, values[index])
        index += run
    return writer.getvalue()


def decode_rle(column: ColumnSchema, data: bytes) -> list:
    reader = ByteReader(data)
    total = reader.read_uvarint()
    values: list = []
    while len(values) < total:
        run = reader.read_uvarint()
        value = read_value(reader, column)
        if isinstance(value, list):
            values.extend(list(value) for _ in range(run))
        else:
            values.extend([value] * run)
    if len(values) != total:
        raise EncodingError("RLE run lengths do not sum to the declared count")
    return values


def encode_dictionary(column: ColumnSchema, values: Sequence) -> bytes:
    """Encode a dictionary of distinct values plus RLE-coded indexes.

    NULL is represented as dictionary index 0 reserved slot? No — NULL is a
    regular dictionary entry, which keeps the format uniform.
    """
    writer = ByteWriter()
    writer.write_uvarint(len(values))
    dictionary: dict = {}
    indexes: list[int] = []
    for value in values:
        key = _hashable(value)
        code = dictionary.get(key)
        if code is None:
            code = len(dictionary)
            dictionary[key] = code
        indexes.append(code)
    writer.write_uvarint(len(dictionary))
    for key in dictionary:
        write_value(writer, column, _thaw(key))
    # RLE over the index stream.
    position = 0
    while position < len(indexes):
        code = indexes[position]
        run = 1
        while position + run < len(indexes) and indexes[position + run] == code:
            run += 1
        writer.write_uvarint(run)
        writer.write_uvarint(code)
        position += run
    return writer.getvalue()


def decode_dictionary(column: ColumnSchema, data: bytes) -> list:
    reader = ByteReader(data)
    total = reader.read_uvarint()
    dict_size = reader.read_uvarint()
    dictionary = [read_value(reader, column) for _ in range(dict_size)]
    values: list = []
    while len(values) < total:
        run = reader.read_uvarint()
        code = reader.read_uvarint()
        if code >= dict_size:
            raise EncodingError(f"dictionary index {code} out of range")
        value = dictionary[code]
        if isinstance(value, list):
            values.extend(list(value) for _ in range(run))
        else:
            values.extend([value] * run)
    if len(values) != total:
        raise EncodingError("dictionary run lengths do not sum to the declared count")
    return values


_ENCODERS = {PLAIN: encode_plain, RLE: encode_rle, DICTIONARY: encode_dictionary}
_DECODERS = {PLAIN: decode_plain, RLE: decode_rle, DICTIONARY: decode_dictionary}


def encode_best(
    column: ColumnSchema, values: Sequence, allowed: tuple[str, ...] = ENCODINGS
) -> tuple[str, bytes]:
    """Encode with every allowed encoding and keep the smallest result."""
    if not allowed:
        raise EncodingError("at least one encoding must be allowed")
    best_name = ""
    best_data = b""
    for name in allowed:
        data = _ENCODERS[name](column, values)
        if not best_name or len(data) < len(best_data):
            best_name, best_data = name, data
    return best_name, best_data


def decode(column: ColumnSchema, encoding: str, data: bytes) -> list:
    """Decode a chunk produced by any of the encoders."""
    decoder = _DECODERS.get(encoding)
    if decoder is None:
        raise EncodingError(f"unknown encoding {encoding!r}")
    return decoder(column, data)
