"""Columnar table files over the simulated HDFS (mini-Parquet).

File layout (all primitives from :mod:`repro.columnar.binio`)::

    magic "RCF1"
    header: uvarint column_count, then per column: name | type
    uvarint row_group_count
    row groups, each:
        uvarint row_count
        per column: uvarint encoding-id | compression flag byte
                    | sized chunk bytes (zlib-deflated when flagged)

Readers can prune columns: chunks of unselected columns are skipped without
decoding (their byte ranges are length-prefixed). This models Parquet's
column pruning and is what makes the wide Property Table cheap to scan for
star sub-queries touching few predicates. Chunk payloads are additionally
zlib-compressed when that shrinks them, playing the role of Parquet's
page-level Snappy/GZIP compression.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..errors import EncodingError, SchemaError, ValidationError
from ..hdfs.filesystem import SimulatedHdfs
from .binio import ByteReader, ByteWriter
from .encoding import ENCODINGS, decode, encode_best
from .schema import ColumnSchema, TableSchema, validate_value

_MAGIC = b"RCF1"
_ENCODING_IDS = {name: i for i, name in enumerate(ENCODINGS)}
_ENCODING_NAMES = {i: name for name, i in _ENCODING_IDS.items()}

#: Default rows per row group; small so laptop-scale tables still get several.
DEFAULT_ROW_GROUP_SIZE = 50_000


@dataclass(frozen=True)
class ChunkInfo:
    """Metadata of one encoded column chunk (for inspection and stats)."""

    column: str
    encoding: str
    encoded_bytes: int
    num_values: int
    null_count: int


@dataclass(frozen=True)
class FileStatistics:
    """Summary of an entire columnar file."""

    row_count: int
    row_groups: int
    total_bytes: int
    chunks: tuple[ChunkInfo, ...]

    def bytes_for_column(self, name: str) -> int:
        return sum(chunk.encoded_bytes for chunk in self.chunks if chunk.column == name)

    def encodings_used(self) -> set[str]:
        return {chunk.encoding for chunk in self.chunks}


def write_table(
    hdfs: SimulatedHdfs,
    path: str,
    schema: TableSchema,
    rows: Sequence[tuple],
    row_group_size: int = DEFAULT_ROW_GROUP_SIZE,
    allowed_encodings: tuple[str, ...] = ENCODINGS,
    compress_pages: bool = True,
    preferred_node: int | None = None,
    overwrite: bool = False,
) -> FileStatistics:
    """Write rows (tuples matching the schema order) as a columnar file.

    Args:
        allowed_encodings: restrict the encoder (the encoding ablation uses
            ``("plain",)`` to measure what RLE buys the Property Table).
        compress_pages: zlib-deflate chunk payloads (Parquet's page
            compression); disable to measure raw encoding sizes.
        preferred_node: pin block placement, as a node-local writer would.

    Raises:
        SchemaError: when a row has the wrong arity or a bad cell value.
    """
    if row_group_size <= 0:
        raise ValidationError("row_group_size must be positive")
    writer = ByteWriter()
    writer.write_bytes(_MAGIC)
    _write_schema(writer, schema)
    groups: list[Sequence[tuple]] = [
        rows[i : i + row_group_size] for i in range(0, len(rows), row_group_size)
    ]
    if not groups:
        groups = [[]]
    writer.write_uvarint(len(groups))
    chunk_infos: list[ChunkInfo] = []
    for group in groups:
        writer.write_uvarint(len(group))
        for index, column in enumerate(schema.columns):
            values = [_cell(row, index, schema) for row in group]
            for value in values:
                validate_value(column, value)
            encoding, data = encode_best(column, values, allowed_encodings)
            writer.write_uvarint(_ENCODING_IDS[encoding])
            compressed = zlib.compress(data, level=6) if compress_pages else data
            if len(compressed) < len(data):
                writer.write_bytes(b"\x01")
                payload = compressed
            else:
                writer.write_bytes(b"\x00")
                payload = data
            writer.write_sized(payload)
            chunk_infos.append(
                ChunkInfo(
                    column=column.name,
                    encoding=encoding,
                    encoded_bytes=len(payload),
                    num_values=len(values),
                    null_count=sum(1 for v in values if v is None),
                )
            )
    payload = writer.getvalue()
    hdfs.write(path, payload, preferred_node=preferred_node, overwrite=overwrite)
    return FileStatistics(
        row_count=len(rows),
        row_groups=len(groups),
        total_bytes=len(payload),
        chunks=tuple(chunk_infos),
    )


def _cell(row: tuple, index: int, schema: TableSchema):
    if len(row) != len(schema):
        raise SchemaError(
            f"row has {len(row)} cells but the schema has {len(schema)} columns"
        )
    return row[index]


def _write_schema(writer: ByteWriter, schema: TableSchema) -> None:
    writer.write_uvarint(len(schema))
    for column in schema.columns:
        writer.write_string(column.name)
        writer.write_string(column.type)


def _read_schema(reader: ByteReader) -> TableSchema:
    count = reader.read_uvarint()
    return TableSchema(
        [ColumnSchema(reader.read_string(), reader.read_string()) for _ in range(count)]
    )


def _open(data: bytes) -> tuple[TableSchema, ByteReader]:
    if data[: len(_MAGIC)] != _MAGIC:
        raise EncodingError("not a columnar table file (bad magic)")
    reader = ByteReader(data, offset=len(_MAGIC))
    return _read_schema(reader), reader


def read_schema(hdfs: SimulatedHdfs, path: str) -> TableSchema:
    """Read only the schema header of a columnar file."""
    schema, _ = _open(hdfs.read(path))
    return schema


def read_table(
    hdfs: SimulatedHdfs, path: str, columns: Sequence[str] | None = None
) -> tuple[TableSchema, list[tuple]]:
    """Read a columnar file, optionally pruning to ``columns``.

    Returns the (possibly pruned) schema and the rows as tuples in the pruned
    schema's order. Unselected chunks are skipped without decoding.
    """
    schema, reader = _open(hdfs.read(path))
    wanted = list(schema.names) if columns is None else list(columns)
    pruned = schema.select(wanted)
    wanted_set = set(wanted)
    rows: list[tuple] = []
    group_count = reader.read_uvarint()
    for _ in range(group_count):
        row_count = reader.read_uvarint()
        decoded: dict[str, list] = {}
        for column in schema.columns:
            encoding_id = reader.read_uvarint()
            compression = reader.read_bytes(1)
            chunk = reader.read_sized()
            if column.name not in wanted_set:
                continue
            encoding = _ENCODING_NAMES.get(encoding_id)
            if encoding is None:
                raise EncodingError(f"unknown encoding id {encoding_id}")
            if compression == b"\x01":
                chunk = zlib.decompress(chunk)
            values = decode(column, encoding, chunk)
            if len(values) != row_count:
                raise EncodingError(
                    f"chunk of {column.name!r} has {len(values)} values, "
                    f"expected {row_count}"
                )
            decoded[column.name] = values
        for row_index in range(row_count):
            rows.append(tuple(decoded[name][row_index] for name in wanted))
    return pruned, rows


def file_statistics(hdfs: SimulatedHdfs, path: str) -> FileStatistics:
    """Recompute :class:`FileStatistics` from a stored file."""
    data = hdfs.read(path)
    schema, reader = _open(data)
    group_count = reader.read_uvarint()
    chunks: list[ChunkInfo] = []
    total_rows = 0
    for _ in range(group_count):
        row_count = reader.read_uvarint()
        total_rows += row_count
        for column in schema.columns:
            encoding_id = reader.read_uvarint()
            compression = reader.read_bytes(1)
            chunk = reader.read_sized()
            stored_size = len(chunk)
            if compression == b"\x01":
                chunk = zlib.decompress(chunk)
            values = decode(column, _ENCODING_NAMES[encoding_id], chunk)
            chunks.append(
                ChunkInfo(
                    column=column.name,
                    encoding=_ENCODING_NAMES[encoding_id],
                    encoded_bytes=stored_size,
                    num_values=len(values),
                    null_count=sum(1 for v in values if v is None),
                )
            )
    return FileStatistics(
        row_count=total_rows,
        row_groups=group_count,
        total_bytes=len(data),
        chunks=tuple(chunks),
    )


def iter_rows_as_dicts(schema: TableSchema, rows: Iterable[tuple]):
    """Convenience: yield rows as ``{column: value}`` dictionaries."""
    names = schema.names
    for row in rows:
        yield dict(zip(names, row))
