"""Low-level binary readers/writers for the columnar file format.

Implements the primitives the encoders and file footers are built from:
unsigned varints (LEB128), zigzag-coded signed varints, length-prefixed
UTF-8 strings, and raw byte runs. All multi-byte values are little-endian.
"""

from __future__ import annotations

import struct

from ..errors import EncodingError


class ByteWriter:
    """Append-only binary buffer."""

    def __init__(self):
        self._chunks: list[bytes] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def write_bytes(self, data: bytes) -> None:
        self._chunks.append(data)
        self._size += len(data)

    def write_uvarint(self, value: int) -> None:
        """Write an unsigned LEB128 varint."""
        if value < 0:
            raise EncodingError(f"uvarint cannot encode negative value {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self.write_bytes(bytes(out))

    def write_varint(self, value: int) -> None:
        """Write a signed varint using zigzag coding."""
        self.write_uvarint((value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1)

    def write_string(self, text: str) -> None:
        """Write a length-prefixed UTF-8 string."""
        data = text.encode("utf-8")
        self.write_uvarint(len(data))
        self.write_bytes(data)

    def write_double(self, value: float) -> None:
        self.write_bytes(struct.pack("<d", value))

    def write_sized(self, data: bytes) -> None:
        """Write a length-prefixed byte run."""
        self.write_uvarint(len(data))
        self.write_bytes(data)


class ByteReader:
    """Cursor-based reader matching :class:`ByteWriter`."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._pos = offset

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def read_bytes(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise EncodingError("unexpected end of encoded data")
        data = self._data[self._pos : self._pos + count]
        self._pos += count
        return data

    def read_uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            if self._pos >= len(self._data):
                raise EncodingError("truncated varint")
            byte = self._data[self._pos]
            self._pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise EncodingError("varint too long")

    def read_varint(self) -> int:
        raw = self.read_uvarint()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)

    def read_string(self) -> str:
        length = self.read_uvarint()
        return self.read_bytes(length).decode("utf-8")

    def read_double(self) -> float:
        return struct.unpack("<d", self.read_bytes(8))[0]

    def read_sized(self) -> bytes:
        return self.read_bytes(self.read_uvarint())
