"""Query results: decoded solution rows plus the execution report."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from ..engine.session import QueryReport
from ..rdf.terms import Term, term_sort_key


@dataclass(frozen=True)
class QueryExecutionReport:
    """Everything measured about one SPARQL query run.

    Attributes:
        join_tree: textual rendering of the translated Join Tree (``None``
            for systems without one, e.g. Rya).
        engine_report: the engine-level :class:`QueryReport`, when the query
            ran on the DataFrame engine.
        simulated_sec: cost-model cluster time.
        wall_clock_sec: local Python execution time.
        trace: root :class:`~repro.obs.tracer.Span` of the whole query when
            it ran under a tracer (``None`` otherwise).
        explain_text: pre-rendered EXPLAIN ANALYZE text (Join Tree with
            actuals + engine plan) when the run was traced and alignable.
    """

    simulated_sec: float
    wall_clock_sec: float
    join_tree: str | None = None
    engine_report: QueryReport | None = None
    trace: object | None = None
    explain_text: str | None = None

    def summary(self) -> str:
        parts = [f"simulated={self.simulated_sec * 1000:.1f}ms"]
        if self.engine_report is not None:
            parts.append(self.engine_report.summary())
        return " ".join(parts)

    def explain(self) -> str:
        """The best available EXPLAIN text for this run.

        Traced runs return the full EXPLAIN ANALYZE rendering; untraced
        runs fall back to the Join Tree description plus the engine plan.
        """
        if self.explain_text is not None:
            return self.explain_text
        parts = []
        if self.join_tree is not None:
            parts.append(f"== Join Tree ==\n{self.join_tree}")
        if self.engine_report is not None:
            parts.append(f"== Engine Plan ==\n{self.engine_report.explain()}")
        return "\n".join(parts) if parts else "(no plan information recorded)"


class ResultSet:
    """Decoded solutions of one SELECT query.

    Rows are tuples of terms (or ``None`` for unbound cells) ordered by the
    query's projection. Without an ORDER BY clause rows are sorted
    deterministically, so result sets compare exactly across systems.
    """

    def __init__(
        self,
        variables: tuple[str, ...],
        rows: list[tuple[Term | None, ...]],
        report: QueryExecutionReport,
    ):
        self.variables = variables
        self.rows = rows
        self.report = report

    def __iter__(self) -> Iterator[tuple[Term | None, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other) -> bool:
        if isinstance(other, ResultSet):
            return self.variables == other.variables and self.rows == other.rows
        return NotImplemented

    def to_dicts(self) -> list[dict[str, Term | None]]:
        """Rows as ``{variable: term}`` dictionaries."""
        return [dict(zip(self.variables, row)) for row in self.rows]

    def __repr__(self) -> str:
        return f"ResultSet({len(self.rows)} rows, vars={list(self.variables)})"


def solution_sort_key(row: tuple[Term | None, ...]):
    """Deterministic ordering for solution rows (NULLs first)."""
    return [
        (-1, "") if term is None else term_sort_key(term) for term in row
    ]
