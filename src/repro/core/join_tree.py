"""The Join Tree: PRoST's intermediate query representation (paper §3.2).

Each node of the tree answers a sub-query from one of the two data layouts:

- :class:`VpNode` — a single triple pattern, read from that predicate's
  Vertical Partitioning table;
- :class:`PtNode` — a group of triple patterns sharing a subject, read from
  the Property Table with a single wide-row select (no joins);
- :class:`ObjectPtNode` — the future-work (§5) variant grouping patterns
  that share an *object* variable, read from the object-keyed PT.

Executing a tree computes each node's intermediate result and joins children
into parents bottom-up; the node *priorities* (paper §3.3) decide the tree
shape and hence the join order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sparql.algebra import TriplePattern, Variable


@dataclass
class JoinTreeNode:
    """Base node: patterns it answers, its priority, and its children.

    Besides the tree shape, every node carries two *declared* properties the
    static plan verifier (:mod:`repro.analysis`) checks before execution:
    its output variables (:meth:`output_variables`, derived from the
    patterns) and its partitioning (``declared_partitioning``, stamped by the
    translator from :meth:`natural_partitioning`). A declaration of ``None``
    means "undeclared" — trees built by hand stay verifiable — while a
    mismatch between a declaration and the derivable ground truth is
    rejected as a corrupted plan.
    """

    patterns: tuple[TriplePattern, ...]
    priority: float = 0.0
    children: list["JoinTreeNode"] = field(default_factory=list)
    #: Variable columns the node's sub-query result is hash-partitioned on,
    #: as declared by the translator (``None`` = not declared; ``()`` = the
    #: result carries no keyed partitioning).
    declared_partitioning: tuple[str, ...] | None = None

    @property
    def variables(self) -> set[Variable]:
        found: set[Variable] = set()
        for pattern in self.patterns:
            found |= pattern.variables
        return found

    def output_variables(self) -> tuple[str, ...]:
        """The result columns of this node's own sub-query, sorted.

        Mirrors :class:`~repro.core.executor.JoinTreeExecutor` column naming:
        every variable of the node's patterns becomes a column named after
        the variable (fully bound patterns contribute a synthetic existence
        column instead, which never joins and is not listed here).
        """
        return tuple(sorted(variable.name for variable in self.variables))

    def natural_partitioning(self) -> tuple[str, ...]:
        """The partitioning this node's sub-query has by construction.

        Derived from the storage layout (paper §3.1): VP and PT tables are
        hash-partitioned on the subject, the object-keyed PT on the object.
        Reading a node therefore leaves its result partitioned on the key
        variable — unless the key slot is a constant (the key column is
        filtered and dropped) or the predicate is unbound (a VP union loses
        keyed placement).
        """
        key = self._key_slot()
        if not isinstance(key, Variable):
            return ()
        if any(isinstance(p.predicate, Variable) for p in self.patterns):
            return ()
        return (key.name,)

    def _key_slot(self):
        """The pattern slot holding the node's storage key (subject here;
        :class:`ObjectPtNode` overrides with the object)."""
        return self.patterns[0].subject

    @property
    def partitioning(self) -> tuple[str, ...]:
        """Effective partitioning: the declaration, else the natural one."""
        if self.declared_partitioning is not None:
            return self.declared_partitioning
        return self.natural_partitioning()

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.label()} (priority={self.priority:.3f})"]
        for pattern in self.patterns:
            lines.append(f"{pad}  | {pattern}")
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def walk(self):
        """Yield this node and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class VpNode(JoinTreeNode):
    """One triple pattern answered from a Vertical Partitioning table."""

    @property
    def pattern(self) -> TriplePattern:
        return self.patterns[0]

    @property
    def kind(self) -> str:
        return "VP"

    def label(self) -> str:
        return "VP"


@dataclass
class PtNode(JoinTreeNode):
    """A same-subject pattern group answered from the Property Table."""

    @property
    def kind(self) -> str:
        return "PT"

    def label(self) -> str:
        return f"PT[{len(self.patterns)} patterns]"


@dataclass
class ObjectPtNode(JoinTreeNode):
    """A same-object pattern group answered from the object-keyed PT (§5)."""

    def _key_slot(self):
        return self.patterns[0].object

    @property
    def kind(self) -> str:
        return "OPT"

    def label(self) -> str:
        return f"ObjectPT[{len(self.patterns)} patterns]"


@dataclass
class JoinTree:
    """The root node plus bookkeeping for the whole translated query."""

    root: JoinTreeNode

    @property
    def nodes(self) -> list[JoinTreeNode]:
        return list(self.root.walk())

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_joins(self) -> int:
        """Joins needed to combine all nodes (nodes − 1)."""
        return self.num_nodes - 1

    def patterns(self) -> list[TriplePattern]:
        """Every triple pattern covered by the tree."""
        found: list[TriplePattern] = []
        for node in self.nodes:
            found.extend(node.patterns)
        return found

    def describe(self) -> str:
        return self.root.describe()

    def node_kinds(self) -> dict[str, int]:
        """Count of nodes per kind, e.g. ``{"PT": 2, "VP": 3}``."""
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts
