"""SPARQL → Join Tree translation with statistics-based priorities (§3.2-3.3).

Translation steps, following the paper:

1. Group the BGP's triple patterns by subject. Under the ``mixed`` strategy a
   group of two or more patterns becomes one :class:`PtNode` (answered by the
   Property Table with a single select); every remaining pattern becomes a
   :class:`VpNode`. Under the ``vp`` strategy everything becomes VP nodes.
2. Score each node with a priority derived from the loading-time statistics:
   triple patterns containing literals (or any constant object) score
   highest; otherwise a node's priority falls with the number of tuples in
   its underlying data, adjusted by the distinct-subject count. A PT node is
   scored over all its patterns, with literal patterns weighted heavily.
3. Build the tree: the lowest-priority (largest) node becomes the root; each
   further node, taken in descending priority, is attached below the
   already-placed node it shares a variable with, keeping selective
   sub-queries deep in the tree so they are computed first.
"""

from __future__ import annotations

from ..errors import TranslationError
from ..sparql.algebra import SelectQuery, TriplePattern, Variable
from ..rdf.stats import GraphStatistics
from .join_tree import JoinTree, JoinTreeNode, ObjectPtNode, PtNode, VpNode

#: Priority bonus for a constant (literal/IRI) in the object position.
LITERAL_PRIORITY = 1_000_000.0
#: Weight of each literal-constrained pattern inside a PT node's score.
PT_LITERAL_WEIGHT = 0.5 * LITERAL_PRIORITY

STRATEGIES = ("mixed", "vp")


class JoinTreeTranslator:
    """Builds Join Trees from parsed queries using graph statistics."""

    def __init__(
        self,
        statistics: GraphStatistics,
        strategy: str = "mixed",
        min_group_size: int = 2,
        use_object_property_table: bool = False,
        use_statistics: bool = True,
    ):
        """
        Args:
            statistics: loading-time statistics of the queried graph.
            strategy: ``mixed`` (VP + PT, the paper's contribution) or ``vp``
                (Vertical Partitioning only, Figure 2's baseline).
            min_group_size: smallest same-subject group answered by the PT.
            use_object_property_table: also group same-object patterns into
                :class:`ObjectPtNode` sub-queries (paper §5 future work).
            use_statistics: disable to score every node 0 and keep query
                order, which reduces the tree to an arbitrary connected shape
                — the join-ordering ablation.
        """
        if strategy not in STRATEGIES:
            raise TranslationError(f"unknown strategy {strategy!r}")
        if min_group_size < 2:
            raise TranslationError("min_group_size must be at least 2")
        self.statistics = statistics
        self.strategy = strategy
        self.min_group_size = min_group_size
        self.use_object_property_table = use_object_property_table
        self.use_statistics = use_statistics

    # -- public API ---------------------------------------------------------------

    def translate(self, query: SelectQuery) -> JoinTree:
        """Translate a query's required BGP into a prioritized Join Tree.

        UNION queries have no single tree; translate each branch with
        :meth:`translate_bgp` instead.
        """
        if query.is_union:
            raise TranslationError(
                "a UNION query has one Join Tree per branch; use translate_bgp"
            )
        return self.translate_bgp(query.patterns)

    def translate_bgp(self, patterns) -> JoinTree:
        """Translate one conjunction of triple patterns into a Join Tree."""
        nodes = self._build_nodes(list(patterns))
        for node in nodes:
            # Declared properties the static plan verifier checks against
            # the derivable ground truth (repro.analysis.verifier).
            node.declared_partitioning = node.natural_partitioning()
            if self.use_statistics:
                node.priority = self._score(node)
        return self._assemble(nodes)

    def score(self, node: JoinTreeNode) -> float:
        """The statistics-based priority this translator assigns ``node``.

        Public so the plan verifier can recompute priorities independently
        and reject trees whose declared priorities disagree with the
        statistics (a tampered or stale plan).
        """
        return self._score(node)

    # -- node grouping ----------------------------------------------------------------

    def _build_nodes(self, patterns: list[TriplePattern]) -> list[JoinTreeNode]:
        if not patterns:
            raise TranslationError("cannot translate an empty basic graph pattern")
        nodes: list[JoinTreeNode] = []
        remaining = list(patterns)

        if self.strategy == "mixed":
            groups: dict[object, list[TriplePattern]] = {}
            for pattern in remaining:
                groups.setdefault(pattern.subject, []).append(pattern)
            remaining = []
            for subject, group in groups.items():
                usable = [p for p in group if not isinstance(p.predicate, Variable)]
                if len(usable) >= self.min_group_size:
                    nodes.append(PtNode(patterns=tuple(usable)))
                    remaining.extend(p for p in group if p not in usable)
                else:
                    remaining.extend(group)

            if self.use_object_property_table:
                remaining = self._group_by_object(remaining, nodes)

        for pattern in remaining:
            nodes.append(VpNode(patterns=(pattern,)))
        return nodes

    def _group_by_object(
        self, patterns: list[TriplePattern], nodes: list[JoinTreeNode]
    ) -> list[TriplePattern]:
        """Group leftover patterns sharing an object variable (§5)."""
        groups: dict[Variable, list[TriplePattern]] = {}
        for pattern in patterns:
            if isinstance(pattern.object, Variable) and not isinstance(
                pattern.predicate, Variable
            ):
                groups.setdefault(pattern.object, []).append(pattern)
        taken: set[int] = set()
        for group in groups.values():
            if len(group) >= self.min_group_size:
                nodes.append(ObjectPtNode(patterns=tuple(group)))
                taken.update(id(p) for p in group)
        return [p for p in patterns if id(p) not in taken]

    # -- priorities ------------------------------------------------------------------------

    def _score(self, node: JoinTreeNode) -> float:
        if isinstance(node, (PtNode, ObjectPtNode)):
            return self._score_group(node)
        return self._score_pattern(node.patterns[0])

    def _score_pattern(self, pattern: TriplePattern) -> float:
        """Higher is more selective (computed deeper in the tree)."""
        if isinstance(pattern.predicate, Variable):
            # An unbound predicate touches every VP table: least selective.
            return -float(self.statistics.total_triples)
        stats = self.statistics.for_predicate(pattern.predicate.value)
        estimated = float(stats.triple_count)
        if pattern.has_constant_object:
            # A constant object keeps roughly one object-group of tuples.
            estimated /= max(1, stats.distinct_objects)
        if not isinstance(pattern.subject, Variable):
            estimated /= max(1, stats.distinct_subjects)
        score = -estimated
        if pattern.has_constant_object:
            # Paper: literals are "a strong constraint" — highest priority,
            # pushed down to the leaves.
            score += LITERAL_PRIORITY
        return score

    def _score_group(self, node: JoinTreeNode) -> float:
        """PT nodes score over all their patterns; literals weigh heavily."""
        predicates = {
            p.predicate.value
            for p in node.patterns
            if not isinstance(p.predicate, Variable)
        }
        estimated = self.statistics.star_subject_estimate(predicates)
        if estimated is None:
            # Simple statistics: the star's size is bounded by the rarest
            # predicate's distinct subjects (every pattern must match).
            estimated = min(
                self.statistics.for_predicate(p).distinct_subjects for p in predicates
            )
        score = -float(estimated)
        for pattern in node.patterns:
            if pattern.has_constant_object:
                score += PT_LITERAL_WEIGHT
        if not any(isinstance(p.subject, Variable) for p in node.patterns):
            score += LITERAL_PRIORITY  # fully bound subject: a point lookup
        return score

    # -- tree assembly ------------------------------------------------------------------------

    def _assemble(self, nodes: list[JoinTreeNode]) -> JoinTree:
        """Grow the tree Prim-style over the query's join graph.

        The lowest-priority (largest) node becomes the root; then, while
        unplaced nodes remain, the highest-priority node *connected* to the
        tree (sharing a variable with a placed node) is attached below the
        placed node it joins with. A cartesian product is only introduced
        when the query's join graph is genuinely disconnected.
        """
        ordered = sorted(nodes, key=lambda node: node.priority)
        root = ordered[0]  # lowest priority (largest data) becomes the root
        placed = [root]
        remaining = sorted(ordered[1:], key=lambda n: -n.priority)
        while remaining:
            chosen_index = next(
                (
                    i
                    for i, node in enumerate(remaining)
                    if self._find_parent(placed, node) is not None
                ),
                0,  # disconnected query: fall back to a cartesian product
            )
            node = remaining.pop(chosen_index)
            parent = self._find_parent(placed, node) or placed[0]
            parent.children.append(node)
            placed.append(node)
        return JoinTree(root=root)

    def _find_parent(
        self, placed: list[JoinTreeNode], node: JoinTreeNode
    ) -> JoinTreeNode | None:
        """The first placed node sharing a variable, or ``None``."""
        variables = node.variables
        for candidate in placed:
            if candidate.variables & variables:
                return candidate
        return None
