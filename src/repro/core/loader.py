"""Loading RDF graphs into PRoST's two data structures (paper §3.1).

``load_vertical_partitioning`` creates one ``(s, o)`` table per predicate;
``load_property_table`` creates the single wide table with one row per
subject, one column per predicate (list-typed when the predicate is
multi-valued anywhere in the graph), horizontally partitioned on the subject
column so each subject's row lives on one node.

Both persist through the columnar store, so run-length/dictionary encoding
shrinks the NULL-heavy Property Table exactly as Parquet does for PRoST.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..columnar.schema import ColumnSchema, TableSchema
from ..engine.session import EngineSession
from ..errors import LoaderError
from ..rdf.graph import Graph
from ..rdf.stats import GraphStatistics, collect_statistics
from ..rdf.stats_io import save_statistics
from .encoding import encode_term
from .naming import assign_names

#: Reserved column name for the subject in both layouts.
SUBJECT_COLUMN = "s"
#: Object column name in VP tables.
OBJECT_COLUMN = "o"


@dataclass(frozen=True)
class LoadReport:
    """What loading cost and produced (one per loaded system).

    ``simulated_sec`` uses the cluster cost model: bytes written at disk
    bandwidth, plus one network shuffle per re-grouping of the triples
    (by predicate for VP, by subject for the PT).
    """

    system: str
    stored_bytes: int
    tables_written: int
    triples_loaded: int
    simulated_sec: float
    wall_clock_sec: float

    def summary(self) -> str:
        return (
            f"{self.system}: {self.stored_bytes / 1e6:.2f} MB in "
            f"{self.tables_written} tables, {self.triples_loaded} triples, "
            f"simulated {self.simulated_sec:.1f}s"
        )


@dataclass
class VpTableInfo:
    """Catalog facts about one VP table."""

    predicate: str
    table_name: str
    row_count: int


@dataclass
class PropertyTableInfo:
    """Catalog facts about the Property Table.

    Attributes:
        table_name: catalog name.
        column_for_predicate: predicate IRI → PT column name.
        multivalued: predicate IRIs stored as list columns.
    """

    table_name: str
    column_for_predicate: dict[str, str]
    multivalued: set[str]
    row_count: int = 0

    def column(self, predicate: str) -> str | None:
        return self.column_for_predicate.get(predicate)

    def is_multivalued(self, predicate: str) -> bool:
        return predicate in self.multivalued


@dataclass
class ProstStore:
    """Everything PRoST knows after loading a graph."""

    session: EngineSession
    statistics: GraphStatistics
    vp_tables: dict[str, VpTableInfo] = field(default_factory=dict)
    property_table: PropertyTableInfo | None = None
    object_property_table: PropertyTableInfo | None = None
    load_report: LoadReport | None = None

    def vp_table_name(self, predicate: str) -> str | None:
        info = self.vp_tables.get(predicate)
        return info.table_name if info else None


def load_vertical_partitioning(
    session: EngineSession,
    graph: Graph,
    path_prefix: str = "/prost/vp",
    table_prefix: str = "vp_",
    allowed_encodings: tuple[str, ...] | None = None,
    compress_pages: bool = True,
) -> dict[str, VpTableInfo]:
    """Create one subject/object table per predicate; returns per-table info."""
    vp_schema = TableSchema(
        [ColumnSchema(SUBJECT_COLUMN, "string"), ColumnSchema(OBJECT_COLUMN, "string")]
    )
    predicate_iris = [predicate.value for predicate in graph.predicates]
    names = assign_names(predicate_iris)
    tables: dict[str, VpTableInfo] = {}
    for predicate in graph.predicates:
        rows = [
            (encode_term(triple.subject), encode_term(triple.object))
            for triple in graph.triples_with_predicate(predicate)
        ]
        table_name = table_prefix + names[predicate.value]
        session.register_rows(
            table_name,
            vp_schema,
            rows,
            partition_columns=(SUBJECT_COLUMN,),
            persist_path=f"{path_prefix}/{names[predicate.value]}",
            allowed_encodings=allowed_encodings,
            compress_pages=compress_pages,
        )
        tables[predicate.value] = VpTableInfo(
            predicate=predicate.value, table_name=table_name, row_count=len(rows)
        )
    return tables


def load_property_table(
    session: EngineSession,
    graph: Graph,
    statistics: GraphStatistics,
    path: str = "/prost/property_table",
    table_name: str = "property_table",
    allowed_encodings: tuple[str, ...] | None = None,
    compress_pages: bool = True,
) -> PropertyTableInfo:
    """Create the single wide table with one row per distinct subject.

    Single-valued predicates become nullable string columns; predicates that
    are multi-valued for *any* subject become ``list<string>`` columns
    (paper §3.1: values "stored using lists that need to be flattened").
    """
    predicate_iris = sorted(statistics.predicates)
    if not predicate_iris:
        raise LoaderError("cannot build a property table for an empty graph")
    names = assign_names(predicate_iris, reserved={SUBJECT_COLUMN, OBJECT_COLUMN})
    multivalued = {
        iri for iri in predicate_iris if statistics.predicates[iri].is_multivalued
    }
    columns = [ColumnSchema(SUBJECT_COLUMN, "string")]
    for iri in predicate_iris:
        column_type = "list<string>" if iri in multivalued else "string"
        columns.append(ColumnSchema(names[iri], column_type))
    schema = TableSchema(columns)

    rows: list[tuple] = []
    for subject in graph.subjects:
        cells: list = [encode_term(subject)]
        triples = graph.triples_with_subject(subject)
        by_predicate: dict[str, list[str]] = {}
        for triple in triples:
            by_predicate.setdefault(triple.predicate.value, []).append(
                encode_term(triple.object)
            )
        for iri in predicate_iris:
            values = by_predicate.get(iri)
            if values is None:
                cells.append(None)
            elif iri in multivalued:
                cells.append(values)
            else:
                cells.append(values[0])
        rows.append(tuple(cells))

    session.register_rows(
        table_name,
        schema,
        rows,
        partition_columns=(SUBJECT_COLUMN,),
        persist_path=path,
        allowed_encodings=allowed_encodings,
        compress_pages=compress_pages,
    )
    return PropertyTableInfo(
        table_name=table_name,
        column_for_predicate={iri: names[iri] for iri in predicate_iris},
        multivalued=multivalued,
        row_count=len(rows),
    )


def load_object_property_table(
    session: EngineSession,
    graph: Graph,
    statistics: GraphStatistics,
    path: str = "/prost/object_property_table",
    table_name: str = "object_property_table",
    allowed_encodings: tuple[str, ...] | None = None,
) -> PropertyTableInfo:
    """Future-work variant (paper §5): rows keyed by *object*, one column per
    predicate holding the subjects. Every column is list-typed because many
    subjects can share an object."""
    predicate_iris = sorted(statistics.predicates)
    if not predicate_iris:
        raise LoaderError("cannot build an object property table for an empty graph")
    names = assign_names(predicate_iris, reserved={SUBJECT_COLUMN, OBJECT_COLUMN})
    columns = [ColumnSchema(OBJECT_COLUMN, "string")]
    columns.extend(ColumnSchema(names[iri], "list<string>") for iri in predicate_iris)
    schema = TableSchema(columns)

    by_object: dict[str, dict[str, list[str]]] = {}
    for triple in graph:
        cell = encode_term(triple.object)
        by_object.setdefault(cell, {}).setdefault(triple.predicate.value, []).append(
            encode_term(triple.subject)
        )
    rows = []
    for object_cell in sorted(by_object):
        groups = by_object[object_cell]
        cells: list = [object_cell]
        for iri in predicate_iris:
            values = groups.get(iri)
            cells.append(sorted(values) if values else None)
        rows.append(tuple(cells))

    session.register_rows(
        table_name,
        schema,
        rows,
        partition_columns=(OBJECT_COLUMN,),
        persist_path=path,
        allowed_encodings=allowed_encodings,
    )
    return PropertyTableInfo(
        table_name=table_name,
        column_for_predicate={iri: names[iri] for iri in predicate_iris},
        multivalued=set(predicate_iris),
        row_count=len(rows),
    )


#: Approximate N-Triples text bytes per triple (for input re-scan costs).
INPUT_BYTES_PER_TRIPLE = 60

#: Spark job submission + scheduling overhead per loading job, seconds.
LOAD_JOB_OVERHEAD_SEC = 12.0


def estimate_load_seconds(
    session: EngineSession,
    bytes_written: int,
    triples: int,
    shuffles: int,
    table_jobs: int = 1,
    rows_per_sec: float | None = None,
) -> float:
    """Cost-model loading time.

    The dominant term mirrors how PRoST (and SPARQLGX) actually load: **one
    Spark job per output table**, each re-scanning the N-Triples input. On
    top of that: the re-grouping shuffles (by predicate for VP, by subject
    for the PT), the write of the output bytes, and per-row CPU.

    Args:
        shuffles: how many times the full triple set crosses the network.
        table_jobs: loading jobs launched (≈ output tables).
        rows_per_sec: per-worker row rate override (loading is plain
            transformation work, independent of any query-side slowdown).
    """
    config = session.config
    scale = config.data_scale
    rate = rows_per_sec if rows_per_sec is not None else config.rows_per_sec
    input_bytes = triples * INPUT_BYTES_PER_TRIPLE
    rescan_sec = (
        table_jobs
        * scale
        * input_bytes
        / (config.scan_bytes_per_sec * config.num_workers)
    )
    job_overhead_sec = table_jobs * LOAD_JOB_OVERHEAD_SEC
    write_sec = scale * bytes_written / (config.scan_bytes_per_sec * config.num_workers)
    shuffle_bytes = shuffles * input_bytes
    shuffle_sec = (
        scale * 2 * shuffle_bytes / (config.network_bytes_per_sec * config.num_workers)
    )
    cpu_sec = scale * triples * (1 + shuffles) / (rate * config.num_workers)
    return rescan_sec + job_overhead_sec + write_sec + shuffle_sec + cpu_sec


def _maybe_span(tracer, name: str, **attrs):
    """A tracer span when tracing, a no-op context manager otherwise."""
    return tracer.span(name, **attrs) if tracer is not None else nullcontext()


def load_prost_store(
    graph: Graph,
    session: EngineSession | None = None,
    statistics_level: str = "simple",
    include_property_table: bool = True,
    include_object_property_table: bool = False,
    allowed_encodings: tuple[str, ...] | None = None,
    compress_pages: bool = True,
    tracer=None,
) -> ProstStore:
    """Load a graph into a fresh (or given) engine session, PRoST-style.

    Args:
        include_property_table: disable to get the VP-only configuration used
            as the baseline in Figure 2.
        include_object_property_table: additionally build the future-work
            object-keyed PT (paper §5).
        allowed_encodings: restrict columnar encodings (the encoding ablation
            passes ``("plain",)``).
        tracer: optional :class:`~repro.obs.tracer.Tracer`; each loading
            phase (statistics, VP tables, property tables) gets a span.
    """
    session = session or EngineSession()
    started = time.perf_counter()
    with _maybe_span(tracer, "load", triples=len(graph)):
        with _maybe_span(tracer, "collect_statistics", level=statistics_level):
            statistics = collect_statistics(graph, level=statistics_level)
            # Persist the statistics next to the data, as PRoST's loader
            # does, so a later session can translate without re-scanning
            # the graph.
            save_statistics(session.hdfs, "/prost/statistics.json", statistics)
        store = ProstStore(session=session, statistics=statistics)
        with _maybe_span(tracer, "load_vertical_partitioning") as vp_span:
            store.vp_tables = load_vertical_partitioning(
                session, graph, allowed_encodings=allowed_encodings,
                compress_pages=compress_pages,
            )
            if vp_span is not None:
                vp_span.set("tables", len(store.vp_tables))
        tables_written = len(store.vp_tables)
        shuffles = 1  # group by predicate
        if include_property_table:
            with _maybe_span(tracer, "load_property_table") as pt_span:
                store.property_table = load_property_table(
                    session, graph, statistics, allowed_encodings=allowed_encodings,
                    compress_pages=compress_pages,
                )
                if pt_span is not None:
                    pt_span.set("rows", store.property_table.row_count)
            tables_written += 1
            shuffles += 1  # group by subject
        object_pt: PropertyTableInfo | None = None
        if include_object_property_table:
            with _maybe_span(tracer, "load_object_property_table"):
                object_pt = load_object_property_table(
                    session, graph, statistics, allowed_encodings=allowed_encodings
                )
            tables_written += 1
            shuffles += 1  # group by object
        store.object_property_table = object_pt
    stored = session.catalog.total_stored_bytes()
    report = LoadReport(
        system="PRoST" if include_property_table else "PRoST (VP only)",
        stored_bytes=stored,
        tables_written=tables_written,
        triples_loaded=len(graph),
        simulated_sec=estimate_load_seconds(
            session, stored, len(graph), shuffles, table_jobs=tables_written
        ),
        wall_clock_sec=time.perf_counter() - started,
    )
    store.load_report = report
    return store
