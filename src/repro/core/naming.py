"""Deterministic naming of tables and columns derived from predicate IRIs.

VP tables and Property Table columns are named after the predicate's local
name (the fragment after the last ``/``, ``#``, or ``:``), sanitized to a
SQL-ish identifier. Distinct predicates with the same local name get numeric
suffixes, deterministically in sorted-IRI order.
"""

from __future__ import annotations

import re

_INVALID = re.compile(r"[^A-Za-z0-9_]")


def local_name(iri: str) -> str:
    """The last non-empty path segment of an IRI (best-effort local name)."""
    trimmed = iri.rstrip("#/:")
    for separator in ("#", "/", ":"):
        if separator in trimmed:
            candidate = trimmed.rsplit(separator, 1)[1]
            if candidate:
                return candidate
    return trimmed or iri


def sanitize(name: str) -> str:
    """Restrict to ``[A-Za-z0-9_]``, never empty, never leading digit."""
    cleaned = _INVALID.sub("_", name) or "p"
    if cleaned[0].isdigit():
        cleaned = "p_" + cleaned
    return cleaned


def assign_names(
    predicates: list[str], reserved: set[str] = frozenset()
) -> dict[str, str]:
    """Map each predicate IRI to a unique sanitized name.

    Args:
        predicates: predicate IRI strings (order does not matter; the result
            is deterministic via sorting).
        reserved: names that must not be produced (e.g. the ``s`` column).
    """
    mapping: dict[str, str] = {}
    taken = set(reserved)
    for iri in sorted(predicates):
        base = sanitize(local_name(iri))
        candidate = base
        suffix = 2
        while candidate in taken:
            candidate = f"{base}_{suffix}"
            suffix += 1
        mapping[iri] = candidate
        taken.add(candidate)
    return mapping
