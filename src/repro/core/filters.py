"""Bridging SPARQL FILTER expressions into engine expressions.

Most of a filter can be evaluated directly on the encoded (N-Triples string)
cells; comparisons with SPARQL value semantics (numeric coercion) decode the
cells first. :class:`SparqlCondition` wraps one algebra filter expression as
an engine :class:`~repro.engine.expressions.Expression`, so the engine's
filter operator and the optimizer's pushdown machinery treat it uniformly.
"""

from __future__ import annotations

from ..engine.expressions import BoundExpression, Expression, VectorPredicate
from ..rdf.reference import evaluate_filter
from ..sparql.algebra import FilterExpression, Variable
from .encoding import decode_term


class SparqlCondition(Expression):
    """An engine expression evaluating a SPARQL filter over encoded cells.

    The wrapped algebra expression references SPARQL variables; the engine
    columns carrying them are assumed to use the variable names directly
    (which is how the translators name columns).
    """

    def __init__(self, expression: FilterExpression):
        self.expression = expression

    def references(self) -> set[str]:
        return {variable.name for variable in self.expression.variables}

    def bind(self, schema) -> BoundExpression:
        variables = sorted(self.references())
        indexes = {name: schema.index_of(name) for name in variables}
        expression = self.expression

        def evaluate(row: tuple) -> bool:
            binding = {}
            for name, index in indexes.items():
                cell = row[index]
                if cell is None:
                    continue
                binding[name] = decode_term(cell)
            return evaluate_filter(expression, binding)

        return evaluate

    def bind_vector(self, schema) -> VectorPredicate:
        variables = sorted(self.references())
        indexes = {name: schema.index_of(name) for name in variables}
        expression = self.expression

        def evaluate(columns, sel):
            bound = [(name, columns[index]) for name, index in indexes.items()]
            out = []
            for i in sel:
                binding = {}
                for name, column in bound:
                    cell = column[i]
                    if cell is not None:
                        binding[name] = decode_term(cell)
                if evaluate_filter(expression, binding):
                    out.append(i)
            return out

        return evaluate

    def describe(self) -> str:
        return f"SparqlFilter({_describe_algebra(self.expression)})"


def _describe_algebra(expression: FilterExpression) -> str:
    from ..sparql.algebra import And, Comparison, Or, Regex

    if isinstance(expression, Comparison):
        left = _operand(expression.left)
        right = _operand(expression.right)
        return f"{left} {expression.op} {right}"
    if isinstance(expression, Regex):
        return f"regex({expression.variable}, {expression.pattern!r})"
    if isinstance(expression, And):
        return " && ".join(_describe_algebra(op) for op in expression.operands)
    if isinstance(expression, Or):
        return " || ".join(_describe_algebra(op) for op in expression.operands)
    return repr(expression)


def _operand(slot) -> str:
    if isinstance(slot, Variable):
        return str(slot)
    return slot.n3()
