"""The PRoST engine facade: load once, query with SPARQL.

This is the package's primary public API::

    engine = ProstEngine(num_workers=9)
    engine.load(graph)
    results = engine.sparql("SELECT ?s WHERE { ?s <...> ?o }")

``strategy="mixed"`` (default) is the paper's contribution: same-subject
pattern groups are answered by the Property Table, the rest by Vertical
Partitioning. ``strategy="vp"`` reproduces the VP-only baseline of Figure 2.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext

from ..engine.cluster import ClusterConfig, SimulatedCluster
from ..engine.dataframe import DataFrame
from ..engine.session import EngineSession
from ..governor import Governor
from ..engine.vectorized import ColumnarData, _concat
from ..errors import LoaderError, UnsupportedSparqlError
from ..rdf.dictionary import TERM_ID_BASE, default_dictionary, ids_enabled
from ..rdf.graph import Graph
from ..rdf.terms import term_sort_key
from ..sparql.algebra import SelectQuery
from ..sparql.parser import parse_sparql
from .encoding import decode_row, decode_term
from .executor import JoinTreeExecutor
from .filters import SparqlCondition
from .join_tree import JoinTree
from .loader import LoadReport, ProstStore, load_prost_store
from .results import QueryExecutionReport, ResultSet, solution_sort_key
from .translator import JoinTreeTranslator


class ProstEngine:
    """Distributed SPARQL over mixed VP + Property Table partitioning."""

    name = "PRoST"

    def __init__(
        self,
        num_workers: int = 9,
        strategy: str = "mixed",
        statistics_level: str = "simple",
        use_object_property_table: bool = False,
        use_statistics: bool = True,
        cluster_config: ClusterConfig | None = None,
    ):
        """
        Args:
            num_workers: simulated Spark workers (the paper's cluster has 9).
            strategy: ``mixed`` (VP + PT) or ``vp`` (VP only).
            statistics_level: ``simple`` (paper §3.3) or ``extended``
                (characteristic sets, paper §5 future work).
            use_object_property_table: also build and use the object-keyed
                Property Table (paper §5 future work).
            use_statistics: disable the statistics-based join ordering
                (ablation; trees keep query order).
            cluster_config: full cluster override (ignores ``num_workers``).
        """
        if cluster_config is None:
            cluster_config = ClusterConfig(num_workers=num_workers)
        self.session = EngineSession(SimulatedCluster(cluster_config))
        # Admission control: every sparql() entry takes a slot (and, when a
        # budget is set, an aggregate-memory reservation) before executing.
        self.governor = Governor.from_config(cluster_config)
        self.strategy = strategy
        self.statistics_level = statistics_level
        self.use_object_property_table = use_object_property_table
        self.use_statistics = use_statistics
        self.store: ProstStore | None = None
        self._translator: JoinTreeTranslator | None = None
        self.last_query_report_: QueryExecutionReport | None = None  # unguarded-ok: last-writer-wins diagnostic
        #: Monotonic load counter: every successful :meth:`load` bumps it,
        #: so anything keyed on :attr:`plan_epoch` (the serve layer's plan
        #: and result caches) is invalidated by a dataset reload.
        self.dataset_version = 0
        # Prepared-statement caches: query text → parsed AST, and query
        # text → (frame, tree description). Parsing and translation are
        # pure functions of the text and the loaded store, so repeated
        # queries reuse the (immutable) objects; load() clears the plans.
        # The serve layer drives this engine from many threads at once, so
        # both dicts (and the store/version swap a reload performs) are
        # guarded — and a plan is published through _cache_plan, which
        # discards it when a reload raced the planning.
        self._cache_lock = threading.Lock()
        self._parse_cache: dict[str, SelectQuery] = {}  # guarded-by: _cache_lock
        self._plan_cache: dict[str, tuple[DataFrame, str]] = {}  # guarded-by: _cache_lock

    # -- loading -----------------------------------------------------------------

    def load(self, graph: Graph, tracer=None) -> LoadReport:
        """Load a graph: build VP tables, the PT, and the statistics.

        Reloading replaces the dataset wholesale: the catalog and the
        simulated HDFS namespace are re-provisioned fresh (table names and
        persisted paths would otherwise collide), while the governor — and
        its admission/tenant accounting — survives across reloads.
        """
        if self.store is not None:
            self.session = EngineSession(SimulatedCluster(self.session.config))
        store = load_prost_store(
            graph,
            session=self.session,
            statistics_level=self.statistics_level,
            include_property_table=self.strategy == "mixed",
            include_object_property_table=self.use_object_property_table,
            tracer=tracer,
        )
        translator = JoinTreeTranslator(
            store.statistics,
            strategy=self.strategy,
            use_object_property_table=self.use_object_property_table,
            use_statistics=self.use_statistics,
        )
        # Publish the new dataset atomically with the plan-cache clear and
        # the version bump: a planner thread that snapshotted the old
        # store can never slip a stale plan in afterwards (_cache_plan
        # re-checks the version before inserting).
        with self._cache_lock:
            self.store = store
            self._translator = translator
            self._plan_cache.clear()
            self.dataset_version += 1
        assert store.load_report is not None
        return store.load_report

    @property
    def plan_epoch(self) -> tuple:
        """Fingerprint of everything a cached plan's validity depends on.

        A verified Join Tree (and the engine plan built from it) is a pure
        function of the loaded dataset, the partitioning strategy, and the
        planner-relevant cluster knobs. The serve layer keys its plan and
        result caches on this tuple: a dataset reload or a re-provisioned
        engine with different partitioning knobs changes the epoch, so
        stale plans can never hit (checked again by the PV401 lineage
        guard before a cached plan executes).
        """
        config = self.session.config
        return (
            self.dataset_version,
            self.strategy,
            self.statistics_level,
            self.use_object_property_table,
            self.use_statistics,
            config.num_workers,
            config.partitions_per_worker,
            config.broadcast_threshold_bytes,
            config.data_scale,
        )

    def _require_store(self) -> ProstStore:
        if self.store is None or self._translator is None:
            raise LoaderError("no graph loaded; call load() first")
        return self.store

    # -- querying ------------------------------------------------------------------

    def translate(self, query: str | SelectQuery) -> JoinTree:
        """Translate a query to its Join Tree without executing it."""
        self._require_store()
        assert self._translator is not None
        parsed = parse_sparql(query) if isinstance(query, str) else query
        return self._translator.translate(parsed)

    def dataframe(self, query: str | SelectQuery) -> tuple[DataFrame, str]:
        """The engine DataFrame computing a query (before modifiers), plus a
        textual rendering of the Join Tree(s) behind it.

        String queries hit the prepared-statement cache: the frame returned
        for a repeated text is the one already translated (and statically
        verified) against the current store.
        """
        store = self._require_store()
        text = query if isinstance(query, str) else None
        # Snapshot the dataset the plan is built against: store, translator,
        # and the version the finished plan will be published under. A
        # concurrent load() swaps all three atomically, so this thread plans
        # against one coherent dataset even if a reload lands mid-planning —
        # and _cache_plan then discards the (stale) plan.
        with self._cache_lock:
            translator = self._translator
            store = self.store if self.store is not None else store
            planned_version = self.dataset_version
            cached = self._plan_cache.get(text) if text is not None else None
        if cached is not None:
            return cached
        parsed = parse_sparql(query) if isinstance(query, str) else query
        assert translator is not None

        trees: list[JoinTree] = []
        optional_trees: list[JoinTree] = []
        if parsed.is_union:
            frame, description = self._union_frame(store, translator, parsed, trees)
        else:
            tree = translator.translate_bgp(parsed.patterns)
            trees.append(tree)
            frame = JoinTreeExecutor(store).build(tree)
            description = tree.describe()
            for group in parsed.optional_groups:
                frame, optional_tree = self._apply_optional(
                    store, translator, frame, group
                )
                optional_trees.append(optional_tree)
                description += f"\nOPTIONAL:\n{optional_tree.describe()}"

        for filter_expression in parsed.filters:
            frame = frame.filter(SparqlCondition(filter_expression))
        if parsed.is_aggregate:
            keys = [variable.name for variable in parsed.group_by]
            aggregates = [
                (
                    "count_distinct" if aggregate.distinct else "count",
                    aggregate.variable.name if aggregate.variable else None,
                    aggregate.alias.name,
                )
                for aggregate in parsed.aggregates
            ]
            frame = frame.group_aggregate(keys, aggregates)
        projection = [variable.name for variable in parsed.projection]
        frame = frame.select(*projection)
        if parsed.distinct:
            frame = frame.distinct()

        # Pre-execution static verification (REPRO_PLAN_CHECK=0 opts out).
        # Imported lazily: analysis depends on this module's neighbors.
        from ..analysis import check_query, plan_check_enabled

        if plan_check_enabled():
            check_query(
                parsed,
                trees,
                optional_trees,
                frame.plan,
                translator=translator,
                catalog=self.session.catalog,
                config=self.session.config,
            )
        if text is not None:
            self._cache_plan(text, planned_version, frame, description)
        return frame, description

    def _cache_plan(
        self,
        text: str,
        planned_version: int,
        frame: DataFrame,
        description: str,
    ) -> None:
        """Publish a finished plan into the prepared-statement cache.

        The insert is epoch-checked: if a :meth:`load` completed after this
        plan's dataset snapshot was taken, the plan was built against the
        *previous* store and is silently dropped — inserting it would let a
        text-keyed lookup serve stale rows forever.
        """
        with self._cache_lock:
            if self.dataset_version == planned_version:
                self._plan_cache[text] = (frame, description)

    def _union_frame(
        self,
        store,
        translator: JoinTreeTranslator,
        parsed: SelectQuery,
        trees: list[JoinTree],
    ) -> tuple[DataFrame, str]:
        """One frame per UNION branch, null-padded to shared columns."""
        from ..engine.expressions import col, lit

        executor = JoinTreeExecutor(store)
        branch_frames: list[DataFrame] = []
        descriptions: list[str] = []
        all_columns: list[str] = []
        for branch in parsed.union_branches:
            tree = translator.translate_bgp(branch)
            trees.append(tree)
            frame = executor.build(tree)
            branch_frames.append(frame)
            descriptions.append(tree.describe())
            for name in frame.columns:
                if name not in all_columns:
                    all_columns.append(name)
        padded = []
        for frame in branch_frames:
            outputs = [
                (name, col(name) if name in frame.columns else lit(None))
                for name in all_columns
            ]
            padded.append(frame.select(*outputs))
        union = padded[0]
        for frame in padded[1:]:
            union = union.union(frame)
        description = "\nUNION:\n".join(descriptions)
        return union, description

    def _apply_optional(
        self, store, translator: JoinTreeTranslator, frame: DataFrame, group
    ) -> tuple[DataFrame, JoinTree]:
        """Left-join one OPTIONAL group onto the accumulated frame."""
        tree = translator.translate_bgp(group)
        optional_frame = JoinTreeExecutor(store).build(tree)
        shared = sorted(set(frame.columns) & set(optional_frame.columns))
        if not shared:
            raise UnsupportedSparqlError(
                "OPTIONAL groups sharing no variable with the required "
                "pattern are not supported"
            )
        return frame.join(optional_frame, on=shared, how="left"), tree

    def sparql(self, query: str | SelectQuery, tracer=None) -> ResultSet:
        """Execute a SELECT query and return decoded solutions.

        With a ``tracer``, the run records spans for planning, every
        physical operator, and result finalization; the returned report
        carries the query's root span plus a pre-rendered EXPLAIN ANALYZE
        text (when the span tree aligns with the Join Tree).
        """
        if isinstance(query, str):
            with self._cache_lock:
                parsed = self._parse_cache.get(query)
            if parsed is None:
                # Parse outside the lock (a racing thread may parse the same
                # text twice — benign: ASTs are pure functions of the text).
                parsed = parse_sparql(query)
                with self._cache_lock:
                    self._parse_cache[query] = parsed
            text = query
        else:
            parsed = query
            text = None
        return self._execute(parsed, text=text, tracer=tracer)

    def execute_prepared(
        self,
        parsed: SelectQuery,
        frame: DataFrame,
        tree_description: str,
        tracer=None,
        admitted: bool = False,
    ) -> ResultSet:
        """Execute an already-planned query, skipping translate → optimize →
        plan-verify entirely.

        This is the serve layer's plan-cache hit path: ``frame`` and
        ``tree_description`` must be the output of an earlier
        :meth:`dataframe` call for ``parsed`` against the *current* store
        (the server guards that with the engine's :attr:`plan_epoch` and
        the PV401 lineage check). With ``admitted=True`` the engine skips
        its own admission gate — the caller already holds a (tenant-
        labelled) slot on :attr:`governor`, and taking a second slot for
        the same query could deadlock a fully loaded server.
        """
        return self._execute(
            parsed,
            prepared=(frame, tree_description),
            tracer=tracer,
            admitted=admitted,
        )

    def _execute(
        self,
        parsed: SelectQuery,
        text: str | None = None,
        prepared: tuple[DataFrame, str] | None = None,
        tracer=None,
        admitted: bool = False,
    ) -> ResultSet:
        """Shared execution path behind :meth:`sparql` and
        :meth:`execute_prepared` (plan or reuse, execute, finalize)."""
        started = time.perf_counter()
        query_cm = (
            tracer.span("query", engine=self.name)
            if tracer is not None
            else nullcontext()
        )
        admit_cm = nullcontext() if admitted else self.governor.admit()
        with admit_cm, query_cm as query_span:
            plan_cm = tracer.span("plan") if tracer is not None else nullcontext()
            with plan_cm:
                if prepared is not None:
                    frame, tree_description = prepared
                else:
                    # Pass the raw text when we have it so repeated queries
                    # hit the prepared-statement cache.
                    frame, tree_description = self.dataframe(
                        text if text is not None else parsed
                    )
            data, engine_report = frame.collect_data_with_report(tracer=tracer)
            final_cm = (
                tracer.span("finalize") if tracer is not None else nullcontext()
            )
            with final_cm:
                if ids_enabled() and isinstance(data, ColumnarData):
                    # Fully columnar finalize: sort an index permutation
                    # over the encoded columns, slice OFFSET/LIMIT, and
                    # only then decode — each column decodes one dictionary
                    # lookup per *distinct* ID, and dropped rows never
                    # materialize at all (late materialization).
                    rows = _finalize_columnar(parsed, data)
                elif ids_enabled():
                    # Order (and OFFSET/LIMIT-slice) the *encoded* rows
                    # first: the dictionary memoizes one sort key per ID,
                    # and rows dropped by LIMIT are never decoded at all.
                    encoded_rows = _apply_modifiers_encoded(parsed, data.all_rows())
                    rows = [decode_row(row) for row in encoded_rows]
                else:
                    rows = [decode_row(row) for row in data.all_rows()]
                    rows = _apply_modifiers(parsed, rows)
        wall = time.perf_counter() - started
        explain_text = None
        if tracer is not None:
            if query_span is not None:
                query_span.set("rows", len(rows))
            explain_text = (
                f"== Join Tree ==\n"
                f"{self._explain_tree_text(parsed, engine_report.trace)}\n"
                f"== Engine Plan ==\n{engine_report.explain()}"
            )
        report = QueryExecutionReport(
            simulated_sec=engine_report.simulated_sec,
            wall_clock_sec=wall,
            join_tree=tree_description,
            engine_report=engine_report,
            trace=query_span,
            explain_text=explain_text,
        )
        self.last_query_report_ = report
        variables = tuple(variable.name for variable in parsed.projection)
        return ResultSet(variables, rows, report)

    def verify(self, query: str | SelectQuery) -> list:
        """Statically verify a query's plans without executing them.

        Returns every violated invariant as a
        :class:`~repro.analysis.diagnostics.Diagnostic` (empty list = the
        plan is good). This is the engine behind ``prost-repro check``; the
        same checks run implicitly before every query unless
        ``REPRO_PLAN_CHECK=0``.
        """
        from ..analysis import (
            set_plan_check_enabled,
            verify_logical_plan,
            verify_query,
        )

        self._require_store()
        assert self._translator is not None
        parsed = parse_sparql(query) if isinstance(query, str) else query
        previous = set_plan_check_enabled(False)  # collect, don't raise
        try:
            frame, _ = self.dataframe(parsed)
        finally:
            set_plan_check_enabled(previous)
        if parsed.is_union:
            trees = [
                self._translator.translate_bgp(branch)
                for branch in parsed.union_branches
            ]
            optional_trees = []
        else:
            trees = [self._translator.translate_bgp(parsed.patterns)]
            optional_trees = [
                self._translator.translate_bgp(group)
                for group in parsed.optional_groups
            ]
        diagnostics = verify_query(
            parsed, trees, optional_trees, translator=self._translator
        )
        diagnostics.extend(
            verify_logical_plan(
                frame.plan,
                catalog=self.session.catalog,
                config=self.session.config,
            )
        )
        return diagnostics

    def ask(self, query: str | SelectQuery) -> bool:
        """Execute an ASK (or any) query as an existence check."""
        parsed = parse_sparql(query) if isinstance(query, str) else query
        return len(self.sparql(parsed)) > 0

    def _explain_tree_text(self, parsed: SelectQuery, engine_trace=None) -> str:
        """Render the Join Tree(s), runtime-annotated when alignable.

        ``engine_trace`` is the root physical-operator span of a traced run;
        alignment is only attempted for plain BGP queries (OPTIONAL/UNION
        span shapes fall back to estimate-only annotations).
        """
        from ..obs.explain import align_spans, render_join_tree

        store = self._require_store()
        assert self._translator is not None
        statistics = store.statistics
        config = self.session.config
        if parsed.is_union:
            return "\nUNION:\n".join(
                render_join_tree(
                    self._translator.translate_bgp(branch), statistics, config
                )
                for branch in parsed.union_branches
            )
        tree = self._translator.translate_bgp(parsed.patterns)
        runtime = None
        if engine_trace is not None and not parsed.optional_groups:
            runtime = align_spans(tree, engine_trace)
        text = render_join_tree(tree, statistics, config, runtime)
        for group in parsed.optional_groups:
            optional_tree = self._translator.translate_bgp(group)
            text += "\nOPTIONAL:\n" + render_join_tree(
                optional_tree, statistics, config
            )
        return text

    def explain(self, query: str | SelectQuery, analyze: bool = False, tracer=None) -> str:
        """Join tree plus engine plan, as text (EXPLAIN / EXPLAIN ANALYZE).

        Args:
            analyze: execute the query and annotate the tree with actual row
                counts, executed join strategies, shuffled/broadcast bytes,
                and recovery charges.
            tracer: with ``analyze``, record the run into this tracer instead
                of a throwaway one (so callers can also dump the JSON trace).
        """
        parsed = parse_sparql(query) if isinstance(query, str) else query
        if not analyze:
            frame, _ = self.dataframe(parsed)
            return (
                f"== Join Tree ==\n{self._explain_tree_text(parsed)}\n"
                f"== Engine Plan ==\n{frame.explain()}"
            )
        from ..obs.tracer import Tracer

        result = self.sparql(parsed, tracer=tracer if tracer is not None else Tracer())
        text = result.report.explain_text
        assert text is not None
        return text

    def last_query_report(self) -> QueryExecutionReport | None:
        """The report of the most recent :meth:`sparql` call."""
        return self.last_query_report_


def _apply_modifiers(
    query: SelectQuery, rows: list[tuple]
) -> list[tuple]:
    """ORDER BY / deterministic sort, then OFFSET / LIMIT (on the driver)."""
    projection = list(query.projection)
    if query.order_by:
        for condition in reversed(query.order_by):
            position = projection.index(condition.variable)
            rows.sort(
                key=lambda row: solution_sort_key((row[position],)),
                reverse=condition.descending,
            )
    else:
        rows.sort(key=solution_sort_key)
    if query.offset:
        rows = rows[query.offset :]
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def _apply_modifiers_encoded(
    query: SelectQuery, rows: list[tuple]
) -> list[tuple]:
    """The encoded-row twin of :func:`_apply_modifiers`.

    Produces the same final ordering (dictionary sort keys are exactly the
    decoded terms' :func:`term_sort_key`), so both paths emit identical
    result sets — the differential fuzz suite holds them to that.
    """
    sort_key_of = default_dictionary().sort_key_of
    base = TERM_ID_BASE

    def cell_key(cell) -> tuple:
        if type(cell) is int and cell >= base:
            return sort_key_of(cell)
        if cell is None:
            return (-1, "")
        return term_sort_key(decode_term(cell))

    projection = list(query.projection)
    if query.order_by:
        for condition in reversed(query.order_by):
            position = projection.index(condition.variable)
            rows.sort(
                key=lambda row: cell_key(row[position]),
                reverse=condition.descending,
            )
    else:
        rows.sort(key=lambda row: [cell_key(cell) for cell in row])
    if query.offset:
        rows = rows[query.offset :]
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def _finalize_columnar(query: SelectQuery, data: ColumnarData) -> list[tuple]:
    """Columnar result finalization: modifiers and decode without row tuples.

    The columnar twin of :func:`_apply_modifiers_encoded` followed by
    :func:`~repro.core.encoding.decode_row`, with identical output: the
    same ``cell_key`` ordering applied as repeated stable sorts of an index
    permutation, OFFSET/LIMIT as a slice of that permutation, and the
    surviving rows decoded column-wise. Sort keys and decoded terms are
    computed once per *distinct* cell of each column — result columns are
    low-cardinality, so this is where late materialization pays.
    """
    batch = _concat(data)
    columns = batch.columns
    sort_key_of = default_dictionary().sort_key_of
    base = TERM_ID_BASE

    def cell_key(cell) -> tuple:
        if type(cell) is int and cell >= base:
            return sort_key_of(cell)
        if cell is None:
            return (-1, "")
        return term_sort_key(decode_term(cell))

    def key_vector(column) -> list:
        try:
            distinct = dict.fromkeys(column)
        except TypeError:  # unhashable cells: fall back to a linear cache
            cache: dict = {}
            out = []
            for cell in column:
                key = cache.get(id(cell))
                if key is None:
                    key = cell_key(cell)
                    cache[id(cell)] = key
                out.append(key)
            return out
        keys = {cell: cell_key(cell) for cell in distinct}
        return list(map(keys.__getitem__, column))

    order = list(range(batch.length))
    projection = list(query.projection)
    if query.order_by:
        for condition in reversed(query.order_by):
            position = projection.index(condition.variable)
            keys = key_vector(columns[position])
            order.sort(key=keys.__getitem__, reverse=condition.descending)
    elif len(columns) == 1:
        keys = key_vector(columns[0])
        order.sort(key=keys.__getitem__)
    elif columns:
        # Whole-row ordering: one composite key tuple per row via zip (the
        # same lexicographic order as the row path's per-row key lists).
        keys = list(zip(*(key_vector(column) for column in columns)))
        order.sort(key=keys.__getitem__)
    if query.offset:
        order = order[query.offset :]
    if query.limit is not None:
        order = order[: query.limit]

    decoded_columns = []
    for column in columns:
        try:
            decoded = {
                cell: None if cell is None else decode_term(cell)
                for cell in dict.fromkeys(column)
            }
        except TypeError:  # unhashable cells: decode row-at-a-time
            out = [
                None if column[i] is None else decode_term(column[i]) for i in order
            ]
            decoded_columns.append(out)
            continue
        # Two C-speed passes: decode each cell through the per-distinct
        # cache, then gather in emission order.
        full = list(map(decoded.__getitem__, column))
        decoded_columns.append(list(map(full.__getitem__, order)))
    if not decoded_columns:
        return [()] * len(order)
    return list(zip(*decoded_columns))
