"""PRoST core: loaders, Join Tree, translator, executor, and the facade."""

from .encoding import (
    cell_for_text,
    cell_text,
    decode_row,
    decode_term,
    encode_term,
    encode_term_text,
)
from .executor import JoinTreeExecutor
from .filters import SparqlCondition
from .join_tree import JoinTree, JoinTreeNode, ObjectPtNode, PtNode, VpNode
from .loader import (
    LoadReport,
    PropertyTableInfo,
    ProstStore,
    VpTableInfo,
    load_object_property_table,
    load_property_table,
    load_prost_store,
    load_vertical_partitioning,
)
from .naming import assign_names, local_name, sanitize
from .prost import ProstEngine
from .results import QueryExecutionReport, ResultSet, solution_sort_key
from .translator import JoinTreeTranslator

__all__ = [
    "JoinTree",
    "JoinTreeExecutor",
    "JoinTreeNode",
    "JoinTreeTranslator",
    "LoadReport",
    "ObjectPtNode",
    "PropertyTableInfo",
    "ProstEngine",
    "ProstStore",
    "PtNode",
    "QueryExecutionReport",
    "ResultSet",
    "SparqlCondition",
    "VpNode",
    "VpTableInfo",
    "assign_names",
    "cell_for_text",
    "cell_text",
    "decode_row",
    "decode_term",
    "encode_term",
    "encode_term_text",
    "load_object_property_table",
    "load_property_table",
    "load_prost_store",
    "load_vertical_partitioning",
    "local_name",
    "sanitize",
    "solution_sort_key",
]
