"""Executing Join Trees on the engine (paper §3.2).

``JoinTreeExecutor`` turns every tree node into a DataFrame whose columns are
named after the SPARQL variables the node binds, then joins children into
parents bottom-up on the shared variables. The engine (playing Catalyst's
role) picks broadcast vs shuffle strategies from runtime sizes.

Column naming makes joins natural: two sub-queries that share variable
``?v1`` both expose a column ``v1``, and the shared-column set is exactly the
SPARQL join condition.
"""

from __future__ import annotations

from ..engine.dataframe import DataFrame
from ..engine.expressions import Expression, col, lit
from ..errors import TranslationError
from ..rdf.terms import IRI
from ..sparql.algebra import TriplePattern, Variable
from .encoding import encode_term
from .join_tree import JoinTree, JoinTreeNode, ObjectPtNode, PtNode, VpNode
from .loader import OBJECT_COLUMN, SUBJECT_COLUMN, ProstStore


class JoinTreeExecutor:
    """Builds engine DataFrames from Join Trees over a loaded store."""

    def __init__(self, store: ProstStore):
        self.store = store
        self._counter = 0

    # -- public API ---------------------------------------------------------------

    def build(self, tree: JoinTree) -> DataFrame:
        """A DataFrame computing the whole tree, bottom-up."""
        return self._result(tree.root)

    # -- tree folding --------------------------------------------------------------

    def _result(self, node: JoinTreeNode) -> DataFrame:
        frame = self._node_plan(node)
        # Selective children first: their small results drive cheap joins.
        for child in sorted(node.children, key=lambda n: -n.priority):
            child_frame = self._result(child)
            shared = sorted(set(frame.columns) & set(child_frame.columns))
            if shared:
                frame = frame.join(child_frame, on=shared)
            else:
                frame = frame.join(child_frame, on=(), how="cross")
        return frame

    # -- per-node plans ----------------------------------------------------------------

    def _node_plan(self, node: JoinTreeNode) -> DataFrame:
        if isinstance(node, VpNode):
            return self._vp_plan(node.pattern)
        if isinstance(node, ObjectPtNode):
            return self._object_pt_plan(node)
        if isinstance(node, PtNode):
            return self._pt_plan(node)
        raise TranslationError(f"unknown node type {type(node).__name__}")

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"__{prefix}{self._counter}"

    # -- VP nodes -------------------------------------------------------------------------

    def _vp_plan(self, pattern: TriplePattern) -> DataFrame:
        session = self.store.session
        if isinstance(pattern.predicate, Variable):
            return self._unbound_predicate_plan(pattern)
        table = self.store.vp_table_name(pattern.predicate.value)
        if table is None:
            return self._empty_plan(pattern)
        frame = session.table(table)
        return self._shape_so(frame, pattern, SUBJECT_COLUMN, OBJECT_COLUMN)

    def _unbound_predicate_plan(self, pattern: TriplePattern) -> DataFrame:
        """A variable predicate scans the union of all VP tables, each tagged
        with its predicate as an extra column."""
        session = self.store.session
        predicate_variable = pattern.predicate
        assert isinstance(predicate_variable, Variable)
        frames: list[DataFrame] = []
        for predicate_iri in sorted(self.store.vp_tables):
            info = self.store.vp_tables[predicate_iri]
            tagged = session.table(info.table_name).select(
                SUBJECT_COLUMN,
                OBJECT_COLUMN,
                ("__p", lit(encode_term(IRI(predicate_iri)))),
            )
            frames.append(tagged)
        if not frames:
            return self._empty_plan(pattern)
        union = frames[0]
        for frame in frames[1:]:
            union = union.union(frame)
        shaped = self._shape_so(union, pattern, SUBJECT_COLUMN, OBJECT_COLUMN, keep=["__p"])
        outputs = [name for name in shaped.columns if name != "__p"]
        if predicate_variable.name in outputs:
            # The predicate variable also binds the subject or object of the
            # same pattern (e.g. ``?s ?p ?p``): the shared variable is an
            # equality constraint against the tag column, not a second output.
            shaped = shaped.filter(col(predicate_variable.name) == col("__p"))
            return shaped.select(*outputs)
        return shaped.select(*outputs, (predicate_variable.name, col("__p")))

    def _empty_plan(self, pattern: TriplePattern) -> DataFrame:
        """A correctly-shaped empty relation for a predicate absent from the
        data (the empty VP table)."""
        from ..columnar.schema import ColumnSchema, TableSchema

        names: list[str] = []
        for slot in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(slot, Variable) and slot.name not in names:
                names.append(slot.name)
        if not names:
            names = [self._fresh_name("exists")]
        schema = TableSchema([ColumnSchema(name, "string") for name in names])
        return self.store.session.create_dataframe(schema, [], label="empty-vp")

    def _shape_so(
        self,
        frame: DataFrame,
        pattern: TriplePattern,
        subject_column: str,
        object_column: str,
        keep: list[str] | None = None,
    ) -> DataFrame:
        """Apply a pattern's constants/variables to an (s, o) shaped frame."""
        conditions: list[Expression] = []
        outputs: list[tuple[str, Expression]] = []
        if isinstance(pattern.subject, Variable):
            outputs.append((pattern.subject.name, col(subject_column)))
        else:
            conditions.append(col(subject_column) == lit(encode_term(pattern.subject)))
        if isinstance(pattern.object, Variable):
            if (
                isinstance(pattern.subject, Variable)
                and pattern.object.name == pattern.subject.name
            ):
                conditions.append(col(subject_column) == col(object_column))
            else:
                outputs.append((pattern.object.name, col(object_column)))
        else:
            conditions.append(col(object_column) == lit(encode_term(pattern.object)))
        for condition in conditions:
            frame = frame.filter(condition)
        for name in keep or []:
            outputs.append((name, col(name)))
        if not outputs:
            # Fully bound pattern: an existence check contributing 0/1 rows.
            marker = self._fresh_name("exists")
            return frame.select((marker, lit("x"))).distinct()
        return frame.select(*outputs)

    # -- PT nodes --------------------------------------------------------------------------

    def _pt_plan(self, node: PtNode) -> DataFrame:
        info = self.store.property_table
        if info is None:
            raise TranslationError(
                "the store has no property table; load with "
                "include_property_table=True or use strategy='vp'"
            )
        return self._wide_plan(
            node,
            table_name=info.table_name,
            key_column=SUBJECT_COLUMN,
            key_slot=lambda p: p.subject,
            value_slot=lambda p: p.object,
            column_for=info.column,
            multivalued=info.is_multivalued,
        )

    def _object_pt_plan(self, node: ObjectPtNode) -> DataFrame:
        info = self.store.object_property_table
        if info is None:
            raise TranslationError(
                "the store has no object property table; load with "
                "include_object_property_table=True"
            )
        return self._wide_plan(
            node,
            table_name=info.table_name,
            key_column=OBJECT_COLUMN,
            key_slot=lambda p: p.object,
            value_slot=lambda p: p.subject,
            column_for=info.column,
            multivalued=info.is_multivalued,
        )

    def _wide_plan(
        self,
        node: JoinTreeNode,
        table_name: str,
        key_column: str,
        key_slot,
        value_slot,
        column_for,
        multivalued,
    ) -> DataFrame:
        """Shared implementation for subject- and object-keyed PT nodes.

        The node's patterns all share the key slot (subject for the PT,
        object for the object-PT); each pattern contributes one wide-table
        column carrying its value slot.
        """
        session = self.store.session
        patterns = list(node.patterns)
        key = key_slot(patterns[0])

        # One temp column per pattern (duplicating the source column when two
        # patterns use the same predicate, so each explodes independently).
        selections: list[tuple[str, Expression]] = [(key_column, col(key_column))]
        temp_names: list[str | None] = []
        missing_predicate = False
        for pattern in patterns:
            source = column_for(pattern.predicate.value)  # type: ignore[union-attr]
            if source is None:
                missing_predicate = True
                temp_names.append(None)
                continue
            temp = self._fresh_name("c")
            selections.append((temp, col(source)))
            temp_names.append(temp)
        if missing_predicate:
            return self._empty_group_plan(node)

        frame = session.table(table_name).select(*selections)
        if not isinstance(key, Variable):
            frame = frame.filter(col(key_column) == lit(encode_term(key)))

        bound_variables: dict[str, str] = {}
        if isinstance(key, Variable):
            bound_variables[key.name] = key_column

        for pattern, temp in zip(patterns, temp_names):
            assert temp is not None
            is_list = multivalued(pattern.predicate.value)  # type: ignore[union-attr]
            value = value_slot(pattern)
            if not isinstance(value, Variable):
                constant = lit(encode_term(value))
                if is_list:
                    frame = frame.filter(col(temp).contains_element(constant))
                else:
                    frame = frame.filter(col(temp) == constant)
                continue
            if is_list:
                frame = frame.explode(temp)
            else:
                frame = frame.filter(col(temp).is_not_null())
            existing = bound_variables.get(value.name)
            if existing is not None:
                frame = frame.filter(col(temp) == col(existing))
            else:
                bound_variables[value.name] = temp

        outputs = [
            (variable, col(source)) for variable, source in sorted(bound_variables.items())
        ]
        if not outputs:
            marker = self._fresh_name("exists")
            return frame.select((marker, lit("x"))).distinct()
        return frame.select(*outputs)

    def _empty_group_plan(self, node: JoinTreeNode) -> DataFrame:
        """Empty relation shaped like the node's variables (a predicate in
        the group does not exist in the data, so the group matches nothing)."""
        from ..columnar.schema import ColumnSchema, TableSchema

        names = sorted({variable.name for variable in node.variables})
        if not names:
            names = [self._fresh_name("exists")]
        schema = TableSchema([ColumnSchema(name, "string") for name in names])
        return self.store.session.create_dataframe(schema, [], label="empty-pt")
