"""Term ↔ cell encoding shared by all stores.

Runtime tables store RDF terms as dense integer :class:`TermId` cells
assigned by the global term dictionary (``rdf/dictionary.py``), so joins,
DISTINCT sets, and equality filters work on small ints. The encoding is
injective — equal IDs are equal terms — and reversible: result rows decode
back to term objects only at the emission boundary, via a memoized O(1)
dictionary lookup.

With ID execution disabled (the strings ablation, ``REPRO_TERM_IDS=0``)
cells fall back to the legacy N-Triples serialization (``<iri>``,
``"literal"^^<dt>``, ``_:b0``) and decoding reparses the text. Persisted
artifacts always store the lexical form either way; see
:func:`repro.rdf.dictionary.storage_row`.
"""

from __future__ import annotations

from ..rdf.dictionary import TERM_ID_BASE, TermId, default_dictionary, ids_enabled
from ..rdf.ntriples import parse_term
from ..rdf.terms import XSD_INTEGER, Literal, Term


def encode_term(term: Term) -> TermId | str:
    """Encode a term for storage in a table cell.

    Returns the interned :class:`TermId` (or, in the strings ablation, the
    N-Triples text). Query constants go through here too, so a constant
    always compares against data cells in the same representation.
    """
    if ids_enabled():
        return default_dictionary().intern_term(term)
    return term.n3()


def encode_term_text(term: Term) -> str:
    """The lexical (N-Triples) encoding, regardless of the ID mode.

    This is what persisted artifacts store: columnar files, SPARQLGX's
    plain-text VP files, and Rya's sorted index keys.
    """
    return term.n3()


def decode_term(cell: TermId | str | int | None) -> Term | None:
    """Decode a table cell back to a term (``None`` passes through).

    Term-ID cells (ints at or above :data:`TERM_ID_BASE`) resolve through
    the dictionary's memoized term cache. Integers below the base are
    engine-produced COUNT values and decode to ``xsd:integer`` literals.
    String cells parse their N-Triples text — memoized through the
    dictionary when ID execution is on, so baselines that carry lexical
    cells (Rya's index keys) decode at amortized O(1).
    """
    if cell is None:
        return None
    if isinstance(cell, int):
        if cell >= TERM_ID_BASE:
            return default_dictionary().term_of(cell)
        return Literal(str(cell), datatype=XSD_INTEGER)
    if ids_enabled():
        return default_dictionary().term_for_text(cell)
    return parse_term(cell)


def decode_row(row: tuple) -> tuple[Term | None, ...]:
    """Decode a whole result row of encoded cells."""
    return tuple([decode_term(cell) for cell in row])


def cell_for_text(text: str) -> TermId | str:
    """A runtime cell for already-encoded text (interned in ID mode)."""
    if ids_enabled():
        return default_dictionary().intern_text(text)
    return text


def cell_text(cell: TermId | str) -> str:
    """The lexical encoding behind a runtime cell (inverse of the above)."""
    if isinstance(cell, int):
        return default_dictionary().text_of(cell)
    return cell
