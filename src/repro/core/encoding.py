"""Term ↔ cell-string encoding shared by all stores.

Every relational table in this repository stores RDF terms as their
N-Triples serialization (``<iri>``, ``"literal"^^<dt>``, ``_:b0``). The
encoding is injective, so joins on encoded strings are joins on terms, and
it is reversible, so result rows decode back to term objects.
"""

from __future__ import annotations

from ..rdf.ntriples import parse_term
from ..rdf.terms import XSD_INTEGER, Literal, Term


def encode_term(term: Term) -> str:
    """Encode a term for storage in a table cell."""
    return term.n3()


def decode_term(cell: str | int | None) -> Term | None:
    """Decode a table cell back to a term (``None`` passes through).

    Integer cells (produced by the engine's COUNT aggregates) decode to
    ``xsd:integer`` literals.
    """
    if cell is None:
        return None
    if isinstance(cell, int):
        return Literal(str(cell), datatype=XSD_INTEGER)
    return parse_term(cell)


def decode_row(row: tuple) -> tuple[Term | None, ...]:
    """Decode a whole result row of encoded cells."""
    return tuple(decode_term(cell) for cell in row)
