"""Text rendering of the paper's tables and figures.

Each function returns a plain-text block shaped like the corresponding paper
artifact (Table 1, Figure 2, Figure 3, Table 2), with a "paper reports"
footer stating the expected shape so a reader can eyeball the reproduction.
"""

from __future__ import annotations

import math

from ..core.loader import LoadReport
from ..watdiv.queries import QUERY_GROUPS, QUERY_NAMES
from .harness import SystemRun

_GROUP_TITLES = {
    "C": "Complex",
    "F": "Snowflake",
    "L": "Linear",
    "S": "Star",
}


def _format_bytes_as_emulated_gb(stored_bytes: int, data_scale: float) -> str:
    return f"{stored_bytes * data_scale / 1e9:.1f} GB"


def _format_duration(seconds: float) -> str:
    if seconds >= 3600:
        hours = int(seconds // 3600)
        minutes = int((seconds % 3600) // 60)
        return f"{hours}h {minutes:02d}m"
    if seconds >= 60:
        minutes = int(seconds // 60)
        secs = int(seconds % 60)
        return f"{minutes}m {secs:02d}s"
    return f"{seconds:.1f}s"


def render_table1(reports: list[LoadReport], data_scale: float) -> str:
    """Table 1: storage size and loading time per system."""
    lines = [
        "Table 1: Size and loading times (emulated at WatDiv100M scale)",
        f"{'System':<12} {'Size':>10} {'Load time':>12} {'Tables':>8}",
    ]
    for report in reports:
        lines.append(
            f"{report.system:<12} "
            f"{_format_bytes_as_emulated_gb(report.stored_bytes, data_scale):>10} "
            f"{_format_duration(report.simulated_sec):>12} "
            f"{report.tables_written:>8}"
        )
    lines.append(
        "paper reports: PRoST 2.1GB/25m32s, SPARQLGX 0.9GB/20m01s, "
        "S2RDF 6.2GB/3h11m44s, Rya 3.1GB/41m32s"
    )
    return "\n".join(lines)


def render_per_query_times(
    runs: dict[str, SystemRun], title: str, log_note: bool = False
) -> str:
    """A per-query time matrix (Figures 2 and 3), milliseconds, one row per
    query in paper order."""
    systems = list(runs)
    header = f"{'Query':<7}" + "".join(f"{name:>18}" for name in systems)
    lines = [title, header]
    for query_name in QUERY_NAMES:
        cells = []
        for system in systems:
            result = runs[system].queries.get(query_name)
            cells.append(
                f"{result.simulated_sec * 1000:>15,.0f}ms" if result else f"{'-':>17}"
            )
        lines.append(f"{query_name:<7}" + "".join(cells))
    if log_note:
        lines.append("(the paper plots these on a logarithmic scale)")
    return "\n".join(lines)


def render_figure2(runs: dict[str, SystemRun]) -> str:
    """Figure 2: VP-only vs mixed strategy, per query."""
    body = render_per_query_times(
        runs, "Figure 2: Querying time, Vertical Partitioning vs mixed strategy"
    )
    return body + (
        "\npaper reports: mixed outperforms VP-only for almost every query, "
        "strongly on S/C/F; close to equal on several L queries"
    )


def render_figure3(runs: dict[str, SystemRun]) -> str:
    """Figure 3: PRoST vs S2RDF vs Rya vs SPARQLGX, per query."""
    body = render_per_query_times(
        runs,
        "Figure 3: Querying time, PRoST vs S2RDF vs Rya vs SPARQLGX",
        log_note=True,
    )
    return body + (
        "\npaper reports: PRoST faster than S2RDF on F2/S1/S3/S5, slower "
        "elsewhere (notably C, F3, F4); Rya very fast on selective queries "
        "but orders of magnitude slower on join-heavy ones; PRoST beats "
        "SPARQLGX everywhere, mostly by ~an order of magnitude"
    )


def render_table2(runs: dict[str, SystemRun]) -> str:
    """Table 2: average querying time per query-shape class."""
    systems = list(runs)
    lines = [
        "Table 2: Average querying time by query type (ms)",
        f"{'Queries':<12}" + "".join(f"{name:>14}" for name in systems),
    ]
    for group in QUERY_GROUPS:
        cells = []
        for system in systems:
            averages = runs[system].average_by_group()
            value = averages.get(group, math.nan)
            cells.append(f"{value * 1000:>13,.0f}")
        lines.append(f"{_GROUP_TITLES[group]:<12}" + "".join(cells))
    lines.append(
        "paper reports (ms): Complex 9364/3392/2195322/61363, "
        "Snowflake 5923/1564/369016/24046, Linear 2419/527/49044/18254, "
        "Star 1195/884/69606/21046 for PRoST/S2RDF/Rya/SPARQLGX"
    )
    return "\n".join(lines)


def render_bar_chart(
    runs: dict[str, SystemRun],
    title: str,
    width: int = 48,
    logarithmic: bool = True,
) -> str:
    """Render per-query times as ASCII bars (one bar per system per query).

    With ``logarithmic=True`` bar length is proportional to
    ``log10(time)``, matching the paper's Figure 3 presentation where the
    systems differ by orders of magnitude.
    """
    systems = list(runs)
    values = [
        result.simulated_sec
        for run in runs.values()
        for result in run.queries.values()
        if result.simulated_sec > 0
    ]
    if not values:
        return title + "\n(no data)"
    floor = min(values)
    ceiling = max(values)

    def bar_length(seconds: float) -> int:
        if seconds <= 0:
            return 0
        if logarithmic:
            if ceiling <= floor:
                return width
            position = (math.log10(seconds) - math.log10(floor)) / (
                math.log10(ceiling) - math.log10(floor)
            )
        else:
            position = seconds / ceiling
        return max(1, round(position * width))

    label_width = max(len(name) for name in systems)
    lines = [title]
    for query_name in QUERY_NAMES:
        lines.append(query_name)
        for system in systems:
            result = runs[system].queries.get(query_name)
            if result is None:
                continue
            bar = "█" * bar_length(result.simulated_sec)
            lines.append(
                f"  {system:<{label_width}} {bar} {result.simulated_sec * 1000:,.0f}ms"
            )
    if logarithmic:
        lines.append(f"(bar length is log-scaled between {floor * 1000:,.0f}ms "
                     f"and {ceiling * 1000:,.0f}ms)")
    return "\n".join(lines)


def speedup_table(runs: dict[str, SystemRun], baseline: str, against: str) -> dict[str, float]:
    """Per-query speedup of ``baseline`` over ``against`` (>1 = baseline wins)."""
    ratios = {}
    for query_name in QUERY_NAMES:
        base = runs[baseline].queries.get(query_name)
        other = runs[against].queries.get(query_name)
        if base and other and base.simulated_sec > 0:
            ratios[query_name] = other.simulated_sec / base.simulated_sec
    return ratios
