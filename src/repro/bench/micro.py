"""Wall-clock microbenchmark: the strings → IDs → vectors ablation.

Unlike the paper-reproduction harness (``harness.py``), which reports
*simulated* cluster seconds, this benchmark measures real wall-clock time
of this process: load a WatDiv graph into PRoST (mixed strategy) and run
the join-heavy query mix (star, snowflake, and complex groups) three
times — legacy string cells on row tuples, dictionary term IDs on row
tuples, and term IDs on column batches (the vectorized executor) — then
report each step's speedup. Results land in ``BENCH_engine.json`` at the
repository root so the perf trajectory is tracked PR over PR.
"""

from __future__ import annotations

import json
import statistics
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..core.prost import ProstEngine
from ..rdf.dictionary import default_dictionary, term_ids
from ..vector import vectorized
from ..watdiv.generator import generate_watdiv
from ..watdiv.queries import basic_query_set

#: Star (S), snowflake (F), and complex (C) groups: every query joins; the
#: linear (L) group is dominated by single-pattern point lookups.
JOIN_HEAVY_GROUPS = ("C", "F", "S")


@dataclass
class ModeResult:
    """Wall-clock measurements for one cell representation."""

    mode: str
    load_sec: float
    query_sec: float
    per_query_sec: dict[str, float] = field(default_factory=dict)
    rows_returned: int = 0

    def to_dict(self) -> dict:
        return {
            "load_sec": round(self.load_sec, 4),
            "query_sec": round(self.query_sec, 4),
            "rows_returned": self.rows_returned,
            "per_query_sec": {
                name: round(sec, 4) for name, sec in self.per_query_sec.items()
            },
        }


#: mode name -> (dictionary term IDs on?, vectorized executor on?).
BENCH_MODES = {
    "strings": (False, False),
    "ids": (True, False),
    "vectors": (True, True),
}


def _run_mode(
    mode: str, dataset, queries, repeats: int, tracer=None, cluster_config=None
) -> ModeResult:
    """Load and run the query mix with cells in the given representation.

    With a tracer, the load and the *first* sample of each query record
    spans (repeat samples run untraced so medians stay honest).
    """
    use_ids, use_vectors = BENCH_MODES[mode]
    with term_ids(use_ids), vectorized(use_vectors):
        # A fresh ID space per mode keeps the two runs independent.
        default_dictionary().clear()
        engine = ProstEngine(cluster_config=cluster_config)
        mode_cm = (
            tracer.span("bench_mode", mode=mode)
            if tracer is not None
            else nullcontext()
        )
        with mode_cm:
            started = time.perf_counter()
            engine.load(dataset.graph, tracer=tracer)
            load_sec = time.perf_counter() - started

            per_query: dict[str, float] = {}
            rows_returned = 0
            for query in queries:
                samples = []
                for sample_index in range(repeats):
                    sample_tracer = tracer if sample_index == 0 else None
                    query_cm = (
                        sample_tracer.span("bench_query", name=query.name)
                        if sample_tracer is not None
                        else nullcontext()
                    )
                    with query_cm:
                        started = time.perf_counter()
                        result = engine.sparql(query.text, tracer=sample_tracer)
                        samples.append(time.perf_counter() - started)
                rows_returned += len(result)
                # Median sample: robust against scheduler noise either way.
                per_query[query.name] = statistics.median(samples)
        return ModeResult(
            mode=mode,
            load_sec=load_sec,
            query_sec=sum(per_query.values()),
            per_query_sec=per_query,
            rows_returned=rows_returned,
        )


def run_quick_bench(
    scale: int = 2000,
    seed: int = 7,
    repeats: int = 5,
    groups: tuple[str, ...] = JOIN_HEAVY_GROUPS,
    tracer=None,
    cluster_config=None,
) -> dict:
    """The ``prost-repro bench --quick`` payload (see module docstring).

    ``cluster_config`` lets ``bench --quick --memory-budget N`` measure the
    wall-clock price of governed (spilling/degrading) execution.
    """
    dataset = generate_watdiv(scale=scale, seed=seed)
    queries = [q for q in basic_query_set(dataset) if q.group in groups]
    strings = _run_mode(
        "strings", dataset, queries, repeats, tracer=tracer, cluster_config=cluster_config
    )
    ids = _run_mode(
        "ids", dataset, queries, repeats, tracer=tracer, cluster_config=cluster_config
    )
    vectors = _run_mode(
        "vectors", dataset, queries, repeats, tracer=tracer, cluster_config=cluster_config
    )
    speedup = strings.query_sec / ids.query_sec if ids.query_sec > 0 else float("inf")
    vector_speedup = (
        ids.query_sec / vectors.query_sec if vectors.query_sec > 0 else float("inf")
    )
    return {
        "benchmark": "quick",
        "description": (
            "PRoST mixed-strategy wall clock on the join-heavy WatDiv mix "
            "(groups %s): string cells vs dictionary term IDs vs "
            "vectorized column batches" % "/".join(groups)
        ),
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "triples": len(dataset.graph),
        "queries": [q.name for q in queries],
        "modes": {
            "strings": strings.to_dict(),
            "ids": ids.to_dict(),
            "vectors": vectors.to_dict(),
        },
        "query_speedup": round(speedup, 2),
        "vector_speedup": round(vector_speedup, 2),
        "load_speedup": round(
            strings.load_sec / ids.load_sec if ids.load_sec > 0 else float("inf"), 2
        ),
    }


def write_bench_json(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def render_quick_bench(payload: dict) -> str:
    """A terminal summary of the ablation."""
    strings = payload["modes"]["strings"]
    ids = payload["modes"]["ids"]
    vectors = payload["modes"]["vectors"]
    lines = [
        f"quick bench: scale={payload['scale']} "
        f"({payload['triples']:,} triples), "
        f"{len(payload['queries'])} join-heavy queries × {payload['repeats']} runs",
        f"  strings: load {strings['load_sec']:.2f}s  queries {strings['query_sec']:.3f}s",
        f"  ids:     load {ids['load_sec']:.2f}s  queries {ids['query_sec']:.3f}s",
        f"  vectors: load {vectors['load_sec']:.2f}s  queries {vectors['query_sec']:.3f}s",
        f"  query speedup (strings → ids): {payload['query_speedup']:.2f}x",
        f"  query speedup (ids → vectors): {payload['vector_speedup']:.2f}x",
    ]
    return "\n".join(lines)
