"""Benchmark harness: the paper's Tables 1-2 and Figures 2-3."""

from .harness import (
    EMULATED_TRIPLES,
    BenchmarkConfig,
    BenchmarkSuite,
    QueryResult,
    SystemRun,
)
from .micro import (
    JOIN_HEAVY_GROUPS,
    render_quick_bench,
    run_quick_bench,
    write_bench_json,
)
from .reporting import (
    render_bar_chart,
    render_figure2,
    render_figure3,
    render_per_query_times,
    render_table1,
    render_table2,
    speedup_table,
)

__all__ = [
    "BenchmarkConfig",
    "BenchmarkSuite",
    "EMULATED_TRIPLES",
    "JOIN_HEAVY_GROUPS",
    "QueryResult",
    "SystemRun",
    "render_quick_bench",
    "run_quick_bench",
    "write_bench_json",
    "render_bar_chart",
    "render_figure2",
    "render_figure3",
    "render_per_query_times",
    "render_table1",
    "render_table2",
    "speedup_table",
]
