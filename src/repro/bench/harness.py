"""Benchmark harness reproducing the paper's evaluation (§4).

The harness generates a WatDiv-style dataset, loads it into each system with
the cluster cost model emulating the paper's setup (9 workers, Gigabit
Ethernet, dataset emulated at 100M triples via ``data_scale``), runs the
20-query basic set, and produces the rows behind Table 1, Table 2, Figure 2,
and Figure 3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..baselines.rya import Rya, RyaCostModel
from ..baselines.s2rdf import S2Rdf
from ..baselines.sparqlgx import SparqlGx
from ..core.loader import LoadReport
from ..core.prost import ProstEngine
from ..engine.cluster import ClusterConfig
from ..sparql.parser import parse_sparql
from ..watdiv.generator import WatDivDataset, generate_watdiv
from ..watdiv.queries import QUERY_GROUPS, BenchmarkQuery, basic_query_set

#: The paper's dataset size, which ``data_scale`` emulates.
EMULATED_TRIPLES = 100_000_000


@dataclass(frozen=True)
class BenchmarkConfig:
    """Knobs of one benchmark run.

    Attributes:
        scale: WatDiv generator scale (≈ users; triples ≈ 60 × scale).
        seed: generator seed.
        num_workers: simulated Spark workers / tablet servers (paper: 9).
        emulated_triples: dataset size the cost model emulates (paper: 100M).
        s2rdf_threshold: ExtVP selectivity persistence threshold.
    """

    scale: int = 400
    seed: int = 7
    num_workers: int = 9
    emulated_triples: int = EMULATED_TRIPLES
    s2rdf_threshold: float = 0.75


@dataclass
class QueryResult:
    """One (system, query) measurement."""

    system: str
    query: str
    group: str
    rows: int
    simulated_sec: float
    wall_clock_sec: float


@dataclass
class SystemRun:
    """All measurements of one system over the full query set."""

    system: str
    load_report: LoadReport
    queries: dict[str, QueryResult] = field(default_factory=dict)

    def average_by_group(self) -> dict[str, float]:
        """Mean simulated seconds per query-shape class (Table 2)."""
        averages: dict[str, float] = {}
        for group in QUERY_GROUPS:
            times = [
                result.simulated_sec
                for result in self.queries.values()
                if result.group == group
            ]
            if times:
                averages[group] = sum(times) / len(times)
        return averages


class BenchmarkSuite:
    """Generates the workload once and runs systems against it."""

    def __init__(self, config: BenchmarkConfig | None = None):
        self.config = config or BenchmarkConfig()
        self.dataset: WatDivDataset = generate_watdiv(
            scale=self.config.scale, seed=self.config.seed
        )
        self.queries: list[BenchmarkQuery] = basic_query_set(self.dataset)
        self._parsed = {q.name: parse_sparql(q.text) for q in self.queries}

    @property
    def data_scale(self) -> float:
        """Emulation factor: paper-scale triples over generated triples."""
        return self.config.emulated_triples / len(self.dataset.graph)

    def cluster_config(self) -> ClusterConfig:
        return ClusterConfig(
            num_workers=self.config.num_workers, data_scale=self.data_scale
        )

    # -- system factories --------------------------------------------------------

    def make_prost(self, strategy: str = "mixed", **kwargs) -> ProstEngine:
        return ProstEngine(
            strategy=strategy, cluster_config=self.cluster_config(), **kwargs
        )

    def make_sparqlgx(self) -> SparqlGx:
        return SparqlGx(cluster_config=self.cluster_config())

    def make_s2rdf(self) -> S2Rdf:
        return S2Rdf(
            selectivity_threshold=self.config.s2rdf_threshold,
            cluster_config=self.cluster_config(),
        )

    def make_rya(self) -> Rya:
        return Rya(
            num_tablet_servers=self.config.num_workers,
            cost_model=RyaCostModel(data_scale=self.data_scale),
        )

    # -- running --------------------------------------------------------------------

    def run_system(self, system) -> SystemRun:
        """Load the dataset into ``system`` and run all 20 queries."""
        load_report = system.load(self.dataset.graph)
        run = SystemRun(system=system.name, load_report=load_report)
        for query in self.queries:
            parsed = self._parsed[query.name]
            started = time.perf_counter()
            result_set = system.sparql(parsed)
            wall = time.perf_counter() - started
            run.queries[query.name] = QueryResult(
                system=system.name,
                query=query.name,
                group=query.group,
                rows=len(result_set),
                simulated_sec=result_set.report.simulated_sec,
                wall_clock_sec=wall,
            )
        return run

    def run_all_systems(self) -> dict[str, SystemRun]:
        """Figure 3 / Table 2: PRoST and the three baselines."""
        runs = {}
        for factory in (self.make_prost, self.make_s2rdf, self.make_rya, self.make_sparqlgx):
            system = factory()
            runs[system.name] = self.run_system(system)
        return runs

    def run_strategy_comparison(self) -> dict[str, SystemRun]:
        """Figure 2: PRoST with VP only vs the mixed strategy."""
        vp_only = self.make_prost(strategy="vp")
        mixed = self.make_prost(strategy="mixed")
        return {
            "VP only": self.run_system(vp_only),
            "Mixed (VP + PT)": self.run_system(mixed),
        }

    def run_loading_comparison(self) -> list[LoadReport]:
        """Table 1: size and loading time for all four systems."""
        reports = []
        for factory in (self.make_prost, self.make_sparqlgx, self.make_s2rdf, self.make_rya):
            system = factory()
            reports.append(system.load(self.dataset.graph))
        return reports
