"""Exception hierarchy for the PRoST reproduction.

Every error raised by this package derives from :class:`ReproError`, so a
caller can catch a single base class. Layer-specific subclasses exist for the
storage substrates, the execution engine, and the SPARQL front end.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class RdfSyntaxError(ReproError):
    """Raised when parsing serialized RDF (e.g. N-Triples) fails.

    Attributes:
        line_number: 1-based line number of the offending input line, if known.
    """

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class SparqlSyntaxError(ReproError):
    """Raised when a SPARQL query string cannot be parsed."""


class ValidationError(ReproError, ValueError):
    """Raised for invalid argument or configuration values.

    Also derives :class:`ValueError`, so call sites (and tests) written
    against the stdlib type before the hierarchy was unified keep working;
    the ``repro.analysis`` error-hierarchy lint requires every raise in the
    package to use a :class:`ReproError` subclass.
    """


class UnsupportedSparqlError(ReproError):
    """Raised for syntactically valid SPARQL outside the supported fragment."""


class StorageError(ReproError):
    """Base class for errors in the storage substrates (HDFS, KV, columnar)."""


class FileNotFoundInHdfsError(StorageError):
    """Raised when a simulated-HDFS path does not exist."""


class FileAlreadyExistsError(StorageError):
    """Raised when creating a simulated-HDFS file over an existing path."""


class EncodingError(StorageError):
    """Raised when a columnar encoder/decoder receives invalid input."""


class SchemaError(ReproError):
    """Raised for schema violations: unknown columns, type mismatches, dupes."""


class PlanError(ReproError):
    """Raised when a logical/physical plan is malformed or cannot be built."""


class ExecutionError(ReproError):
    """Base class for runtime failures while executing a physical plan.

    The fault-tolerance machinery raises typed subclasses: a single task
    attempt fails with :class:`TaskFailedError`, a task that exhausts its
    retry budget fails the query with :class:`FaultToleranceExhaustedError`,
    and an HDFS block whose every replica is on a dead datanode raises
    :class:`BlockUnavailableError`.
    """


class TaskFailedError(ExecutionError):
    """One simulated task attempt failed (injected fault).

    Attributes:
        stage: stage index the task ran in.
        task: task index within the stage's wave.
        attempt: 1-based attempt number that failed.
        kind: ``"task"`` (execution failure) or ``"fetch"`` (shuffle-fetch).
    """

    def __init__(
        self,
        message: str,
        stage: int | None = None,
        task: int | None = None,
        attempt: int | None = None,
        kind: str = "task",
    ):
        super().__init__(message)
        self.stage = stage
        self.task = task
        self.attempt = attempt
        self.kind = kind


class FaultToleranceExhaustedError(ExecutionError):
    """A task failed more times than ``max_task_attempts`` allows.

    Mirrors Spark aborting a stage (and the job) once a single task has
    failed ``spark.task.maxFailures`` times.
    """


class BlockUnavailableError(ExecutionError, StorageError):
    """Every replica of an HDFS block lives on a failed datanode.

    Both an :class:`ExecutionError` (a scan cannot proceed) and a
    :class:`StorageError` (the storage layer lost data), so callers
    catching either family see it.
    """


class QueryTimeoutError(ExecutionError):
    """A query exceeded its deadline and was cooperatively cancelled.

    Raised at a stage boundary (or inside the fault injector's retry loop)
    once the governor's :class:`~repro.governor.Deadline` expires. The
    partially filled metrics object is preserved so EXPLAIN ANALYZE can
    still render the work done before the cut-off.

    Attributes:
        metrics: the partial ``ExecutionMetrics`` at the moment of timeout.
    """

    def __init__(self, message: str, metrics: object | None = None):
        super().__init__(message)
        self.metrics = metrics


class QueryCancelledError(ExecutionError):
    """A query was cancelled cooperatively (caller-requested, not a timeout).

    Like :class:`QueryTimeoutError`, carries the partial metrics snapshot.

    Attributes:
        metrics: the partial ``ExecutionMetrics`` at the cancellation point.
    """

    def __init__(self, message: str, metrics: object | None = None):
        super().__init__(message)
        self.metrics = metrics


class AdmissionRejectedError(ExecutionError):
    """The admission controller shed a query instead of running it.

    Raised by :class:`~repro.governor.Governor` when the concurrent-query
    limit is reached and the bounded wait queue is full (or the queue wait
    timed out) — the load-shedding path of graceful degradation.
    """


class CatalogError(ReproError):
    """Raised for catalog misuse: missing or duplicate table registrations."""


class TableNotFoundError(StorageError, KeyError):
    """Raised when a KV-store table lookup names an unregistered table.

    Also derives :class:`KeyError` (the lookup is dictionary-shaped), so
    pre-hierarchy callers catching ``KeyError`` still see it.
    """

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; keep the plain message.
        return str(self.args[0]) if self.args else ""


class PlanVerificationError(PlanError):
    """A plan failed static verification (``repro.analysis``).

    Attributes:
        diagnostics: the :class:`~repro.analysis.diagnostics.Diagnostic`
            objects describing each violated invariant.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class LoaderError(ReproError):
    """Raised when loading an RDF graph into a store fails."""


class TranslationError(ReproError):
    """Raised when a SPARQL query cannot be translated to a join tree."""


class InterleaveError(ReproError):
    """Base class for failures the deterministic interleaving harness
    (:mod:`repro.testing.interleave`) detects while replaying a schedule."""


class DeadlockError(InterleaveError):
    """A genuine waits-for cycle between instrumented locks was detected
    under a replayed thread schedule; the message names the cycle."""


class SchedulerStallError(InterleaveError):
    """An interleaved run stopped making progress: the scheduler exceeded
    its step budget, timed out on the wall clock (a real blocking call
    swallowed the only runnable thread), or was aborted."""
