"""Exception hierarchy for the PRoST reproduction.

Every error raised by this package derives from :class:`ReproError`, so a
caller can catch a single base class. Layer-specific subclasses exist for the
storage substrates, the execution engine, and the SPARQL front end.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class RdfSyntaxError(ReproError):
    """Raised when parsing serialized RDF (e.g. N-Triples) fails.

    Attributes:
        line_number: 1-based line number of the offending input line, if known.
    """

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class SparqlSyntaxError(ReproError):
    """Raised when a SPARQL query string cannot be parsed."""


class UnsupportedSparqlError(ReproError):
    """Raised for syntactically valid SPARQL outside the supported fragment."""


class StorageError(ReproError):
    """Base class for errors in the storage substrates (HDFS, KV, columnar)."""


class FileNotFoundInHdfsError(StorageError):
    """Raised when a simulated-HDFS path does not exist."""


class FileAlreadyExistsError(StorageError):
    """Raised when creating a simulated-HDFS file over an existing path."""


class EncodingError(StorageError):
    """Raised when a columnar encoder/decoder receives invalid input."""


class SchemaError(ReproError):
    """Raised for schema violations: unknown columns, type mismatches, dupes."""


class PlanError(ReproError):
    """Raised when a logical/physical plan is malformed or cannot be built."""


class ExecutionError(ReproError):
    """Raised when executing a physical plan fails at runtime."""


class CatalogError(ReproError):
    """Raised for catalog misuse: missing or duplicate table registrations."""


class LoaderError(ReproError):
    """Raised when loading an RDF graph into a store fails."""


class TranslationError(ReproError):
    """Raised when a SPARQL query cannot be translated to a join tree."""
