"""Batch execution: shared scans and deduplicated work across queries.

When a server receives a burst of concurrent queries, much of the work is
redundant in two distinct ways:

- **identical queries** (up to variable renaming — the same canonical
  form) compute identical row sets, so a batch executes each distinct
  canonical query once and fans the rows out to every requester
  (``serve.batched_queries`` counts the queries that rode along);
- **shared tables**: distinct queries still scan overlapping PT/VP
  tables. On the vectorized path a table's columnar transposition is the
  dominant scan setup cost; :func:`execute_batch` walks every planned
  frame for its table scans, warms each *distinct* table once before any
  query runs, and counts every further reference as a shared scan
  (``serve.shared_scans``).

Correctness is by construction: batching changes neither plans nor
per-query execution semantics — only who pays for the transposition and
how many times an identical computation runs — so batched results are
multiset-equal to cold one-at-a-time execution (the serve-mode
differential suite holds it to that).
"""

from __future__ import annotations

from ..core.results import ResultSet
from ..engine.logical import TableScan
from ..errors import AdmissionRejectedError
from ..sparql.algebra import SelectQuery
from .server import QueryServer, ResultEntry


def tables_scanned(plan) -> list[str]:
    """Every table name a logical plan scans, in discovery order
    (duplicates kept: a self-join scans its table twice)."""
    found: list[str] = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, TableScan):
            found.append(node.table_name)
        stack.extend(reversed(node.children))
    return found


def execute_batch(
    server: QueryServer,
    queries: list,
    tenant: str | None = None,
    tracer=None,
) -> list[ResultSet]:
    """Execute a batch of queries, sharing plans, scans, and row sets.

    Each *distinct* canonical query is admitted (tenant-charged) and
    executed exactly once, in first-appearance order; results return in
    the order of ``queries``. Admission rejection of any group propagates
    — a batch is one unit of work.

    Args:
        server: the serving session (its caches and stats are used).
        queries: SPARQL texts or parsed queries.
        tenant: tenant label for admission (server default when ``None``).
        tracer: traces each distinct execution (shared rows record one).
    """
    tenant = tenant if tenant is not None else server.default_tenant
    engine = server.engine
    epoch = engine.plan_epoch
    parsed_queries = [server._parse(query) for query in queries]
    canonicals = [server.canonicalize_cached(parsed) for parsed in parsed_queries]

    # Group request indexes by canonical form: one execution per group.
    groups: dict[SelectQuery, list[int]] = {}
    for index, canonical in enumerate(canonicals):
        groups.setdefault(canonical, []).append(index)

    # Plan every distinct group up front (plan-cache path), then warm each
    # distinct table exactly once so no query pays the transposition twice.
    entries = {canonical: server._plan_for(canonical, epoch) for canonical in groups}
    _share_scans(server, entries.values())

    results: list[ResultSet | None] = [None] * len(parsed_queries)
    with server._lock:
        server.stats.queries_served += len(parsed_queries)
        server.stats.batched_queries += sum(
            len(members) - 1 for members in groups.values()
        )
    for canonical, members in groups.items():
        leader = parsed_queries[members[0]]
        rows, report = _rows_for(
            server, canonical, entries[canonical], leader, epoch, tenant, tracer
        )
        for index in members:
            names = tuple(v.name for v in parsed_queries[index].projection)
            results[index] = ResultSet(names, list(rows), report)
    return [result for result in results if result is not None]


def _share_scans(server: QueryServer, entries) -> None:
    """Warm each distinct scanned table once; count the shared references."""
    references: list[str] = []
    for entry in entries:
        references.extend(tables_scanned(entry.frame.plan))
    distinct = dict.fromkeys(references)  # insertion-ordered, deterministic
    shared = len(references) - len(distinct)
    from ..vector import vectorize_enabled

    if vectorize_enabled():
        from ..engine.vectorized import warm_table

        catalog = server.engine.session.catalog
        for name in distinct:
            warm_table(catalog.get(name))
    if shared:
        with server._lock:
            server.stats.shared_scans += shared


def _rows_for(
    server: QueryServer,
    canonical: SelectQuery,
    entry,
    leader: SelectQuery,
    epoch: tuple,
    tenant: str,
    tracer=None,
) -> tuple[tuple, object]:
    """One group's shared rows: result cache first, else one execution.

    Execution runs under a tenant-charged admission slot, exactly like
    single-query serving; the decoded rows land in the result cache so a
    later batch (or single query) with the same canonical form hits.
    """
    cache = server._result_cache
    if cache.capacity:
        cached = cache.get((canonical, epoch))
        if cached is not None:
            with server._lock:
                server.stats.result_cache_hits += 1
            return cached.rows, cached.report
        with server._lock:
            server.stats.result_cache_misses += 1
    try:
        with server.engine.governor.admit(tenant=tenant):
            result = server.engine.execute_prepared(
                leader, entry.frame, entry.description, tracer=tracer, admitted=True
            )
    except AdmissionRejectedError:
        with server._lock:
            server.stats.admission_rejections += 1
        raise
    rows = tuple(result.rows)
    if cache.capacity:
        cache.put((canonical, epoch), ResultEntry(rows, result.report))
    return rows, result.report
