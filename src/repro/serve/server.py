"""The multi-tenant session server over one :class:`ProstEngine`.

:class:`QueryServer` is the serving front door the ROADMAP's "millions of
users" north star asks for: many concurrent clients, one loaded engine.
Every query — hit or miss — passes through the engine's
:class:`~repro.governor.Governor` admission gate carrying a tenant label,
so per-tenant slot caps and cost attribution apply uniformly. Inside the
slot, two caches exploit repeated workload structure (the PHD-Store
observation that production workloads repeat):

- the **plan cache** maps a normalized plan shape (see
  :mod:`repro.serve.normalize`) + the engine's ``plan_epoch`` to the
  verified, ready-to-execute frame, skipping translate → optimize →
  plan-verify entirely on a hit;
- the **result cache** maps the full canonical query + epoch to the
  decoded rows, skipping execution entirely.

Both keys embed :attr:`~repro.core.prost.ProstEngine.plan_epoch`, so a
dataset reload or re-provisioned engine invalidates everything at once; a
``PV401`` lineage check (:mod:`repro.analysis.lineage`) re-verifies every
cached plan immediately before it executes as defense in depth.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field, fields

from ..core.prost import ProstEngine
from ..core.results import ResultSet
from ..engine.dataframe import DataFrame
from ..errors import AdmissionRejectedError, ValidationError
from ..sparql.algebra import SelectQuery
from ..sparql.parser import parse_sparql
from .cache import LruCache
from .normalize import canonicalize, plan_shape

#: Environment fallback for the plan-cache capacity (entries).
PLAN_CACHE_ENV = "REPRO_SERVE_PLAN_CACHE"

#: Environment fallback for the result-cache capacity (entries; 0 disables).
RESULT_CACHE_ENV = "REPRO_SERVE_RESULT_CACHE"

#: Default plan-cache capacity when neither argument nor env is given.
DEFAULT_PLAN_CACHE_SIZE = 64

#: Default result-cache capacity when neither argument nor env is given.
DEFAULT_RESULT_CACHE_SIZE = 256

#: Tenant label charged when a caller does not name one.
DEFAULT_TENANT = "default"


def _cache_size_from_env(name: str) -> int | None:
    """Parse one cache-capacity env var (``None`` when unset/invalid)."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValidationError(f"{name} must be an integer, got {raw!r}")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return value


def plan_cache_size_from_env() -> int | None:
    """The ``REPRO_SERVE_PLAN_CACHE`` capacity, or ``None`` when unset."""
    return _cache_size_from_env(PLAN_CACHE_ENV)


def result_cache_size_from_env() -> int | None:
    """The ``REPRO_SERVE_RESULT_CACHE`` capacity, or ``None`` when unset."""
    return _cache_size_from_env(RESULT_CACHE_ENV)


@dataclass
class ServerStats:
    """Lifetime counters of one server (the ``serve.*`` metrics layer).

    Field names mirror the registry one-for-one
    (``repro.obs.metrics._SERVE_FIELDS``); a completeness test keeps the
    two in lockstep so a new counter cannot ship undocumented.
    """

    queries_served: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_evictions: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    admission_rejections: int = 0
    batched_queries: int = 0
    shared_scans: int = 0

    def to_dict(self) -> dict[str, int]:
        """Plain field → value mapping (JSON payloads, assertions)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


@dataclass(frozen=True)
class PlanEntry:
    """One plan-cache value: a verified frame plus its lineage epoch."""

    frame: DataFrame
    description: str
    epoch: tuple


@dataclass(frozen=True)
class ResultEntry:
    """One result-cache value: immutable decoded rows plus the report."""

    rows: tuple
    report: object


class QueryServer:
    """Concurrent, cache-accelerated SPARQL serving over one engine.

    Args:
        engine: the loaded (or about-to-be-loaded) engine to serve.
        plan_cache_size: LRU capacity of the plan cache (0 disables);
            falls back to ``REPRO_SERVE_PLAN_CACHE``, then the default.
        result_cache_size: LRU capacity of the result cache (0 disables);
            falls back to ``REPRO_SERVE_RESULT_CACHE``, then the default.
        max_queries_per_tenant: per-tenant concurrent-slot cap applied at
            the engine's admission gate (``None`` leaves the gate's
            existing policy untouched).
        default_tenant: tenant label charged when a call names none.
    """

    def __init__(
        self,
        engine: ProstEngine,
        plan_cache_size: int | None = None,
        result_cache_size: int | None = None,
        max_queries_per_tenant: int | None = None,
        default_tenant: str = DEFAULT_TENANT,
    ):
        if plan_cache_size is None:
            plan_cache_size = plan_cache_size_from_env()
        if plan_cache_size is None:
            plan_cache_size = DEFAULT_PLAN_CACHE_SIZE
        if result_cache_size is None:
            result_cache_size = result_cache_size_from_env()
        if result_cache_size is None:
            result_cache_size = DEFAULT_RESULT_CACHE_SIZE
        self.engine = engine
        self.default_tenant = default_tenant
        if max_queries_per_tenant is not None:
            if max_queries_per_tenant < 1:
                raise ValidationError("max_queries_per_tenant must be at least 1")
            engine.governor.max_queries_per_tenant = max_queries_per_tenant
        # One server lock guards the stats object and both memo dicts; the
        # LRU caches synchronize internally, and the engine's prepared-
        # statement caches are guarded by the engine's own _cache_lock —
        # so no path ever nests two of these locks (CC103 stays clean).
        self._lock = threading.Lock()
        self.stats = ServerStats()  # guarded-by: _lock
        self._plan_cache: LruCache[PlanEntry] = LruCache(plan_cache_size)
        self._result_cache: LruCache[ResultEntry] = LruCache(result_cache_size)
        self._parse_cache: dict[str, SelectQuery] = {}  # guarded-by: _lock
        self._canonical_cache: dict[SelectQuery, SelectQuery] = {}  # guarded-by: _lock

    # -- dataset lifecycle -------------------------------------------------------

    def load(self, graph, tracer=None):
        """Load (or reload) the served dataset and invalidate both caches.

        The engine's ``plan_epoch`` bump already guarantees stale entries
        can never *hit*; clearing additionally returns their memory right
        away instead of waiting for LRU pressure.
        """
        report = self.engine.load(graph, tracer=tracer)
        self.invalidate()
        return report

    def invalidate(self) -> None:
        """Drop every cached plan and result (kept counters intact)."""
        self._plan_cache.clear()
        self._result_cache.clear()

    # -- serving -----------------------------------------------------------------

    def _parse(self, query: str | SelectQuery) -> SelectQuery:
        """Parse text through the server's own memo (AST inputs pass through).

        Parsing itself runs outside the lock — it is pure, so two threads
        racing on a cold entry at worst parse twice and agree; the lock
        only makes the dict operations themselves safe.
        """
        if isinstance(query, SelectQuery):
            return query
        with self._lock:
            parsed = self._parse_cache.get(query)
        if parsed is None:
            parsed = parse_sparql(query)
            with self._lock:
                self._parse_cache[query] = parsed
        return parsed

    def canonicalize_cached(self, parsed: SelectQuery) -> SelectQuery:
        """The canonical form of a parsed query, memoized per server.

        Canonicalization is pure, so the memo (keyed by the hashable
        parsed query itself) makes repeated servings of the same query
        skip the rename walk entirely; like :meth:`_parse`, the rename
        walk runs outside the lock and only the memo access is guarded.
        """
        with self._lock:
            canonical = self._canonical_cache.get(parsed)
        if canonical is None:
            canonical = canonicalize(parsed)
            with self._lock:
                self._canonical_cache[parsed] = canonical
        return canonical

    def sparql(
        self, query: str | SelectQuery, tenant: str | None = None, tracer=None
    ) -> ResultSet:
        """Serve one query for one tenant.

        Admission first, caches second: even a query the result cache could
        answer holds a (tenant-charged) governor slot while being served,
        so a tenant cannot dodge its cap by replaying cached queries.
        Raises :class:`~repro.errors.AdmissionRejectedError` when shed.
        """
        tenant = tenant if tenant is not None else self.default_tenant
        parsed = self._parse(query)
        try:
            with self.engine.governor.admit(tenant=tenant):
                return self._serve_admitted(parsed, tracer=tracer)
        except AdmissionRejectedError:
            with self._lock:
                self.stats.admission_rejections += 1
            raise

    def _serve_admitted(self, parsed: SelectQuery, tracer=None) -> ResultSet:
        """The cache-then-execute path, run while holding an admission slot."""
        with self._lock:
            self.stats.queries_served += 1
        canonical = self.canonicalize_cached(parsed)
        epoch = self.engine.plan_epoch
        names = tuple(variable.name for variable in parsed.projection)

        if self._result_cache.capacity:
            cached = self._result_cache.get((canonical, epoch))
            if cached is not None:
                with self._lock:
                    self.stats.result_cache_hits += 1
                # Positional rows are shared; only the variable names are
                # per-caller (isomorphic queries hit the same entry).
                return ResultSet(names, list(cached.rows), cached.report)
            with self._lock:
                self.stats.result_cache_misses += 1

        result = self._execute_with_plan_cache(parsed, canonical, epoch, tracer=tracer)
        if self._result_cache.capacity:
            self._result_cache.put(
                (canonical, epoch), ResultEntry(tuple(result.rows), result.report)
            )
        return result

    def _plan_for(self, canonical: SelectQuery, epoch: tuple) -> PlanEntry:
        """The (cached or freshly planned) entry for a canonical query.

        The plan-cache hot path, shared by single-query serving and batch
        execution: look up the stripped shape, PV401-verify a hit against
        the live engine (a stale lineage means evict-and-replan), and on a
        miss plan the full canonical query — modifiers included, so the
        static verifier sees exactly what a direct engine call would — and
        cache the (modifier-independent) frame under the stripped shape.
        """
        shape = plan_shape(canonical)
        entry = self._plan_cache.get((shape, epoch)) if self._plan_cache.capacity else None
        if entry is not None:
            # Defense in depth: the key already embeds the epoch, but a
            # cached plan is re-verified against the *live* engine right
            # before it executes.
            from ..analysis import verify_cached_plan

            if verify_cached_plan(entry.epoch, self.engine.plan_epoch):
                self._plan_cache.evict((shape, epoch))
                with self._lock:
                    self.stats.plan_cache_evictions += 1
                entry = None
        if entry is not None:
            with self._lock:
                self.stats.plan_cache_hits += 1
            return entry
        with self._lock:
            self.stats.plan_cache_misses += 1
        frame, description = self.engine.dataframe(canonical)
        entry = PlanEntry(frame, description, epoch)
        if self._plan_cache.capacity:
            lru_evicted = self._plan_cache.put((shape, epoch), entry)
            if lru_evicted:
                with self._lock:
                    self.stats.plan_cache_evictions += lru_evicted
        return entry

    def _execute_with_plan_cache(
        self, parsed: SelectQuery, canonical: SelectQuery, epoch: tuple, tracer=None
    ) -> ResultSet:
        """Execute via a cached plan when one exists, else plan and cache."""
        entry = self._plan_for(canonical, epoch)
        return self.engine.execute_prepared(
            parsed, entry.frame, entry.description, tracer=tracer, admitted=True
        )

    def explain(self, query: str | SelectQuery) -> str:
        """EXPLAIN through the server: cached plans are annotated as such.

        A plan-cache hit renders the cached join tree and frame with a
        ``[cached plan]`` marker (without perturbing LRU order or hit/miss
        counts); a miss falls through to the engine's own EXPLAIN.
        """
        parsed = self._parse(query)
        shape = plan_shape(self.canonicalize_cached(parsed))
        entry = self._plan_cache.peek((shape, self.engine.plan_epoch))
        if entry is None:
            return self.engine.explain(parsed)
        return (
            f"== Join Tree == [cached plan]\n{entry.description}\n"
            f"== Engine Plan == [cached plan]\n{entry.frame.explain()}"
        )

    # -- introspection -----------------------------------------------------------

    @property
    def plan_cache_len(self) -> int:
        """Live plan-cache entries (tests and the replay report)."""
        return len(self._plan_cache)

    @property
    def result_cache_len(self) -> int:
        """Live result-cache entries (tests and the replay report)."""
        return len(self._result_cache)

    def tenant_snapshot(self) -> dict[str, dict[str, int]]:
        """Per-tenant admission accounting from the engine's governor."""
        return self.engine.governor.tenant_snapshot()

    def metrics_snapshot(self) -> dict[str, int | float]:
        """Registry-named ``serve.*`` snapshot of :attr:`stats`, read
        under the server lock so no counter is observed mid-update."""
        from ..obs.metrics import snapshot_server_stats

        with self._lock:
            return snapshot_server_stats(self.stats)
