"""A small thread-safe LRU cache for the serve layer.

One implementation backs both server caches: the **plan cache** (canonical
plan shape → verified, ready-to-execute frame) and the **result cache**
(full canonical query → decoded rows). Both key on values that embed the
engine's :attr:`~repro.core.prost.ProstEngine.plan_epoch`, so a dataset
reload changes every key and stale entries can never hit — they simply age
out of the LRU order.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from ..errors import ValidationError

V = TypeVar("V")

#: Sentinel distinguishing "miss" from a cached ``None`` value.
_MISS = object()


class LruCache(Generic[V]):
    """Least-recently-used mapping with hit/miss/eviction accounting.

    Thread-safe: the serve layer calls into it from concurrent client
    threads. A ``capacity`` of ``0`` disables the cache entirely — every
    :meth:`get` misses and :meth:`put` is a no-op — which is how the
    replay benchmark measures its cold phase.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValidationError("cache capacity must be non-negative")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> V | None:
        """The cached value, bumped to most-recently-used; ``None`` on miss."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value  # type: ignore[return-value]

    def peek(self, key: Hashable) -> V | None:
        """The cached value without touching LRU order or hit/miss counts
        (EXPLAIN uses this so inspecting a plan never perturbs the cache)."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            return None if value is _MISS else value  # type: ignore[return-value]

    def put(self, key: Hashable, value: V) -> None:
        """Insert (or refresh) an entry, evicting the LRU one when full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = value

    def evict(self, key: Hashable) -> bool:
        """Drop one entry by key; returns whether it was present."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.evictions += 1
                return True
            return False

    def clear(self) -> None:
        """Drop every entry (hit/miss/eviction counters are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, ``0.0`` before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0
