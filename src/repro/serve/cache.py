"""A small thread-safe LRU cache for the serve layer.

One implementation backs both server caches: the **plan cache** (canonical
plan shape → verified, ready-to-execute frame) and the **result cache**
(full canonical query → decoded rows). Both key on values that embed the
engine's :attr:`~repro.core.prost.ProstEngine.plan_epoch`, so a dataset
reload changes every key and stale entries can never hit — they simply age
out of the LRU order.

Locking discipline: every mutable attribute is ``# guarded-by: _lock``
(the convention the :mod:`repro.analysis.concurrency` checker enforces),
including the counters — ``hit_rate`` and :meth:`snapshot` read several of
them together and must never observe a torn update.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from ..errors import ValidationError

V = TypeVar("V")

#: Sentinel distinguishing "miss" from a cached ``None`` value.
_MISS = object()


class LruCache(Generic[V]):
    """Least-recently-used mapping with hit/miss/eviction accounting.

    Thread-safe: the serve layer calls into it from concurrent client
    threads. A ``capacity`` of ``0`` disables the cache entirely — every
    :meth:`get` misses and :meth:`put` is a no-op — which is how the
    replay benchmark measures its cold phase.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValidationError("cache capacity must be non-negative")
        self.capacity = capacity
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self._entries: OrderedDict[Hashable, V] = OrderedDict()  # guarded-by: _lock

    def __len__(self) -> int:
        """Live entry count (taken under the lock: ``OrderedDict`` resizes
        are not atomic against concurrent writers)."""
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> V | None:
        """The cached value, bumped to most-recently-used; ``None`` on miss."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value  # type: ignore[return-value]

    def peek(self, key: Hashable) -> V | None:
        """The cached value without touching LRU order or hit/miss counts
        (EXPLAIN uses this so inspecting a plan never perturbs the cache)."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            return None if value is _MISS else value  # type: ignore[return-value]

    def put(self, key: Hashable, value: V) -> int:
        """Insert (or refresh) an entry, evicting the LRU one when full.

        Returns the number of LRU evictions this insert performed (0 or 1)
        so callers can attribute evictions to their own puts without a
        racy read-the-counter-before-and-after dance.
        """
        if self.capacity == 0:
            return 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return 0
            evicted = 0
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted = 1
            self._entries[key] = value
            return evicted

    def evict(self, key: Hashable) -> bool:
        """Drop one entry by key; returns whether it was present."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.evictions += 1
                return True
            return False

    def clear(self) -> None:
        """Drop every entry (hit/miss/eviction counters are kept)."""
        with self._lock:
            self._entries.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters (entries are kept) — the
        replay benchmark separates its warm-up pass from the measured
        window with this."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def snapshot(self) -> dict[str, int]:
        """One consistent view of the counters and size, taken atomically.

        The concurrent-hammering tests assert cross-counter invariants
        (``hits + misses == lookups``, ``size <= capacity``) against this;
        reading the attributes one by one could tear between updates.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
            }

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, ``0.0`` before the first lookup (the two
        counters are read under the lock, as one consistent pair)."""
        with self._lock:
            lookups = self.hits + self.misses
            return self.hits / lookups if lookups else 0.0
