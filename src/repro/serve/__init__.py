"""Multi-tenant query serving over one loaded engine.

The serving front door the ROADMAP's "millions of users" item asks for:
:class:`~repro.serve.server.QueryServer` wraps a
:class:`~repro.core.prost.ProstEngine` with tenant-labelled admission
(through the engine's :class:`~repro.governor.Governor`), an LRU **plan
cache** keyed on normalized query shape + dataset epoch (skipping
translate → optimize → plan-verify on a hit, guarded by the ``PV401``
lineage check), a **result cache** invalidated by dataset reloads, and a
batch executor that deduplicates identical queries and shares PT/VP table
scans across a burst. ``prost-repro serve`` drives an interactive session;
``prost-repro replay`` measures the whole stack with a closed-loop
workload replay (→ ``BENCH_serve.json``).

Environment knobs: ``REPRO_SERVE_PLAN_CACHE`` / ``REPRO_SERVE_RESULT_CACHE``
set default cache capacities (0 disables a cache); ``REPRO_SERVE_MODE=1``
makes the differential fuzz harness route PRoST engines through a server,
proving cached-plan and batched execution stay multiset-equal to cold
execution.
"""

from .batching import execute_batch, tables_scanned
from .cache import LruCache
from .normalize import canonicalize, plan_shape
from .replay import render_replay, run_replay, write_replay_json
from .server import (
    DEFAULT_PLAN_CACHE_SIZE,
    DEFAULT_RESULT_CACHE_SIZE,
    DEFAULT_TENANT,
    PLAN_CACHE_ENV,
    RESULT_CACHE_ENV,
    PlanEntry,
    QueryServer,
    ResultEntry,
    ServerStats,
    plan_cache_size_from_env,
    result_cache_size_from_env,
)

__all__ = [
    "DEFAULT_PLAN_CACHE_SIZE",
    "DEFAULT_RESULT_CACHE_SIZE",
    "DEFAULT_TENANT",
    "PLAN_CACHE_ENV",
    "RESULT_CACHE_ENV",
    "LruCache",
    "PlanEntry",
    "QueryServer",
    "ResultEntry",
    "ServerStats",
    "canonicalize",
    "execute_batch",
    "plan_cache_size_from_env",
    "plan_shape",
    "render_replay",
    "result_cache_size_from_env",
    "run_replay",
    "tables_scanned",
    "write_replay_json",
]
