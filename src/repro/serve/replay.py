"""Closed-loop workload replay: the serve layer's wall-clock benchmark.

Simulates a production serving window: N closed-loop clients (each sends
its next query only after receiving the previous answer) replaying a
WatDiv query mix against one :class:`~repro.serve.server.QueryServer`,
measured three ways:

- **cold** — both caches disabled: every request pays the full
  translate → optimize → plan-verify → execute pipeline;
- **warm_plan** — plan cache only, pre-warmed: requests skip planning but
  still execute (the honest measure of what plan caching alone buys);
- **warm_full** — plan + result caches, pre-warmed: repeated queries are
  answered without executing at all.

Per-phase output is p50/p95/p99/mean latency, throughput, and the cache
hit rates, written to ``BENCH_serve.json`` at the repository root by
``prost-repro replay`` so the serving-path trajectory is tracked PR over
PR. A shared engine is globally warmed (columnar transpositions,
dictionary memos) before any phase, so the phases differ *only* in cache
policy — cold is not penalized for running first.
"""

from __future__ import annotations

import json
import math
import random
import statistics
import threading
import time

from ..core.prost import ProstEngine
from ..watdiv.generator import generate_watdiv
from ..watdiv.queries import basic_query_set
from .batching import execute_batch
from .server import QueryServer, ServerStats

#: Phase name → (plan-cache capacity given a pool of size n, result-cache
#: capacity, pre-warm?). Capacities comfortably hold the whole pool, so
#: warm-phase hit rates measure caching, not eviction churn.
REPLAY_PHASES = {
    "cold": (lambda n: 0, lambda n: 0, False),
    "warm_plan": (lambda n: 2 * n, lambda n: 0, True),
    "warm_full": (lambda n: 2 * n, lambda n: 4 * n, True),
}


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


def _cache_report(cache) -> dict:
    """Hit/miss accounting of one LRU cache, for the JSON payload."""
    return {
        "hits": cache.hits,
        "misses": cache.misses,
        "evictions": cache.evictions,
        "entries": len(cache),
        "hit_rate": round(cache.hit_rate, 4),
    }


def _run_phase(
    server: QueryServer,
    pool,
    clients: int,
    requests_per_client: int,
    seed: int,
) -> dict:
    """One measured replay window over an already-configured server."""
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def client(client_id: int) -> None:
        rng = random.Random(seed * 7919 + client_id)
        local: list[float] = []
        try:
            for _ in range(requests_per_client):
                query = pool[rng.randrange(len(pool))]
                started = time.perf_counter()
                server.sparql(query.text, tenant=f"client-{client_id}")
                local.append(time.perf_counter() - started)
        except BaseException as exc:  # surfaced after join, not swallowed
            with lock:
                errors.append(exc)
            return
        with lock:
            latencies.extend(local)

    threads = [
        threading.Thread(target=client, args=(client_id,), name=f"replay-{client_id}")
        for client_id in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total_sec = time.perf_counter() - started
    if errors:
        raise errors[0]
    return {
        "requests": len(latencies),
        "total_sec": round(total_sec, 4),
        "throughput_qps": round(len(latencies) / total_sec, 2) if total_sec else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(percentile(latencies, 0.95) * 1000, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
        "mean_ms": round(statistics.fmean(latencies) * 1000, 3),
        "plan_cache": _cache_report(server._plan_cache),
        "result_cache": _cache_report(server._result_cache),
        "stats": server.stats.to_dict(),
    }


def _batch_report(engine: ProstEngine, pool, repeats: int = 3) -> dict:
    """A demonstration batch: every pool query × ``repeats``, one batch."""
    server = QueryServer(engine, plan_cache_size=4 * len(pool), result_cache_size=0)
    texts = [query.text for query in pool] * repeats
    started = time.perf_counter()
    results = execute_batch(server, texts)
    batch_sec = time.perf_counter() - started
    return {
        "queries": len(texts),
        "distinct": len(pool),
        "batch_sec": round(batch_sec, 4),
        "rows_returned": sum(len(result) for result in results),
        "batched_queries": server.stats.batched_queries,
        "shared_scans": server.stats.shared_scans,
    }


def run_replay(
    scale: int = 400,
    seed: int = 7,
    clients: int = 4,
    requests_per_client: int = 25,
    groups: tuple[str, ...] = ("C", "F", "S", "L"),
) -> dict:
    """The ``prost-repro replay`` payload (see module docstring)."""
    dataset = generate_watdiv(scale=scale, seed=seed)
    pool = [query for query in basic_query_set(dataset) if query.group in groups]
    engine = ProstEngine()
    started = time.perf_counter()
    engine.load(dataset.graph)
    load_sec = time.perf_counter() - started

    # Global engine warm-up: every pool query once, directly on the engine
    # (no serve caches involved), so columnar transpositions and dictionary
    # memos are hot before *any* phase — including cold — is measured.
    for query in pool:
        engine.sparql(query.text)

    phases: dict[str, dict] = {}
    for name, (plan_capacity, result_capacity, warm) in REPLAY_PHASES.items():
        server = QueryServer(
            engine,
            plan_cache_size=plan_capacity(len(pool)),
            result_cache_size=result_capacity(len(pool)),
        )
        if warm:
            for query in pool:
                server.sparql(query.text, tenant="warmer")
            # Measured counters and hit rates describe the replay window
            # only, not the warming pass.
            server.stats = ServerStats()
            for cache in (server._plan_cache, server._result_cache):
                cache.reset_counters()
        phases[name] = _run_phase(server, pool, clients, requests_per_client, seed)

    cold_p50 = phases["cold"]["p50_ms"]
    warm_plan_p50 = phases["warm_plan"]["p50_ms"]
    warm_full_p50 = phases["warm_full"]["p50_ms"]
    return {
        "benchmark": "serve-replay",
        "description": (
            "Closed-loop multi-tenant replay of the WatDiv mix through "
            "repro.serve.QueryServer: cold pipeline vs plan cache vs "
            "plan+result caches"
        ),
        "scale": scale,
        "seed": seed,
        "triples": len(dataset.graph),
        "load_sec": round(load_sec, 4),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "query_pool": [query.name for query in pool],
        "phases": phases,
        "p50_ms": {name: phase["p50_ms"] for name, phase in phases.items()},
        "p95_ms": {name: phase["p95_ms"] for name, phase in phases.items()},
        "p99_ms": {name: phase["p99_ms"] for name, phase in phases.items()},
        "plan_cache_hit_rate": phases["warm_plan"]["plan_cache"]["hit_rate"],
        "result_cache_hit_rate": phases["warm_full"]["result_cache"]["hit_rate"],
        "warm_plan_speedup_p50": (
            round(cold_p50 / warm_plan_p50, 2) if warm_plan_p50 else float("inf")
        ),
        "warm_full_speedup_p50": (
            round(cold_p50 / warm_full_p50, 2) if warm_full_p50 else float("inf")
        ),
        "batch": _batch_report(engine, pool),
    }


def write_replay_json(payload: dict, path: str) -> None:
    """Write the replay payload as pretty JSON (trailing newline included)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def render_replay(payload: dict) -> str:
    """A terminal summary of a replay payload."""
    lines = [
        f"serve replay: scale={payload['scale']} "
        f"({payload['triples']:,} triples), {payload['clients']} clients × "
        f"{payload['requests_per_client']} requests, "
        f"{len(payload['query_pool'])} distinct queries",
    ]
    for name, phase in payload["phases"].items():
        lines.append(
            f"  {name:9} p50 {phase['p50_ms']:8.3f}ms  "
            f"p95 {phase['p95_ms']:8.3f}ms  p99 {phase['p99_ms']:8.3f}ms  "
            f"{phase['throughput_qps']:7.1f} q/s"
        )
    lines.append(
        f"  plan-cache hit rate {payload['plan_cache_hit_rate']:.1%}, "
        f"result-cache hit rate {payload['result_cache_hit_rate']:.1%}"
    )
    lines.append(
        f"  p50 speedup: cold → warm_plan {payload['warm_plan_speedup_p50']:.2f}x, "
        f"cold → warm_full {payload['warm_full_speedup_p50']:.2f}x"
    )
    batch = payload["batch"]
    lines.append(
        f"  batch: {batch['queries']} queries ({batch['distinct']} distinct) "
        f"in {batch['batch_sec']:.3f}s, {batch['batched_queries']} deduplicated, "
        f"{batch['shared_scans']} shared scans"
    )
    return "\n".join(lines)
