"""Query-shape normalization: the serve layer's cache keys.

Planning (translate → optimize → plan-verify) depends on a query's
*structure* — which positions are variables, which hold constants, how the
patterns connect — but never on what the variables are called: the engine
labels plan columns with the variable names, and result finalization
addresses those columns purely by projection *position*. Two queries that
differ only by an injective variable renaming therefore produce the same
join tree, the same verified engine plan, and positionally identical result
rows.

:func:`canonicalize` exploits that: it renames every variable to ``v0``,
``v1``, … in a fixed structural traversal order, so isomorphic queries map
to the *same* canonical :class:`~repro.sparql.algebra.SelectQuery` — a
hashable value (all algebra nodes are frozen dataclasses) the
:class:`~repro.serve.server.QueryServer` uses directly as its cache key.
:func:`plan_shape` further strips the solution modifiers (ORDER BY, LIMIT,
OFFSET) that the engine applies *after* plan execution, so queries
differing only in modifiers share one cached plan.
"""

from __future__ import annotations

from dataclasses import replace

from ..sparql.algebra import (
    And,
    Comparison,
    CountAggregate,
    FilterExpression,
    Or,
    OrderCondition,
    PatternTerm,
    Regex,
    SelectQuery,
    TriplePattern,
    Variable,
)


class _Renamer:
    """Injective variable → canonical-variable mapping, built on demand.

    Assignment order is the traversal order of :func:`canonicalize`, so the
    mapping is a pure function of query structure: isomorphic queries
    assign the same canonical name at the same structural position.
    """

    def __init__(self) -> None:
        self._mapping: dict[Variable, Variable] = {}

    def variable(self, variable: Variable) -> Variable:
        """The canonical variable for an original one (assigning if new)."""
        found = self._mapping.get(variable)
        if found is None:
            found = Variable(f"v{len(self._mapping)}")
            self._mapping[variable] = found
        return found

    def term(self, term: PatternTerm) -> PatternTerm:
        """Rename a pattern slot; concrete terms pass through unchanged."""
        if isinstance(term, Variable):
            return self.variable(term)
        return term

    def pattern(self, pattern: TriplePattern) -> TriplePattern:
        """Rename all three slots of a triple pattern."""
        return TriplePattern(
            self.term(pattern.subject),
            self.term(pattern.predicate),
            self.term(pattern.object),
        )

    def group(self, group: tuple[TriplePattern, ...]) -> tuple[TriplePattern, ...]:
        """Rename one pattern group (an OPTIONAL block or UNION branch)."""
        return tuple(self.pattern(pattern) for pattern in group)

    def filter(self, expression: FilterExpression) -> FilterExpression:
        """Rename every variable inside a filter expression tree."""
        if isinstance(expression, Comparison):
            return Comparison(
                expression.op, self.term(expression.left), self.term(expression.right)
            )
        if isinstance(expression, Regex):
            return Regex(self.variable(expression.variable), expression.pattern)
        if isinstance(expression, And):
            return And(tuple(self.filter(operand) for operand in expression.operands))
        assert isinstance(expression, Or)
        return Or(tuple(self.filter(operand) for operand in expression.operands))


def canonicalize(query: SelectQuery) -> SelectQuery:
    """The canonical form of a query: variables renamed structurally.

    The traversal assigns canonical names pattern-first (required BGP, then
    OPTIONAL groups, UNION branches, filters, grouping, aggregates, ORDER
    BY, and finally the explicit projection), matching the order the
    planner itself discovers variables. Executing the canonical query
    yields rows positionally identical to the original's — only the
    :class:`~repro.core.results.ResultSet` variable *names* differ, and the
    server reapplies the original names on a cache hit.
    """
    renamer = _Renamer()
    patterns = renamer.group(query.patterns)
    optional_groups = tuple(renamer.group(group) for group in query.optional_groups)
    union_branches = tuple(renamer.group(branch) for branch in query.union_branches)
    filters = tuple(renamer.filter(expression) for expression in query.filters)
    group_by = tuple(renamer.variable(variable) for variable in query.group_by)
    aggregates = tuple(
        CountAggregate(
            alias=renamer.variable(aggregate.alias),
            variable=(
                renamer.variable(aggregate.variable)
                if aggregate.variable is not None
                else None
            ),
            distinct=aggregate.distinct,
        )
        for aggregate in query.aggregates
    )
    order_by = tuple(
        OrderCondition(renamer.variable(condition.variable), condition.descending)
        for condition in query.order_by
    )
    variables = tuple(renamer.variable(variable) for variable in query.variables)
    return SelectQuery(
        variables=variables,
        patterns=patterns,
        filters=filters,
        form=query.form,
        optional_groups=optional_groups,
        union_branches=union_branches,
        aggregates=aggregates,
        group_by=group_by,
        distinct=query.distinct,
        order_by=order_by,
        limit=query.limit,
        offset=query.offset,
    )


def plan_shape(canonical: SelectQuery) -> SelectQuery:
    """A canonical query reduced to what the *plan* depends on.

    ORDER BY, LIMIT, and OFFSET are applied during result finalization,
    after the planned frame has executed — they never reach the engine
    plan — so stripping them lets queries that differ only in modifiers
    share one plan-cache entry. Everything else (patterns, filters,
    DISTINCT, aggregation, projection order) shapes the frame and stays.
    """
    return replace(canonical, order_by=(), limit=None, offset=None)
