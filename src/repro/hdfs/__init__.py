"""Simulated HDFS: blocks, placement, and a namenode-style filesystem."""

from .blocks import DEFAULT_BLOCK_SIZE, Block, plan_placement, split_into_blocks
from .filesystem import HdfsFile, SimulatedHdfs

__all__ = [
    "Block",
    "DEFAULT_BLOCK_SIZE",
    "HdfsFile",
    "SimulatedHdfs",
    "plan_placement",
    "split_into_blocks",
]
