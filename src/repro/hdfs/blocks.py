"""Block model for the simulated HDFS.

Files are split into fixed-size blocks; every block is replicated onto a set
of datanodes. Placement follows HDFS's default policy shape: the first replica
goes to a deterministic "local" node, the remaining replicas go to distinct
other nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError

#: HDFS default block size (128 MiB). The simulated cluster typically uses a
#: much smaller block size so laptop-scale datasets still span several blocks.
DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024


@dataclass(frozen=True, slots=True)
class Block:
    """One file block.

    Attributes:
        block_id: globally unique identifier assigned by the namenode.
        size: payload size in bytes (the final block of a file may be short).
        replicas: datanode ids that hold a copy, primary first.
    """

    block_id: int
    size: int
    replicas: tuple[int, ...]

    @property
    def primary_node(self) -> int:
        """The datanode holding the primary (first-written) replica."""
        return self.replicas[0]


def plan_placement(
    block_id: int, num_datanodes: int, replication: int, preferred_node: int | None = None
) -> tuple[int, ...]:
    """Choose replica nodes for one block.

    Deterministic: the primary node is ``preferred_node`` when given (data
    locality for a writer pinned to a node), otherwise derived from the block
    id; further replicas are the following nodes modulo the cluster size.

    Raises:
        ValueError: when the cluster cannot satisfy the replication factor.
    """
    if num_datanodes <= 0:
        raise ValidationError("cluster needs at least one datanode")
    effective_replication = min(replication, num_datanodes)
    if effective_replication <= 0:
        raise ValidationError("replication factor must be positive")
    primary = preferred_node if preferred_node is not None else block_id % num_datanodes
    primary %= num_datanodes
    return tuple((primary + offset) % num_datanodes for offset in range(effective_replication))


def split_into_blocks(payload_size: int, block_size: int) -> list[int]:
    """Return block payload sizes for a file of ``payload_size`` bytes.

    A zero-byte file still occupies one (empty) block so it has a location.
    """
    if block_size <= 0:
        raise ValidationError("block size must be positive")
    if payload_size < 0:
        raise ValidationError("payload size must be non-negative")
    if payload_size == 0:
        return [0]
    sizes = [block_size] * (payload_size // block_size)
    remainder = payload_size % block_size
    if remainder:
        sizes.append(remainder)
    return sizes
