"""Simulated HDFS: a namenode with block-placement over virtual datanodes.

The filesystem stores real bytes (so the columnar layer round-trips through
it), tracks block locations (so the engine can schedule locality-aware scans),
and accounts storage per node (so Table 1's "Size" column can be measured).
Paths are slash-separated strings; directories are implicit, as in HDFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import (
    BlockUnavailableError,
    FileAlreadyExistsError,
    FileNotFoundInHdfsError,
    StorageError,
    ValidationError,
)
from .blocks import DEFAULT_BLOCK_SIZE, Block, plan_placement, split_into_blocks


@dataclass
class HdfsFile:
    """Namenode metadata plus payload for one file."""

    path: str
    data: bytes
    blocks: list[Block] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.data)


def _normalize(path: str) -> str:
    if not path or path.endswith("/"):
        raise ValidationError(f"invalid HDFS file path: {path!r}")
    return "/" + path.strip("/")


class SimulatedHdfs:
    """A single-namespace simulated HDFS cluster.

    Args:
        num_datanodes: number of storage nodes in the cluster.
        block_size: file split granularity in bytes.
        replication: copies kept per block (capped at ``num_datanodes``).
    """

    def __init__(
        self,
        num_datanodes: int = 9,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 3,
    ):
        if num_datanodes <= 0:
            raise ValidationError("num_datanodes must be positive")
        if replication <= 0:
            raise ValidationError("replication must be positive")
        self.num_datanodes = num_datanodes
        self.block_size = block_size
        self.replication = min(replication, num_datanodes)
        self._files: dict[str, HdfsFile] = {}
        self._failed: set[int] = set()
        self._next_block_id = 0
        #: Block reads served by a non-primary replica because the primary's
        #: datanode was down (the reader's failover path).
        self.failover_reads = 0

    # -- writing -------------------------------------------------------------

    def write(
        self, path: str, data: bytes, preferred_node: int | None = None, overwrite: bool = False
    ) -> HdfsFile:
        """Create a file, splitting the payload into placed, replicated blocks.

        Args:
            path: target path; parents are implicit.
            data: full payload.
            preferred_node: pin the primary replica of every block to a node
                (models a writer task running on that node).
            overwrite: replace an existing file instead of failing.

        Raises:
            FileAlreadyExistsError: path exists and ``overwrite`` is false.
        """
        path = _normalize(path)
        if path in self._files and not overwrite:
            raise FileAlreadyExistsError(path)
        blocks = []
        for size in split_into_blocks(len(data), self.block_size):
            replicas = plan_placement(
                self._next_block_id, self.num_datanodes, self.replication, preferred_node
            )
            if self._failed:
                live = [n for n in range(self.num_datanodes) if n not in self._failed]
                if not live:
                    raise StorageError("no live datanodes left to place blocks on")
                replicas = tuple(
                    replica if replica not in self._failed else live[replica % len(live)]
                    for replica in replicas
                )
                replicas = tuple(dict.fromkeys(replicas))  # dedupe, keep order
            blocks.append(Block(self._next_block_id, size, replicas))
            self._next_block_id += 1
        file = HdfsFile(path=path, data=data, blocks=blocks)
        self._files[path] = file
        return file

    def delete(self, path: str) -> None:
        """Remove a file.

        Raises:
            FileNotFoundInHdfsError: when the path does not exist.
        """
        path = _normalize(path)
        if path not in self._files:
            raise FileNotFoundInHdfsError(path)
        del self._files[path]

    def delete_prefix(self, prefix: str) -> int:
        """Remove every file under a directory prefix; return the count."""
        prefix = "/" + prefix.strip("/")
        doomed = [p for p in self._files if p == prefix or p.startswith(prefix + "/")]
        for path in doomed:
            del self._files[path]
        return len(doomed)

    # -- reading -------------------------------------------------------------

    def read(self, path: str) -> bytes:
        """Return a file's full payload, reading each block from a live replica.

        Replica selection is the HDFS client's failover order: the primary
        replica first, then the remaining replicas in placement order. A
        block is only unreadable when *every* replica sits on a failed
        datanode.

        Raises:
            FileNotFoundInHdfsError: when the path does not exist.
            BlockUnavailableError: when all replicas of some block are on
                failed datanodes.
        """
        file = self._require(path)
        if not self._failed:
            return file.data
        chunks: list[bytes] = []
        offset = 0
        for block in file.blocks:
            replica = self._live_replica(block)
            if replica is None:
                raise BlockUnavailableError(
                    f"block {block.block_id} of {file.path}: all replicas "
                    f"{list(block.replicas)} are on failed datanodes"
                )
            if replica != block.primary_node:
                self.failover_reads += 1
            chunks.append(file.data[offset : offset + block.size])
            offset += block.size
        return b"".join(chunks)

    def _live_replica(self, block: Block) -> int | None:
        """First in-service replica of a block (primary first), or ``None``."""
        for node in block.replicas:
            if node not in self._failed:
                return node
        return None

    def exists(self, path: str) -> bool:
        try:
            return _normalize(path) in self._files
        except ValueError:
            return False

    def file_info(self, path: str) -> HdfsFile:
        """Namenode metadata for one file (blocks, size, locations)."""
        return self._require(path)

    def list_files(self, prefix: str = "/") -> list[str]:
        """All file paths under a directory prefix, sorted."""
        prefix = "/" + prefix.strip("/")
        if prefix == "/":
            return sorted(self._files)
        return sorted(
            p for p in self._files if p == prefix or p.startswith(prefix + "/")
        )

    def block_locations(self, path: str) -> list[tuple[int, ...]]:
        """Replica node-id tuples for each block of a file, in file order."""
        return [block.replicas for block in self._require(path).blocks]

    # -- accounting ------------------------------------------------------------

    def logical_size(self, prefix: str = "/") -> int:
        """Bytes stored under a prefix, *before* replication (what ``hdfs dfs
        -du`` reports and what the paper's Table 1 sizes mean)."""
        return sum(self._files[p].size for p in self.list_files(prefix))

    def physical_size(self, prefix: str = "/") -> int:
        """Bytes stored under a prefix including all replicas."""
        return sum(
            block.size * len(block.replicas)
            for path in self.list_files(prefix)
            for block in self._files[path].blocks
        )

    def node_usage(self) -> dict[int, int]:
        """Bytes held per datanode (replicas counted where they live)."""
        usage = {node: 0 for node in range(self.num_datanodes)}
        for file in self._files.values():
            for block in file.blocks:
                for node in block.replicas:
                    usage[node] += block.size
        return usage

    # -- failure handling -------------------------------------------------------

    def fail_node(self, node: int, repair: bool = True) -> int:
        """Take a datanode out of service, optionally re-replicating its blocks.

        With ``repair`` (the default), as HDFS's namenode does on a datanode
        death: every block that had a replica on the failed node gets a new
        replica on a surviving node (copied from a surviving replica),
        keeping the replication factor whenever enough nodes remain. Returns
        the number of blocks repaired.

        With ``repair=False`` the node just goes dark — replica lists keep
        their dead entries and readers fail over to surviving replicas at
        :meth:`read` time (the window between a crash and the namenode's
        re-replication pass). Returns 0.

        Raises:
            ValueError: for an unknown node id.
            BlockUnavailableError: in repair mode, when some block had its
                *only* replica on the node (data loss — with replication ≥ 2
                this cannot happen).
        """
        if not 0 <= node < self.num_datanodes:
            raise ValidationError(f"unknown datanode {node}")
        if not repair:
            self._failed.add(node)
            return 0
        repaired = 0
        survivors = [n for n in range(self.num_datanodes) if n != node and n not in self._failed]
        self._failed.add(node)
        for file in self._files.values():
            for index, block in enumerate(file.blocks):
                if node not in block.replicas:
                    continue
                remaining = tuple(r for r in block.replicas if r != node)
                if not remaining:
                    raise BlockUnavailableError(
                        f"block {block.block_id} of {file.path} lost its last replica"
                    )
                candidates = [n for n in survivors if n not in remaining]
                if candidates:
                    # Deterministic choice: the replacement follows the
                    # surviving primary around the ring.
                    replacement = min(
                        candidates, key=lambda n: (n - remaining[0]) % self.num_datanodes
                    )
                    remaining = remaining + (replacement,)
                file.blocks[index] = Block(block.block_id, block.size, remaining)
                repaired += 1
        return repaired

    @property
    def failed_nodes(self) -> frozenset[int]:
        """Datanodes currently out of service."""
        return frozenset(self._failed)

    @property
    def live_nodes(self) -> int:
        """Number of in-service datanodes."""
        return self.num_datanodes - len(self._failed)

    def _require(self, path: str) -> HdfsFile:
        path = _normalize(path)
        file = self._files.get(path)
        if file is None:
            raise FileNotFoundInHdfsError(path)
        return file

    def __repr__(self) -> str:
        return (
            f"SimulatedHdfs({self.num_datanodes} nodes, "
            f"{len(self._files)} files, {self.logical_size()} bytes)"
        )
