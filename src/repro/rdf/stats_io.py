"""Persistence for graph statistics.

PRoST computes its statistics once, during loading, and stores them next to
the data so later query sessions skip the pass over the graph. This module
serializes :class:`~repro.rdf.stats.GraphStatistics` to JSON and back,
including the optional characteristic sets.
"""

from __future__ import annotations

import json

from ..hdfs.filesystem import SimulatedHdfs
from .stats import GraphStatistics, PredicateStatistics
from ..errors import ValidationError

#: Current serialization format version.
FORMAT_VERSION = 1


def statistics_to_json(statistics: GraphStatistics) -> str:
    """Serialize statistics to a JSON document."""
    payload = {
        "version": FORMAT_VERSION,
        "total_triples": statistics.total_triples,
        "total_subjects": statistics.total_subjects,
        "predicates": {
            iri: {
                "triple_count": stats.triple_count,
                "distinct_subjects": stats.distinct_subjects,
                "distinct_objects": stats.distinct_objects,
                "is_multivalued": stats.is_multivalued,
            }
            for iri, stats in sorted(statistics.predicates.items())
        },
    }
    if statistics.characteristic_sets is not None:
        payload["characteristic_sets"] = [
            {"predicates": sorted(char_set), "count": count}
            for char_set, count in sorted(
                statistics.characteristic_sets.items(),
                key=lambda item: sorted(item[0]),
            )
        ]
    return json.dumps(payload, indent=2, sort_keys=True)


def statistics_from_json(text: str) -> GraphStatistics:
    """Parse statistics serialized by :func:`statistics_to_json`.

    Raises:
        ValueError: for unknown format versions or malformed documents.
    """
    payload = json.loads(text)
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValidationError(f"unsupported statistics format version: {version!r}")
    predicates = {
        iri: PredicateStatistics(
            triple_count=entry["triple_count"],
            distinct_subjects=entry["distinct_subjects"],
            distinct_objects=entry["distinct_objects"],
            is_multivalued=entry["is_multivalued"],
        )
        for iri, entry in payload["predicates"].items()
    }
    characteristic_sets = None
    if "characteristic_sets" in payload:
        characteristic_sets = {
            frozenset(entry["predicates"]): entry["count"]
            for entry in payload["characteristic_sets"]
        }
    return GraphStatistics(
        total_triples=payload["total_triples"],
        total_subjects=payload["total_subjects"],
        predicates=predicates,
        characteristic_sets=characteristic_sets,
    )


def save_statistics(hdfs: SimulatedHdfs, path: str, statistics: GraphStatistics) -> None:
    """Write statistics to a (simulated) HDFS path, replacing any old file."""
    hdfs.write(path, statistics_to_json(statistics).encode("utf-8"), overwrite=True)


def load_statistics(hdfs: SimulatedHdfs, path: str) -> GraphStatistics:
    """Read statistics saved with :func:`save_statistics`."""
    return statistics_from_json(hdfs.read(path).decode("utf-8"))
