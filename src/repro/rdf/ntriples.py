"""N-Triples parser and serializer.

Implements the line-based N-Triples grammar (W3C RDF 1.1 N-Triples) for the
subset used by WatDiv and typical RDF dumps: IRIs, blank nodes, and literals
with optional language tags or datatypes. Comments (``# ...``) and blank lines
are skipped.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..errors import RdfSyntaxError
from .terms import IRI, BlankNode, Literal, Term, Triple, unescape_literal

_IRI_RE = re.compile(r"<([^<>\"{}|^`\\\x00-\x20]*)>")
_BNODE_RE = re.compile(r"_:([A-Za-z0-9][A-Za-z0-9_.-]*)")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"'  # lexical form with escapes
    r"(?:\^\^<([^<>\s]*)>|@([A-Za-z]+(?:-[A-Za-z0-9]+)*))?"  # datatype or lang
)


class _LineParser:
    """Cursor-based parser for one N-Triples line."""

    def __init__(self, line: str, line_number: int | None):
        self.line = line
        self.pos = 0
        self.line_number = line_number

    def error(self, message: str) -> RdfSyntaxError:
        return RdfSyntaxError(f"{message} (at column {self.pos})", self.line_number)

    def skip_whitespace(self) -> None:
        while self.pos < len(self.line) and self.line[self.pos] in " \t":
            self.pos += 1

    def parse_term(self) -> Term:
        self.skip_whitespace()
        if self.pos >= len(self.line):
            raise self.error("unexpected end of line, expected a term")
        ch = self.line[self.pos]
        if ch == "<":
            match = _IRI_RE.match(self.line, self.pos)
            if not match:
                raise self.error("malformed IRI")
            self.pos = match.end()
            return IRI(match.group(1))
        if ch == "_":
            match = _BNODE_RE.match(self.line, self.pos)
            if not match:
                raise self.error("malformed blank node label")
            self.pos = match.end()
            return BlankNode(match.group(1))
        if ch == '"':
            match = _LITERAL_RE.match(self.line, self.pos)
            if not match:
                raise self.error("malformed literal")
            self.pos = match.end()
            lexical_raw, datatype, language = match.groups()
            try:
                lexical = unescape_literal(lexical_raw)
            except ValueError as exc:
                raise self.error(str(exc)) from exc
            return Literal(lexical, datatype=datatype, language=language)
        raise self.error(f"unexpected character {ch!r}")

    def expect_dot(self) -> None:
        self.skip_whitespace()
        if self.pos >= len(self.line) or self.line[self.pos] != ".":
            raise self.error("expected '.' terminating the triple")
        self.pos += 1
        self.skip_whitespace()
        rest = self.line[self.pos :]
        if rest and not rest.startswith("#"):
            raise self.error(f"trailing content after '.': {rest!r}")


def parse_term(text: str) -> Term:
    """Parse a single N-Triples term (``<iri>``, ``_:b0``, or a literal).

    Raises:
        RdfSyntaxError: when ``text`` is not exactly one term.
    """
    parser = _LineParser(text.strip(), None)
    term = parser.parse_term()
    parser.skip_whitespace()
    if parser.pos != len(parser.line):
        raise parser.error("trailing content after term")
    return term


def parse_line(line: str, line_number: int | None = None) -> Triple | None:
    """Parse one N-Triples line; return ``None`` for blank/comment lines.

    Raises:
        RdfSyntaxError: when the line is not a valid triple.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parser = _LineParser(stripped, line_number)
    subject = parser.parse_term()
    if isinstance(subject, Literal):
        raise parser.error("literal is not allowed in the subject position")
    predicate = parser.parse_term()
    if not isinstance(predicate, IRI):
        raise parser.error("predicate must be an IRI")
    obj = parser.parse_term()
    parser.expect_dot()
    return Triple(subject, predicate, obj)


def parse_ntriples(lines: Iterable[str]) -> Iterator[Triple]:
    """Parse an iterable of N-Triples lines, yielding :class:`Triple` objects."""
    for number, line in enumerate(lines, start=1):
        triple = parse_line(line, line_number=number)
        if triple is not None:
            yield triple


def parse_ntriples_string(text: str) -> list[Triple]:
    """Parse a whole N-Triples document held in a string."""
    return list(parse_ntriples(text.splitlines()))


def parse_ntriples_file(path: str | Path) -> Iterator[Triple]:
    """Stream triples out of an N-Triples file on the local filesystem."""
    with open(path, encoding="utf-8") as handle:
        yield from parse_ntriples(handle)


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to an N-Triples document (one statement per line)."""
    return "".join(triple.n3() + "\n" for triple in triples)


def write_ntriples_file(triples: Iterable[Triple], path: str | Path) -> int:
    """Write triples to ``path`` in N-Triples format; return the triple count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(triple.n3() + "\n")
            count += 1
    return count
