"""Reference SPARQL evaluator over an in-memory graph.

A deliberately simple backtracking BGP matcher used as the *correctness
oracle* in the test suite: every store in this repository (PRoST in both
strategies, SPARQLGX, S2RDF, and Rya) must return exactly the same solutions
as this evaluator on the same graph. It is index-assisted but makes no claim
to efficiency.
"""

from __future__ import annotations

import re
from collections import defaultdict
from collections.abc import Iterator

from ..sparql.algebra import (
    And,
    Comparison,
    FilterExpression,
    Or,
    PatternTerm,
    Regex,
    SelectQuery,
    TriplePattern,
    Variable,
)
from .graph import Graph
from .terms import Literal, Term, Triple, term_sort_key

#: One solution: a mapping from variable name to the bound RDF term.
Binding = dict[str, Term]


class ReferenceEvaluator:
    """Evaluates :class:`SelectQuery` objects against a :class:`Graph`."""

    def __init__(self, graph: Graph):
        self._triples = list(graph)
        # Positional indexes: (s,), (p,), (o,), (s,p), (p,o), (s,o), (s,p,o).
        self._index: dict[tuple[int, ...], dict[tuple, list[Triple]]] = {}
        for positions in ((0,), (1,), (2,), (0, 1), (1, 2), (0, 2), (0, 1, 2)):
            bucket: dict[tuple, list[Triple]] = defaultdict(list)
            for triple in self._triples:
                parts = (triple.subject, triple.predicate, triple.object)
                bucket[tuple(parts[i] for i in positions)].append(triple)
            self._index[positions] = bucket

    # -- public API ----------------------------------------------------------

    def evaluate(self, query: SelectQuery) -> list[tuple[Term | None, ...]]:
        """Return result rows as tuples ordered by the query projection.

        The rows are post-processed exactly as SPARQL prescribes: filters,
        projection, DISTINCT, ORDER BY, then OFFSET/LIMIT. Without ORDER BY
        the rows are sorted deterministically so comparisons are stable.
        """
        if query.is_union:
            matched: list[Binding] = []
            for branch in query.union_branches:
                matched.extend(self._match_patterns(list(branch), {}))
        else:
            matched = list(self._match_patterns(list(query.patterns), {}))
            for group in query.optional_groups:
                matched = self._apply_optional(matched, list(group))
        bindings = [
            binding
            for binding in matched
            if all(evaluate_filter(f, binding) for f in query.filters)
        ]
        projection = query.projection
        if query.is_aggregate:
            rows = _aggregate_rows(query, bindings)
        else:
            rows = [
                tuple(binding.get(var.name) for var in projection)
                for binding in bindings
            ]
        if query.distinct:
            unique: dict[tuple, tuple] = {}
            for row in rows:
                unique.setdefault(_row_key(row), row)
            rows = list(unique.values())
        if query.order_by:
            for condition in reversed(query.order_by):
                position = projection.index(condition.variable)
                rows.sort(
                    key=lambda row: _term_key(row[position]),
                    reverse=condition.descending,
                )
        else:
            rows.sort(key=_row_key)
        if query.offset:
            rows = rows[query.offset :]
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows

    def count(self, query: SelectQuery) -> int:
        """Number of solutions (after DISTINCT/LIMIT processing)."""
        return len(self.evaluate(query))

    def ask(self, query: SelectQuery) -> bool:
        """Whether the query has at least one solution."""
        return bool(self.evaluate(query))

    # -- matching ------------------------------------------------------------

    def _apply_optional(
        self, bindings: list[Binding], patterns: list[TriplePattern]
    ) -> list[Binding]:
        """SPARQL OPTIONAL (left join): extend each binding with every
        compatible match of the optional group, or keep it unextended when
        the group has no compatible match."""
        extended: list[Binding] = []
        for binding in bindings:
            matches = list(self._match_patterns(patterns, binding))
            if matches:
                extended.extend(matches)
            else:
                extended.append(binding)
        return extended

    def _match_patterns(
        self, patterns: list[TriplePattern], binding: Binding
    ) -> Iterator[Binding]:
        if not patterns:
            yield binding
            return
        pattern, rest = patterns[0], patterns[1:]
        for triple in self._candidates(pattern, binding):
            extended = _try_bind(pattern, triple, binding)
            if extended is not None:
                yield from self._match_patterns(rest, extended)

    def _candidates(self, pattern: TriplePattern, binding: Binding) -> list[Triple]:
        """Fetch candidate triples using the most specific available index."""
        slots = (pattern.subject, pattern.predicate, pattern.object)
        bound_positions: list[int] = []
        bound_values: list[Term] = []
        for position, slot in enumerate(slots):
            value = _resolve(slot, binding)
            if value is not None:
                bound_positions.append(position)
                bound_values.append(value)
        if not bound_positions:
            return self._triples
        key_positions = tuple(bound_positions)
        return self._index[key_positions].get(tuple(bound_values), [])


def _resolve(slot: PatternTerm, binding: Binding) -> Term | None:
    """A concrete term for ``slot``: itself, its binding, or None if free."""
    if isinstance(slot, Variable):
        return binding.get(slot.name)
    return slot


def _try_bind(pattern: TriplePattern, triple: Triple, binding: Binding) -> Binding | None:
    """Unify ``pattern`` with ``triple`` under ``binding``; None on clash."""
    result = dict(binding)
    for slot, value in zip(
        (pattern.subject, pattern.predicate, pattern.object),
        (triple.subject, triple.predicate, triple.object),
    ):
        if isinstance(slot, Variable):
            existing = result.get(slot.name)
            if existing is None:
                result[slot.name] = value
            elif existing != value:
                return None
        elif slot != value:
            return None
    return result


# -- aggregation ----------------------------------------------------------------


def _aggregate_rows(query: SelectQuery, bindings: list[Binding]) -> list[tuple]:
    """SPARQL 1.1 COUNT/GROUP BY over matched bindings.

    Rows are ``group_by`` terms (in ``query.variables`` order) followed by
    one integer literal per aggregate. Without GROUP BY, a single group
    holds all solutions (even zero of them).
    """
    from .terms import Literal, XSD_INTEGER

    groups: dict[tuple, list[Binding]] = {}
    if query.group_by:
        for binding in bindings:
            key = tuple(
                None if binding.get(v.name) is None else binding[v.name].n3()
                for v in query.group_by
            )
            groups.setdefault(key, []).append(binding)
    else:
        groups[()] = bindings

    rows: list[tuple] = []
    for members in groups.values():
        cells: list = []
        representative = members[0] if members else {}
        for variable in query.variables:
            cells.append(representative.get(variable.name))
        for aggregate in query.aggregates:
            if aggregate.variable is None:
                if aggregate.distinct:
                    count = len(
                        {
                            tuple(sorted((k, t.n3()) for k, t in b.items()))
                            for b in members
                        }
                    )
                else:
                    count = len(members)
            else:
                bound = [
                    b[aggregate.variable.name].n3()
                    for b in members
                    if aggregate.variable.name in b
                ]
                count = len(set(bound)) if aggregate.distinct else len(bound)
            cells.append(Literal(str(count), datatype=XSD_INTEGER))
        rows.append(tuple(cells))
    return rows


# -- filter evaluation --------------------------------------------------------


def evaluate_filter(expression: FilterExpression, binding: Binding) -> bool:
    """Evaluate a filter expression under a binding (SPARQL-style semantics).

    An unbound variable or an uncomparable pair makes the expression false
    (SPARQL type errors eliminate the solution).
    """
    if isinstance(expression, And):
        return all(evaluate_filter(op, binding) for op in expression.operands)
    if isinstance(expression, Or):
        return any(evaluate_filter(op, binding) for op in expression.operands)
    if isinstance(expression, Regex):
        value = binding.get(expression.variable.name)
        if not isinstance(value, Literal):
            return False
        return re.search(expression.pattern, value.lexical) is not None
    return _evaluate_comparison(expression, binding)


def _evaluate_comparison(comparison: Comparison, binding: Binding) -> bool:
    left = _resolve(comparison.left, binding)
    right = _resolve(comparison.right, binding)
    if left is None or right is None:
        return False
    if comparison.op == "=":
        return compare_terms_equal(left, right)
    if comparison.op == "!=":
        return not compare_terms_equal(left, right)
    ordered = compare_terms_ordered(left, right)
    if ordered is None:
        return False
    if comparison.op == "<":
        return ordered < 0
    if comparison.op == "<=":
        return ordered <= 0
    if comparison.op == ">":
        return ordered > 0
    return ordered >= 0


def compare_terms_equal(left: Term, right: Term) -> bool:
    """Equality with numeric coercion for typed literals."""
    if isinstance(left, Literal) and isinstance(right, Literal):
        left_value, right_value = left.to_python(), right.to_python()
        if _both_numeric(left_value, right_value):
            return float(left_value) == float(right_value)
        return left.lexical == right.lexical and left.language == right.language
    return left == right


def compare_terms_ordered(left: Term, right: Term) -> int | None:
    """Three-way ordering comparison; None when the pair is uncomparable."""
    if isinstance(left, Literal) and isinstance(right, Literal):
        left_value, right_value = left.to_python(), right.to_python()
        if _both_numeric(left_value, right_value):
            left_num, right_num = float(left_value), float(right_value)
            return (left_num > right_num) - (left_num < right_num)
        return (left.lexical > right.lexical) - (left.lexical < right.lexical)
    return None


def _both_numeric(left, right) -> bool:
    return isinstance(left, (int, float)) and not isinstance(left, bool) and \
        isinstance(right, (int, float)) and not isinstance(right, bool)


def _term_key(term: Term | None):
    if term is None:
        return (-1, "")
    return term_sort_key(term)


def _row_key(row: tuple[Term | None, ...]):
    return tuple(_term_key(term) for term in row)
