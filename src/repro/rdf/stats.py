"""Graph statistics used for join ordering.

The paper (§3.3) relies on two statistics collected during loading, "simple
but effective in practice": the total number of triples per predicate and the
number of distinct subjects per predicate. Both are computed here in one pass.

As the extended statistics from the paper's future-work section (§5), this
module also implements *characteristic sets* (Neumann & Moerkotte): the count
of subjects per exact predicate-set, which gives much sharper cardinality
estimates for star-shaped sub-queries.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from .graph import Graph
from .terms import IRI
from ..errors import ValidationError


@dataclass(frozen=True)
class PredicateStatistics:
    """Per-predicate statistics collected at load time.

    Attributes:
        triple_count: total number of triples using the predicate.
        distinct_subjects: number of distinct subjects using the predicate.
        distinct_objects: number of distinct object values for the predicate.
        is_multivalued: whether any subject carries more than one object value,
            which forces a list-typed Property Table column (paper §3.1).
    """

    triple_count: int
    distinct_subjects: int
    distinct_objects: int
    is_multivalued: bool

    @property
    def objects_per_subject(self) -> float:
        """Average number of object values per subject (>= 1.0)."""
        if self.distinct_subjects == 0:
            return 0.0
        return self.triple_count / self.distinct_subjects


@dataclass
class GraphStatistics:
    """All statistics the translators consume, keyed by predicate IRI string.

    Attributes:
        total_triples: size of the graph.
        total_subjects: number of distinct subjects in the graph.
        predicates: per-predicate statistics.
        characteristic_sets: optional extended statistics — a count of subjects
            for each exact frozenset of predicate IRI strings. ``None`` unless
            collected with ``level="extended"``.
    """

    total_triples: int
    total_subjects: int
    predicates: dict[str, PredicateStatistics]
    characteristic_sets: dict[frozenset[str], int] | None = field(default=None)

    def for_predicate(self, predicate: str | IRI) -> PredicateStatistics:
        """Look up statistics for one predicate.

        Unknown predicates (possible when a query mentions a predicate absent
        from the data) get empty statistics, so the translator scores them as
        maximally selective — matching the behaviour of an empty VP table.
        """
        key = predicate.value if isinstance(predicate, IRI) else predicate
        return self.predicates.get(key, _EMPTY_PREDICATE_STATS)

    def star_subject_estimate(self, predicates: set[str]) -> int | None:
        """Estimate how many subjects carry *all* of ``predicates``.

        Uses characteristic sets when available (sum over supersets); returns
        ``None`` when extended statistics were not collected.
        """
        if self.characteristic_sets is None:
            return None
        wanted = frozenset(predicates)
        return sum(
            count
            for char_set, count in self.characteristic_sets.items()
            if wanted <= char_set
        )


_EMPTY_PREDICATE_STATS = PredicateStatistics(
    triple_count=0, distinct_subjects=0, distinct_objects=0, is_multivalued=False
)


def collect_statistics(graph: Graph, level: str = "simple") -> GraphStatistics:
    """Collect graph statistics in a single pass over the graph.

    Args:
        graph: the input RDF graph.
        level: ``"simple"`` for the paper's two statistics, ``"extended"`` to
            additionally collect characteristic sets (paper §5 future work).

    Raises:
        ValueError: for an unknown ``level``.
    """
    if level not in ("simple", "extended"):
        raise ValidationError(f"unknown statistics level: {level!r}")

    subjects_by_predicate: dict[str, set] = defaultdict(set)
    objects_by_predicate: dict[str, set] = defaultdict(set)
    pair_counts: Counter[tuple] = Counter()
    predicates_by_subject: dict = defaultdict(set)

    total = 0
    for triple in graph:
        total += 1
        key = triple.predicate.value
        subjects_by_predicate[key].add(triple.subject)
        objects_by_predicate[key].add(triple.object)
        pair_counts[(triple.subject, key)] += 1
        if level == "extended":
            predicates_by_subject[triple.subject].add(key)

    multivalued = {
        predicate
        for (subject, predicate), count in pair_counts.items()
        if count > 1
    }

    per_predicate: dict[str, PredicateStatistics] = {}
    for predicate, subjects in subjects_by_predicate.items():
        per_predicate[predicate] = PredicateStatistics(
            triple_count=len(graph.triples_with_predicate(IRI(predicate))),
            distinct_subjects=len(subjects),
            distinct_objects=len(objects_by_predicate[predicate]),
            is_multivalued=predicate in multivalued,
        )

    characteristic_sets = None
    if level == "extended":
        characteristic_sets = Counter(
            frozenset(preds) for preds in predicates_by_subject.values()
        )
        characteristic_sets = dict(characteristic_sets)

    return GraphStatistics(
        total_triples=total,
        total_subjects=len(graph.subjects),
        predicates=per_predicate,
        characteristic_sets=characteristic_sets,
    )
