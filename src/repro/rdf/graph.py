"""In-memory RDF graph container.

:class:`Graph` is the hand-off format between the workload generators / parsers
and the store loaders. It deduplicates triples and offers the simple access
paths the loaders need: iteration, grouping by predicate, and grouping by
subject.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator
from pathlib import Path

from .ntriples import parse_ntriples_file, parse_ntriples_string, serialize_ntriples
from .terms import IRI, SubjectTerm, Term, Triple, term_sort_key


class Graph:
    """A set of RDF triples with predicate- and subject-grouped views.

    The graph is set-semantic: inserting a duplicate triple is a no-op, which
    matches the behaviour of every store the paper evaluates. Storage is
    dict-backed (insertion-ordered) rather than ``set``-backed so iteration
    order is a pure function of the insertion sequence, never of Python's
    per-process hash randomization — differential tests compare engines
    loaded from the same graph and rely on this.
    """

    def __init__(self, triples: Iterable[Triple] = ()):
        # Dicts double as insertion-ordered sets (keys only, values None).
        self._triples: dict[Triple, None] = {}
        self._by_predicate: dict[IRI, dict[Triple, None]] = defaultdict(dict)
        self._by_subject: dict[SubjectTerm, dict[Triple, None]] = defaultdict(dict)
        for triple in triples:
            self.add(triple)

    # -- construction ------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple; return ``True`` when it was not already present."""
        if triple in self._triples:
            return False
        self._triples[triple] = None
        self._by_predicate[triple.predicate][triple] = None
        self._by_subject[triple.subject][triple] = None
        return True

    def update(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return how many were new."""
        return sum(1 for triple in triples if self.add(triple))

    @classmethod
    def from_ntriples(cls, text: str) -> "Graph":
        """Build a graph from an N-Triples document held in a string."""
        return cls(parse_ntriples_string(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "Graph":
        """Build a graph from an N-Triples file."""
        return cls(parse_ntriples_file(path))

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    @property
    def predicates(self) -> list[IRI]:
        """All distinct predicates, sorted for deterministic iteration."""
        return sorted(self._by_predicate, key=lambda p: p.value)

    @property
    def subjects(self) -> list[SubjectTerm]:
        """All distinct subjects, sorted for deterministic iteration."""
        return sorted(self._by_subject, key=term_sort_key)

    def triples_with_predicate(self, predicate: IRI) -> list[Triple]:
        """All triples using ``predicate``, in deterministic (subject) order."""
        triples = self._by_predicate.get(predicate, ())
        return sorted(triples, key=lambda t: (term_sort_key(t.subject), term_sort_key(t.object)))

    def triples_with_subject(self, subject: SubjectTerm) -> list[Triple]:
        """All triples about ``subject``, in deterministic (predicate) order."""
        triples = self._by_subject.get(subject, ())
        return sorted(triples, key=lambda t: (t.predicate.value, term_sort_key(t.object)))

    def objects(self, subject: SubjectTerm, predicate: IRI) -> list[Term]:
        """All object values for a (subject, predicate) pair, sorted."""
        values = [t.object for t in self._by_subject.get(subject, ()) if t.predicate == predicate]
        return sorted(values, key=term_sort_key)

    def predicate_counts(self) -> dict[IRI, int]:
        """Triple count per predicate (input to the statistics collector)."""
        return {pred: len(triples) for pred, triples in self._by_predicate.items()}

    def to_ntriples(self) -> str:
        """Serialize the graph deterministically (sorted) to N-Triples."""
        ordered = sorted(
            self._triples,
            key=lambda t: (term_sort_key(t.subject), t.predicate.value, term_sort_key(t.object)),
        )
        return serialize_ntriples(ordered)

    def __repr__(self) -> str:
        return f"Graph({len(self._triples)} triples, {len(self._by_predicate)} predicates)"
