"""RDF data model: terms, triples, N-Triples I/O, graphs, and statistics."""

from .dictionary import (
    TERM_ID_BASE,
    TermDictionary,
    TermId,
    default_dictionary,
    ids_enabled,
    is_term_id,
    set_ids_enabled,
    term_ids,
)
from .graph import Graph
from .ntriples import (
    parse_ntriples,
    parse_ntriples_file,
    parse_ntriples_string,
    serialize_ntriples,
    write_ntriples_file,
)
from .stats import GraphStatistics, PredicateStatistics, collect_statistics
from .stats_io import (
    load_statistics,
    save_statistics,
    statistics_from_json,
    statistics_to_json,
)
from .terms import (
    IRI,
    RDF_TYPE,
    BlankNode,
    Literal,
    SubjectTerm,
    Term,
    Triple,
    term_sort_key,
)

__all__ = [
    "IRI",
    "RDF_TYPE",
    "TERM_ID_BASE",
    "is_term_id",
    "BlankNode",
    "Graph",
    "GraphStatistics",
    "Literal",
    "PredicateStatistics",
    "SubjectTerm",
    "Term",
    "TermDictionary",
    "TermId",
    "Triple",
    "collect_statistics",
    "default_dictionary",
    "ids_enabled",
    "set_ids_enabled",
    "term_ids",
    "load_statistics",
    "save_statistics",
    "statistics_from_json",
    "statistics_to_json",
    "parse_ntriples",
    "parse_ntriples_file",
    "parse_ntriples_string",
    "serialize_ntriples",
    "term_sort_key",
    "write_ntriples_file",
]
