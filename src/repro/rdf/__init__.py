"""RDF data model: terms, triples, N-Triples I/O, graphs, and statistics."""

from .graph import Graph
from .ntriples import (
    parse_ntriples,
    parse_ntriples_file,
    parse_ntriples_string,
    serialize_ntriples,
    write_ntriples_file,
)
from .stats import GraphStatistics, PredicateStatistics, collect_statistics
from .stats_io import (
    load_statistics,
    save_statistics,
    statistics_from_json,
    statistics_to_json,
)
from .terms import (
    IRI,
    RDF_TYPE,
    BlankNode,
    Literal,
    SubjectTerm,
    Term,
    Triple,
    term_sort_key,
)

__all__ = [
    "IRI",
    "RDF_TYPE",
    "BlankNode",
    "Graph",
    "GraphStatistics",
    "Literal",
    "PredicateStatistics",
    "SubjectTerm",
    "Term",
    "Triple",
    "collect_statistics",
    "load_statistics",
    "save_statistics",
    "statistics_from_json",
    "statistics_to_json",
    "parse_ntriples",
    "parse_ntriples_file",
    "parse_ntriples_string",
    "serialize_ntriples",
    "term_sort_key",
    "write_ntriples_file",
]
