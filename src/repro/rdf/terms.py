"""RDF term model: IRIs, literals, blank nodes, and triples.

Terms are immutable, hashable value objects so they can be used as dictionary
keys throughout the loaders and the execution engine. The model follows RDF
1.1 Concepts: a *subject* is an IRI or blank node, a *predicate* is an IRI,
and an *object* is any term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union
from ..errors import ValidationError

#: Datatype IRI of plain (simple) literals under RDF 1.1.
XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XSD_DECIMAL = "http://www.w3.org/2001/XMLSchema#decimal"
XSD_BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean"

#: The rdf:type predicate, special-cased by several RDF stores.
RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"


@dataclass(frozen=True, slots=True)
class IRI:
    """An absolute IRI reference, e.g. ``IRI("http://example.org/alice")``."""

    value: str

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        """Return the N-Triples serialization, e.g. ``<http://...>``."""
        return f"<{self.value}>"


@dataclass(frozen=True, slots=True)
class BlankNode:
    """A blank node with a document-scoped label, e.g. ``_:b0``."""

    label: str

    def __str__(self) -> str:
        return f"_:{self.label}"

    def n3(self) -> str:
        """Return the N-Triples serialization, e.g. ``_:b0``."""
        return f"_:{self.label}"


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal: a lexical form plus optional datatype or language tag.

    A literal has *either* a language tag (then its datatype is implicitly
    ``rdf:langString``) or a datatype IRI. A literal with neither is a simple
    literal whose datatype is ``xsd:string``.
    """

    lexical: str
    datatype: str | None = None
    language: str | None = None

    def __post_init__(self) -> None:
        if self.language is not None and self.datatype is not None:
            raise ValidationError("a literal cannot have both a language tag and a datatype")

    def __str__(self) -> str:
        return self.lexical

    def n3(self) -> str:
        """Return the N-Triples serialization with escapes applied."""
        escaped = escape_literal(self.lexical)
        if self.language is not None:
            return f'"{escaped}"@{self.language}'
        if self.datatype is not None and self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def to_python(self) -> str | int | float | bool:
        """Best-effort conversion of the lexical form to a Python value.

        Falls back to the raw lexical form when the datatype is unknown or the
        lexical form does not parse.
        """
        if self.datatype == XSD_INTEGER:
            try:
                return int(self.lexical)
            except ValueError:
                return self.lexical
        if self.datatype == XSD_DECIMAL:
            try:
                return float(self.lexical)
            except ValueError:
                return self.lexical
        if self.datatype == XSD_BOOLEAN:
            if self.lexical in ("true", "1"):
                return True
            if self.lexical in ("false", "0"):
                return False
            return self.lexical
        return self.lexical


#: Any RDF term.
Term = Union[IRI, BlankNode, Literal]
#: Terms allowed in the subject position.
SubjectTerm = Union[IRI, BlankNode]


@dataclass(frozen=True, slots=True)
class Triple:
    """One RDF statement ``(subject, predicate, object)``."""

    subject: SubjectTerm
    predicate: IRI
    object: Term

    def n3(self) -> str:
        """Return the N-Triples serialization including the final dot."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}

_UNESCAPES = {
    "\\": "\\",
    '"': '"',
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "'": "'",
    "b": "\b",
    "f": "\f",
}


def escape_literal(text: str) -> str:
    """Escape a literal's lexical form for N-Triples output.

    Beyond the mandatory escapes (quote, backslash, LF, CR, TAB), every other
    control character — including Unicode line separators such as U+2028 —
    is written as ``\\uXXXX`` so serialized documents stay strictly
    one-statement-per-line under any line-splitting convention.
    """
    out: list[str] = []
    for ch in text:
        escaped = _ESCAPES.get(ch)
        if escaped is not None:
            out.append(escaped)
        elif ord(ch) < 0x20 or ch in ("\x85", "\u2028", "\u2029"):
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    return "".join(out)


def unescape_literal(text: str) -> str:
    """Reverse :func:`escape_literal`, including ``\\uXXXX``/``\\UXXXXXXXX``.

    Raises:
        ValueError: on a dangling backslash or unknown escape sequence.
    """
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise ValidationError("dangling backslash in literal")
        nxt = text[i + 1]
        if nxt in _UNESCAPES:
            out.append(_UNESCAPES[nxt])
            i += 2
        elif nxt == "u":
            out.append(chr(int(text[i + 2 : i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(text[i + 2 : i + 10], 16)))
            i += 10
        else:
            raise ValidationError(f"unknown escape sequence \\{nxt}")
    return "".join(out)


def term_sort_key(term: Term) -> tuple[int, str]:
    """A total order over terms: IRIs, then blank nodes, then literals.

    Within each kind, terms sort by their string value. Used wherever a
    deterministic ordering of results or index keys is needed.
    """
    if isinstance(term, IRI):
        return (0, term.value)
    if isinstance(term, BlankNode):
        return (1, term.label)
    return (2, term.n3())
