"""Global term dictionary: dense integer IDs for RDF terms.

The paper's real substrate (Spark + Parquet) dictionary-encodes terms, so
joins hash and compare small integers instead of full IRI strings. This
module reproduces that: every distinct N-Triples serialization gets a dense
:class:`TermId` at intern time, runtime tables carry IDs, and rows decode
back to terms only at the emission boundary (see ``core/encoding.py``).

Design points:

- **IDs are plain ints, tagged by range.** Term IDs are ordinary ``int``
  objects offset by :data:`TERM_ID_BASE`, so the decode boundary tells a
  dictionary ID apart from an arithmetic integer produced by a COUNT
  aggregate by *magnitude*, not by type. An ``int`` subclass would work
  too — but CPython garbage-collection-tracks instances of heap types,
  which defeats the collector's tuple-untracking optimization: every row
  tuple holding a subclass instance stays on the GC's scan list, and each
  generational collection then walks the entire loaded dataset. Plain
  ints (like the strings they replace) are atomic to the GC, so row
  tuples fall off the scan list after the first collection and query-time
  allocation stays cheap no matter how much data is loaded.
- **Decode is O(1).** The dictionary memoizes the parsed
  :class:`~repro.rdf.terms.Term` per ID, so emitting a result row is a list
  lookup, not an N-Triples reparse.
- **Storage stays lexical.** Simulated on-disk artifacts (columnar files,
  SPARQLGX text files, Rya index keys) keep the N-Triples strings —
  :func:`storage_row` converts an ID row back at the persistence boundary —
  so storage footprints (Table 1) and scan-cost accounting are unchanged.
- **The ablation switch.** :func:`set_ids_enabled` flips the whole system
  between ID cells and the legacy string cells (the ``bench --quick``
  strings-vs-IDs ablation); ``REPRO_TERM_IDS=0`` does the same from the
  environment.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from .ntriples import parse_term
from .terms import Term, term_sort_key

__all__ = [
    "TERM_ID_BASE",
    "TermId",
    "TermDictionary",
    "default_dictionary",
    "ids_enabled",
    "is_term_id",
    "set_ids_enabled",
    "term_ids",
    "storage_cell",
    "storage_row",
]

#: Dense term IDs start here. Any integer cell at or above the base is a
#: dictionary ID; anything below is an engine-produced number (a COUNT).
#: 2**46 is unreachable as a row count yet leaves plenty of headroom below
#: the 63-bit mask ``stable_hash`` reduces into.
TERM_ID_BASE = 1 << 46

#: Term IDs are deliberately *plain* ints (see the module docstring for
#: why an ``int`` subclass would wreck GC behavior); the alias keeps
#: signatures self-describing.
TermId = int


def is_term_id(cell) -> bool:
    """Whether a cell is a dictionary term ID (range-tagged plain int)."""
    return type(cell) is int and cell >= TERM_ID_BASE


class TermDictionary:
    """Bidirectional map between encoded terms and dense integer IDs."""

    __slots__ = (
        "_id_by_text",
        "_text_by_id",
        "_term_by_id",
        "_sort_key_by_id",
        "_len_by_id",
        "_intern_lock",
    )

    def __init__(self) -> None:
        self._id_by_text: dict[str, TermId] = {}
        self._text_by_id: list[str] = []
        self._term_by_id: list[Term | None] = []
        self._sort_key_by_id: list[tuple | None] = []
        self._len_by_id: list[int] = []
        # Interning is check-then-append on shared maps; two threads racing
        # on a *new* term could otherwise assign it two different IDs, and
        # an ID-vs-ID equality join would then silently miss rows. The
        # serve layer executes concurrent queries, so the slow path (first
        # sighting of a term) takes this lock; the hot path (already
        # interned) stays a plain lock-free dict hit.
        self._intern_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._text_by_id)

    def intern_text(self, text: str) -> TermId:
        """The ID for an encoded term, assigning the next dense ID if new."""
        found = self._id_by_text.get(text)
        if found is not None:
            return found
        with self._intern_lock:
            found = self._id_by_text.get(text)  # re-check under the lock
            if found is not None:
                return found
            term_id = TERM_ID_BASE + len(self._text_by_id)
            self._text_by_id.append(text)
            self._term_by_id.append(None)
            self._sort_key_by_id.append(None)
            self._len_by_id.append(len(text))
            # Publish the ID last: a concurrent lock-free reader either
            # misses (and serializes behind the lock) or sees an ID whose
            # side tables are already in place.
            self._id_by_text[text] = term_id
        return term_id

    def intern_term(self, term: Term) -> TermId:
        """The ID for a term object (interns its N-Triples serialization)."""
        return self.intern_text(term.n3())

    def lookup(self, text: str) -> TermId | None:
        """The ID for encoded text, or ``None`` when never interned."""
        return self._id_by_text.get(text)

    def text_of(self, term_id: int) -> str:
        """The encoded N-Triples text behind an ID."""
        return self._text_by_id[term_id - TERM_ID_BASE]

    def term_of(self, term_id: int) -> Term:
        """The parsed term behind an ID (parsed once, then memoized)."""
        index = term_id - TERM_ID_BASE
        term = self._term_by_id[index]
        if term is None:
            term = parse_term(self._text_by_id[index])
            self._term_by_id[index] = term
        return term

    def term_for_text(self, text: str) -> Term:
        """Parse-with-memoization for a lexical cell (interns the text)."""
        return self.term_of(self.intern_text(text))

    def sort_key_of(self, term_id: int) -> tuple:
        """The :func:`~repro.rdf.terms.term_sort_key` of an ID's term,
        computed once and memoized — result ordering sorts encoded rows by
        ID without re-deriving per-term keys every query."""
        index = term_id - TERM_ID_BASE
        key = self._sort_key_by_id[index]
        if key is None:
            key = term_sort_key(self.term_of(term_id))
            self._sort_key_by_id[index] = key
        return key

    def decoded_bytes(self, term_id: int) -> int:
        """Size of the *decoded* serialization (cost-model accounting)."""
        return len(self._text_by_id[term_id - TERM_ID_BASE])

    @property
    def texts(self) -> list[str]:
        """The text table, indexed by ``term_id - TERM_ID_BASE`` (read-only;
        hot sizing loops index it directly to skip a method call per cell)."""
        return self._text_by_id

    @property
    def decoded_lengths(self) -> list[int]:
        """Per-ID decoded text lengths, indexed by ``term_id -
        TERM_ID_BASE`` (read-only; the cost model's sizing loop)."""
        return self._len_by_id

    def clear(self) -> None:
        """Drop every entry (fresh ID space; used between bench ablations)."""
        self._id_by_text.clear()
        self._text_by_id.clear()
        self._term_by_id.clear()
        self._sort_key_by_id.clear()
        self._len_by_id.clear()


_DEFAULT = TermDictionary()


def default_dictionary() -> TermDictionary:
    """The process-wide dictionary shared by every engine and baseline."""
    return _DEFAULT


_ids_enabled = os.environ.get("REPRO_TERM_IDS", "1").strip().lower() not in (
    "0",
    "false",
    "no",
    "off",
)


def ids_enabled() -> bool:
    """Whether cells carry :class:`TermId` (default) or lexical strings."""
    return _ids_enabled


def set_ids_enabled(enabled: bool) -> bool:
    """Flip ID execution on/off; returns the previous setting."""
    global _ids_enabled
    previous = _ids_enabled
    _ids_enabled = bool(enabled)
    return previous


@contextmanager
def term_ids(enabled: bool):
    """Scoped :func:`set_ids_enabled` (tests and the bench ablation)."""
    previous = set_ids_enabled(enabled)
    try:
        yield
    finally:
        set_ids_enabled(previous)


def storage_cell(cell):
    """A cell as persisted storage sees it: IDs decode to lexical text."""
    if type(cell) is int and cell >= TERM_ID_BASE:
        return _DEFAULT.text_of(cell)
    if isinstance(cell, list):
        return [storage_cell(element) for element in cell]
    return cell


def storage_row(row: tuple) -> tuple:
    """A row converted for persistence (see :func:`storage_cell`)."""
    return tuple(storage_cell(cell) for cell in row)
