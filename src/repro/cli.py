"""Command-line interface: generate data, run queries, reproduce benchmarks.

Installed as ``prost-repro``::

    prost-repro generate --scale 300 --out watdiv.nt
    prost-repro query --data watdiv.nt --query 'SELECT ?s WHERE { ?s ?p ?o } LIMIT 5'
    prost-repro explain --data watdiv.nt --query-file q.rq --analyze
    prost-repro check --data watdiv.nt --query-file q.rq
    prost-repro check --watdiv-sweep --scale 120
    prost-repro lint
    prost-repro metrics --markdown
    prost-repro benchmark --scale 300 --experiment table2
    prost-repro queries --scale 300 --name C3
    prost-repro fuzz --seed 0 --iterations 50
    prost-repro bench --quick
    prost-repro config --markdown
    prost-repro serve --data watdiv.nt
    prost-repro replay --scale 400
"""

from __future__ import annotations

import argparse
import sys

from .bench import (
    BenchmarkConfig,
    BenchmarkSuite,
    render_bar_chart,
    render_figure2,
    render_figure3,
    render_table1,
    render_table2,
)
from .core.prost import ProstEngine
from .errors import AdmissionRejectedError, QueryCancelledError, QueryTimeoutError
from .rdf.graph import Graph
from .rdf.ntriples import write_ntriples_file
from .watdiv.generator import generate_watdiv
from .watdiv.queries import basic_query_set


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate_watdiv(scale=args.scale, seed=args.seed)
    count = write_ntriples_file(dataset.graph, args.out)
    print(f"wrote {count:,} triples to {args.out}")
    return 0


def _governed_config(args: argparse.Namespace):
    """A ClusterConfig carrying the governance flags, or None when unset.

    ``None`` keeps the engine on its default configuration path (the
    ``REPRO_MEM_BUDGET`` / ``REPRO_QUERY_TIMEOUT`` environment variables
    still apply either way — explicit flags win over them).
    """
    if args.memory_budget is None and args.timeout is None:
        return None
    from .engine.cluster import ClusterConfig

    return ClusterConfig(
        num_workers=getattr(args, "workers", 9),
        memory_budget_bytes=args.memory_budget,
        query_timeout_sec=args.timeout,
    )


def _add_governance_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory-budget",
        type=int,
        metavar="BYTES",
        default=None,
        help="per-query memory budget; joins over it degrade "
        "(broadcast→shuffle) or spill to disk instead of failing",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        metavar="SEC",
        default=None,
        help="per-query deadline; exceeding it raises QueryTimeoutError "
        "with the partial metrics preserved",
    )


def _read_query(args: argparse.Namespace) -> str | None:
    """The SPARQL text from ``--query`` / ``--query-file`` (None = missing)."""
    if args.query is not None:
        return args.query
    if args.query_file is not None:
        with open(args.query_file, encoding="utf-8") as handle:
            return handle.read()
    return None


def _cmd_query(args: argparse.Namespace) -> int:
    query = _read_query(args)
    if query is None:
        print("error: provide --query or --query-file", file=sys.stderr)
        return 2

    graph = Graph.from_file(args.data)
    engine = ProstEngine(
        num_workers=args.workers,
        strategy=args.strategy,
        cluster_config=_governed_config(args),
    )
    load_report = engine.load(graph)
    print(f"# {load_report.summary()}", file=sys.stderr)

    if args.explain:
        print(engine.explain(query))
        return 0
    tracer = None
    if args.trace_out:
        from .obs.tracer import Tracer

        tracer = Tracer()
    try:
        result = engine.sparql(query, tracer=tracer)
    except (AdmissionRejectedError, QueryCancelledError, QueryTimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        partial = getattr(exc, "metrics", None)
        if partial is not None:
            print(
                f"# partial work before cut-off: stages={partial.stages} "
                f"rows={partial.rows_processed} scan={partial.bytes_scanned}B",
                file=sys.stderr,
            )
        return 1
    print("\t".join(f"?{name}" for name in result.variables))
    for row in result:
        print("\t".join("" if term is None else term.n3() for term in row))
    print(f"# {len(result)} rows, {result.report.summary()}", file=sys.stderr)
    if tracer is not None:
        tracer.write_json(args.trace_out)
        print(f"# wrote trace to {args.trace_out}", file=sys.stderr)
    return 0


#: Engines the ``explain`` subcommand can build, by ``--system`` name.
EXPLAIN_SYSTEMS = ("prost", "s2rdf", "sparqlgx", "sparqlgx-sde", "rya")


def _cmd_explain(args: argparse.Namespace) -> int:
    query = _read_query(args)
    if query is None:
        print("error: provide --query or --query-file", file=sys.stderr)
        return 2
    if args.trace_out and (not args.analyze or args.system != "prost"):
        print(
            "error: --trace-out requires --analyze and --system prost",
            file=sys.stderr,
        )
        return 2

    graph = Graph.from_file(args.data)
    if args.system == "prost":
        engine = ProstEngine(
            num_workers=args.workers,
            strategy=args.strategy,
            cluster_config=_governed_config(args),
        )
    elif args.memory_budget is not None or args.timeout is not None:
        print(
            "error: --memory-budget/--timeout require --system prost",
            file=sys.stderr,
        )
        return 2
    else:
        from .baselines import Rya, S2Rdf, SparqlGx, SparqlGxDirect

        if args.system == "rya":
            engine = Rya(num_tablet_servers=args.workers)
        else:
            cls = {
                "s2rdf": S2Rdf,
                "sparqlgx": SparqlGx,
                "sparqlgx-sde": SparqlGxDirect,
            }[args.system]
            engine = cls(num_workers=args.workers)
    load_report = engine.load(graph)
    print(f"# {load_report.summary()}", file=sys.stderr)

    tracer = None
    if args.trace_out:
        from .obs.tracer import Tracer

        tracer = Tracer()
    if args.system == "prost":
        print(engine.explain(query, analyze=args.analyze, tracer=tracer))
    else:
        print(engine.explain(query, analyze=args.analyze))
    if tracer is not None:
        tracer.write_json(args.trace_out)
        print(f"# wrote trace to {args.trace_out}", file=sys.stderr)
    return 0


#: Engines the ``check`` subcommand can verify (Rya plans over a key-value
#: store, not logical plans, so there is nothing for the verifier to check).
CHECK_SYSTEMS = ("prost", "s2rdf", "sparqlgx", "sparqlgx-sde")


def _check_engine(args: argparse.Namespace):
    if args.system == "prost":
        return ProstEngine(num_workers=args.workers, strategy=args.strategy)
    from .baselines import S2Rdf, SparqlGx, SparqlGxDirect

    cls = {
        "s2rdf": S2Rdf,
        "sparqlgx": SparqlGx,
        "sparqlgx-sde": SparqlGxDirect,
    }[args.system]
    return cls(num_workers=args.workers)


def _check_one(engine, query: str) -> list:
    """Diagnostics for one query on one loaded engine."""
    from .analysis import verify_logical_plan
    from .sparql.parser import parse_sparql

    if isinstance(engine, ProstEngine):
        return engine.verify(query)
    frame = engine.dataframe(parse_sparql(query))
    if frame is None:  # provably empty (S2RDF's ExtVP pruning)
        return []
    return verify_logical_plan(
        frame.plan, catalog=engine.session.catalog, config=engine.session.config
    )


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis import render_diagnostics

    if args.watdiv_sweep:
        dataset = generate_watdiv(scale=args.scale, seed=args.seed)
        graph = dataset.graph
        queries = [(q.name, q.text) for q in basic_query_set(dataset)]
    else:
        query = _read_query(args)
        if query is None:
            print(
                "error: provide --query, --query-file, or --watdiv-sweep",
                file=sys.stderr,
            )
            return 2
        if args.data is None:
            print("error: provide --data (or --watdiv-sweep)", file=sys.stderr)
            return 2
        graph = Graph.from_file(args.data)
        queries = [("query", query)]

    engine = _check_engine(args)
    engine.load(graph)
    failed = 0
    for name, text in queries:
        diagnostics = _check_one(engine, text)
        if diagnostics:
            failed += 1
            tree = None
            if isinstance(engine, ProstEngine):
                from .sparql.parser import parse_sparql

                tree = engine._explain_tree_text(parse_sparql(text))
            print(f"== {name}: REJECTED ==")
            print(render_diagnostics(diagnostics, tree))
        elif args.verbose or args.watdiv_sweep:
            print(f"== {name}: ok ==")
    if failed:
        print(f"# {failed}/{len(queries)} quer{'y' if failed == 1 else 'ies'} rejected",
              file=sys.stderr)
        return 1
    print(f"# {len(queries)} quer{'y' if len(queries) == 1 else 'ies'} verified clean",
          file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis.lint import run_lints
    from .analysis.lint.runner import render_json, render_report

    root = Path(args.root) if args.root else None
    violations = run_lints(root)
    if args.json:
        sys.stdout.write(render_json(violations))
    else:
        print(render_report(violations))
    return 1 if violations else 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs.metrics import REGISTRY

    if args.markdown:
        # write(), not print(): the output redirected to docs/METRICS.md
        # must be byte-identical to the registry rendering.
        sys.stdout.write(REGISTRY.markdown())
        return 0
    for layer in REGISTRY.layers():
        print(f"[{layer}]")
        for name in REGISTRY.names(layer):
            spec = REGISTRY.get(name)
            print(f"  {spec.name:32} {spec.unit:8} {spec.description}")
    return 0


def _cmd_config(args: argparse.Namespace) -> int:
    from .obs import configdoc

    if args.markdown:
        # write(), not print(): the output redirected to docs/CONFIGURATION.md
        # must be byte-identical to the generator rendering.
        sys.stdout.write(configdoc.markdown())
        return 0
    print(configdoc.render_text())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """An interactive serving session: one engine, caches, tenant admission.

    Reads one query per line from stdin (SPARQL is line-oriented enough for
    a console session); dot-commands inspect the server:

    - ``.stats`` — serve counters and cache hit rates
    - ``.tenants`` — per-tenant admission accounting
    - ``.explain <query>`` — plans (annotated ``[cached plan]`` on a hit)
    - ``.tenant <name>`` — switch the tenant label for subsequent queries
    - ``.quit`` — exit
    """
    from .serve import QueryServer

    graph = Graph.from_file(args.data)
    engine = ProstEngine(
        num_workers=args.workers,
        strategy=args.strategy,
        cluster_config=_governed_config(args),
    )
    server = QueryServer(
        engine,
        plan_cache_size=args.plan_cache,
        result_cache_size=args.result_cache,
        max_queries_per_tenant=args.max_per_tenant,
    )
    load_report = server.load(graph)
    print(f"# {load_report.summary()}", file=sys.stderr)
    print(
        f"# serving (plan cache {server._plan_cache.capacity}, "
        f"result cache {server._result_cache.capacity}); "
        ".quit to exit, .stats / .tenants / .explain <query> to inspect",
        file=sys.stderr,
    )
    tenant = args.tenant
    stream = open(args.script, encoding="utf-8") if args.script else sys.stdin
    try:
        for line in stream:
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            if text == ".quit":
                break
            if text == ".stats":
                for name, value in server.metrics_snapshot().items():
                    print(f"  {name:32} {value}")
                continue
            if text == ".tenants":
                for name, counts in server.tenant_snapshot().items():
                    print(f"  {name:16} {counts}")
                continue
            if text.startswith(".tenant "):
                tenant = text[len(".tenant "):].strip()
                print(f"# tenant = {tenant}", file=sys.stderr)
                continue
            if text.startswith(".explain "):
                try:
                    print(server.explain(text[len(".explain "):]))
                except Exception as exc:
                    print(f"error: {exc}", file=sys.stderr)
                continue
            try:
                result = server.sparql(text, tenant=tenant)
            except (
                AdmissionRejectedError,
                QueryCancelledError,
                QueryTimeoutError,
            ) as exc:
                print(f"error: {exc}", file=sys.stderr)
                continue
            except Exception as exc:
                print(f"error: {exc}", file=sys.stderr)
                continue
            print("\t".join(f"?{name}" for name in result.variables))
            for row in result:
                print("\t".join("" if term is None else term.n3() for term in row))
            print(f"# {len(result)} rows, {result.report.summary()}", file=sys.stderr)
    finally:
        if stream is not sys.stdin:
            stream.close()
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .serve import render_replay, run_replay, write_replay_json

    payload = run_replay(
        scale=args.scale,
        seed=args.seed,
        clients=args.clients,
        requests_per_client=args.requests,
    )
    write_replay_json(payload, args.out)
    print(render_replay(payload))
    print(f"wrote {args.out}")
    return 0


def _cmd_queries(args: argparse.Namespace) -> int:
    dataset = generate_watdiv(scale=args.scale, seed=args.seed)
    for query in basic_query_set(dataset):
        if args.name and query.name != args.name:
            continue
        print(f"# -- {query.name} ({query.group}) {'-' * 40}")
        print(query.text)
        print()
    return 0


def _cmd_benchmark(args: argparse.Namespace) -> int:
    suite = BenchmarkSuite(BenchmarkConfig(scale=args.scale, seed=args.seed))
    print(
        f"# WatDiv scale={args.scale}: {len(suite.dataset.graph):,} triples, "
        f"emulation factor {suite.data_scale:,.0f}x",
        file=sys.stderr,
    )
    wanted = args.experiment
    if wanted in ("table1", "all"):
        print(render_table1(suite.run_loading_comparison(), suite.data_scale), "\n")
    if wanted in ("figure2", "all"):
        print(render_figure2(suite.run_strategy_comparison()), "\n")
    if wanted in ("figure3", "table2", "all"):
        runs = suite.run_all_systems()
        if wanted in ("figure3", "all"):
            print(render_figure3(runs), "\n")
            if args.chart:
                print(render_bar_chart(runs, "Figure 3 as log-scale bars"), "\n")
        if wanted in ("table2", "all"):
            print(render_table2(runs))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench.micro import render_quick_bench, run_quick_bench, write_bench_json

    if not args.quick:
        print("error: only --quick is implemented so far", file=sys.stderr)
        return 2
    tracer = None
    if args.trace_out:
        from .obs.tracer import Tracer

        tracer = Tracer()
    payload = run_quick_bench(
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        tracer=tracer,
        cluster_config=_governed_config(args),
    )
    write_bench_json(payload, args.out)
    print(render_quick_bench(payload))
    print(f"wrote {args.out}")
    if tracer is not None:
        tracer.write_json(args.trace_out)
        print(f"wrote trace to {args.trace_out}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .testing import ALL_SYSTEMS, chaos_seed_from_env, fuzz_defaults, run_fuzz

    # Resolution order: explicit flag > environment variable > default.
    seed, iterations = fuzz_defaults()
    if args.seed is not None:
        seed = args.seed
    if args.iterations is not None:
        iterations = args.iterations
    # Chaos mode: --chaos-seed pins the fault-plan base seed; --chaos (or
    # REPRO_CHAOS_SEED in the environment) turns it on with a default.
    chaos_seed = args.chaos_seed
    if chaos_seed is None:
        chaos_seed = chaos_seed_from_env()
    if chaos_seed is None and args.chaos:
        chaos_seed = seed
    systems = tuple(args.system) if args.system else ALL_SYSTEMS
    for name in systems:
        if name not in ALL_SYSTEMS:
            print(
                f"error: unknown system {name!r} (choose from {', '.join(ALL_SYSTEMS)})",
                file=sys.stderr,
            )
            return 2

    def progress(current_seed: int, mismatch_count: int) -> None:
        if args.verbose:
            status = "ok" if mismatch_count == 0 else f"{mismatch_count} mismatch(es)"
            print(f"# seed {current_seed}: {status}", file=sys.stderr)

    report = run_fuzz(
        base_seed=seed,
        iterations=iterations,
        queries_per_graph=args.queries_per_graph,
        systems=systems,
        shrink=not args.no_shrink,
        stop_on_first=args.stop_on_first,
        progress=progress,
        chaos_seed=chaos_seed,
        memory_budget_bytes=args.memory_budget,
        query_timeout_sec=args.timeout,
    )
    print(report.summary())
    for mismatch in report.mismatches:
        print()
        print(mismatch.format())
    if args.trace_out:
        import json

        traces = [m.trace for m in report.mismatches if m.trace is not None]
        if traces:
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                json.dump({"traces": traces}, handle, indent=2)
                handle.write("\n")
            print(
                f"# wrote {len(traces)} divergence trace(s) to {args.trace_out}",
                file=sys.stderr,
            )
        else:
            print("# no divergences, no trace written", file=sys.stderr)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prost-repro",
        description="PRoST reproduction: distributed SPARQL over mixed partitioning.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a WatDiv-style dataset")
    generate.add_argument("--scale", type=int, default=300, help="≈ user count")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, help="output N-Triples file")
    generate.set_defaults(handler=_cmd_generate)

    query = commands.add_parser("query", help="run a SPARQL query over an N-Triples file")
    query.add_argument("--data", required=True, help="N-Triples input file")
    query.add_argument("--query", help="SPARQL text")
    query.add_argument("--query-file", help="file containing the SPARQL text")
    query.add_argument("--strategy", choices=("mixed", "vp"), default="mixed")
    query.add_argument("--workers", type=int, default=9)
    query.add_argument("--explain", action="store_true", help="show plans, don't run")
    query.add_argument(
        "--trace-out", metavar="PATH", help="write the span trace of the run as JSON"
    )
    _add_governance_flags(query)
    query.set_defaults(handler=_cmd_query)

    explain = commands.add_parser(
        "explain",
        help="render a query's join tree and engine plan (EXPLAIN [ANALYZE])",
        description="Show how a query would execute: the Join Tree with "
        "node kinds (PT/VP), priorities, and estimated rows, plus the "
        "physical engine plan. With --analyze the query actually runs and "
        "every node gains actual row counts, the executed join strategy "
        "(colocated/broadcast-hash/shuffle-hash), data-movement bytes, and "
        "any fault-recovery charges.",
    )
    explain.add_argument("--data", required=True, help="N-Triples input file")
    explain.add_argument("--query", help="SPARQL text")
    explain.add_argument("--query-file", help="file containing the SPARQL text")
    explain.add_argument("--strategy", choices=("mixed", "vp"), default="mixed")
    explain.add_argument("--workers", type=int, default=9)
    explain.add_argument(
        "--system",
        choices=EXPLAIN_SYSTEMS,
        default="prost",
        help="which engine's plan to show (default: prost)",
    )
    explain.add_argument(
        "--analyze", action="store_true", help="execute and annotate with actuals"
    )
    explain.add_argument(
        "--trace-out",
        metavar="PATH",
        help="also write the span trace as JSON (requires --analyze, prost)",
    )
    _add_governance_flags(explain)
    explain.set_defaults(handler=_cmd_explain)

    check = commands.add_parser(
        "check",
        help="statically verify a query's plans without executing them",
        description="Run the static plan verifier: translate a query, infer "
        "every plan node's schema and partitioning, and report violated "
        "invariants (unbound variables, mis-grouped property-table nodes, "
        "priorities inconsistent with the statistics, colocated joins "
        "without co-partitioning, oversized broadcasts) as EXPLAIN-style "
        "diagnostics pointing at the offending tree node. Exits non-zero "
        "when any plan is rejected. The same checks run before every query "
        "unless REPRO_PLAN_CHECK=0.",
    )
    check.add_argument("--data", help="N-Triples input file")
    check.add_argument("--query", help="SPARQL text")
    check.add_argument("--query-file", help="file containing the SPARQL text")
    check.add_argument(
        "--watdiv-sweep",
        action="store_true",
        help="verify the whole WatDiv basic query set on generated data",
    )
    check.add_argument("--scale", type=int, default=300, help="sweep dataset scale")
    check.add_argument("--seed", type=int, default=7, help="sweep dataset seed")
    check.add_argument("--strategy", choices=("mixed", "vp"), default="mixed")
    check.add_argument("--workers", type=int, default=9)
    check.add_argument(
        "--system",
        choices=CHECK_SYSTEMS,
        default="prost",
        help="which planner's output to verify (default: prost)",
    )
    check.add_argument("--verbose", action="store_true", help="also print clean queries")
    check.set_defaults(handler=_cmd_check)

    lint = commands.add_parser(
        "lint",
        help="run the architectural lints over the repro source tree",
        description="AST-based checks of the codebase's own contracts: "
        "import layering (the generic engine/columnar/hdfs layers never "
        "import baselines or sparql; obs stays optional), data-plane "
        "determinism (no wall-clock time or ambient randomness outside the "
        "seeded fault injector), the metrics contract (counter names only "
        "via repro.obs.metrics constants), the error hierarchy (every "
        "raise uses repro.errors), and the concurrency discipline of the "
        "serving data plane (guarded-by/lockset checking, CC101-CC105). "
        "Exits non-zero on any violation.",
    )
    lint.add_argument(
        "--root", help="package directory to scan (default: the installed repro)"
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array (path, line, rule, code, message) "
        "instead of the text report",
    )
    lint.set_defaults(handler=_cmd_lint)

    metrics = commands.add_parser(
        "metrics",
        help="print the metrics contract (every documented counter)",
        description="List every counter the engine, fault-injection, HDFS, "
        "and cost layers emit, with units and documentation. --markdown "
        "emits the exact content of docs/METRICS.md (a test keeps the file "
        "in sync with this output).",
    )
    metrics.add_argument(
        "--markdown", action="store_true", help="emit docs/METRICS.md content"
    )
    metrics.set_defaults(handler=_cmd_metrics)

    config = commands.add_parser(
        "config",
        help="print the configuration contract (every knob and env var)",
        description="List every ClusterConfig field (default, validation "
        "rule, env fallback, CLI flag) and every REPRO_* environment "
        "variable, read live from the code. --markdown emits the exact "
        "content of docs/CONFIGURATION.md (a test keeps the file in sync "
        "with this output).",
    )
    config.add_argument(
        "--markdown", action="store_true", help="emit docs/CONFIGURATION.md content"
    )
    config.set_defaults(handler=_cmd_config)

    serve = commands.add_parser(
        "serve",
        help="serve queries interactively through the multi-tenant session layer",
        description="Load a dataset once and answer queries from stdin "
        "through repro.serve.QueryServer: tenant-labelled admission via the "
        "governor, an LRU plan cache keyed on normalized query shape, and a "
        "result cache invalidated on reload. One query per line; "
        ".stats/.tenants/.explain <query>/.tenant <name>/.quit are console "
        "commands. REPRO_SERVE_PLAN_CACHE / REPRO_SERVE_RESULT_CACHE set "
        "the default cache capacities.",
    )
    serve.add_argument("--data", required=True, help="N-Triples input file")
    serve.add_argument("--strategy", choices=("mixed", "vp"), default="mixed")
    serve.add_argument("--workers", type=int, default=9)
    serve.add_argument(
        "--plan-cache", type=int, default=None, metavar="N",
        help="plan-cache capacity (0 disables; default: env or 64)",
    )
    serve.add_argument(
        "--result-cache", type=int, default=None, metavar="N",
        help="result-cache capacity (0 disables; default: env or 256)",
    )
    serve.add_argument(
        "--max-per-tenant", type=int, default=None, metavar="N",
        help="admission cap per tenant label (default: unlimited)",
    )
    serve.add_argument("--tenant", default=None, help="initial tenant label")
    serve.add_argument(
        "--script", metavar="PATH",
        help="read the session from this file instead of stdin",
    )
    _add_governance_flags(serve)
    serve.set_defaults(handler=_cmd_serve)

    replay = commands.add_parser(
        "replay",
        help="closed-loop workload replay through the serving layer",
        description="Benchmark the serving stack: N closed-loop clients "
        "replay the WatDiv query mix against a QueryServer in three phases "
        "(cold pipeline, warm plan cache, warm plan+result caches), "
        "reporting p50/p95/p99 latency, throughput, and cache hit rates to "
        "BENCH_serve.json.",
    )
    replay.add_argument("--scale", type=int, default=400)
    replay.add_argument("--seed", type=int, default=7)
    replay.add_argument("--clients", type=int, default=4, help="closed-loop clients")
    replay.add_argument(
        "--requests", type=int, default=25, help="requests per client per phase"
    )
    replay.add_argument("--out", default="BENCH_serve.json", help="output JSON path")
    replay.set_defaults(handler=_cmd_replay)

    queries = commands.add_parser("queries", help="print the WatDiv basic query set")
    queries.add_argument("--scale", type=int, default=300)
    queries.add_argument("--seed", type=int, default=7)
    queries.add_argument("--name", help="only this query (e.g. C3)")
    queries.set_defaults(handler=_cmd_queries)

    benchmark = commands.add_parser("benchmark", help="reproduce the paper's evaluation")
    benchmark.add_argument("--scale", type=int, default=300)
    benchmark.add_argument("--seed", type=int, default=7)
    benchmark.add_argument(
        "--experiment",
        choices=("table1", "figure2", "figure3", "table2", "all"),
        default="all",
    )
    benchmark.add_argument(
        "--chart", action="store_true",
        help="also render figure 3 as ASCII log-scale bars",
    )
    benchmark.set_defaults(handler=_cmd_benchmark)

    bench = commands.add_parser(
        "bench",
        help="wall-clock microbenchmarks (not the simulated paper figures)",
        description="Measure real wall-clock performance of this process. "
        "--quick loads a WatDiv graph and runs the join-heavy query mix "
        "with string cells and with dictionary term IDs, writing the "
        "ablation results to BENCH_engine.json.",
    )
    bench.add_argument(
        "--quick", action="store_true", help="strings-vs-IDs ablation on a small graph"
    )
    bench.add_argument("--scale", type=int, default=2000)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--repeats", type=int, default=5, help="samples per query (median)")
    bench.add_argument("--out", default="BENCH_engine.json", help="output JSON path")
    bench.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a span trace (loads + first sample per query) as JSON",
    )
    _add_governance_flags(bench)
    bench.set_defaults(handler=_cmd_bench)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential-fuzz all engines against the brute-force oracle",
        description="Generate random graphs and BGP queries from a seed, run "
        "them on every engine, and compare the solutions against a "
        "brute-force oracle. REPRO_FUZZ_SEED and REPRO_FUZZ_ITERATIONS "
        "override the defaults (the same variables pytest honors). Exits "
        "non-zero when any engine disagrees; the report includes a shrunken "
        "counterexample and a replay command.",
    )
    fuzz.add_argument(
        "--seed", type=int, default=None, help="base seed, one graph per seed (default 0)"
    )
    fuzz.add_argument(
        "--iterations", type=int, default=None, help="number of seeds to run (default 20)"
    )
    fuzz.add_argument(
        "--queries-per-graph", type=int, default=10, help="random queries per graph"
    )
    fuzz.add_argument(
        "--system",
        action="append",
        metavar="NAME",
        help="restrict to one or more systems (repeatable); default: all",
    )
    fuzz.add_argument(
        "--chaos",
        action="store_true",
        help="inject a seeded random fault plan (task/worker/shuffle-fetch "
        "failures, stragglers) into every cluster-backed engine; results "
        "must still match the fault-free oracle. REPRO_CHAOS_SEED also "
        "enables this and picks the chaos base seed.",
    )
    fuzz.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="chaos base seed (implies --chaos; default: the fuzz base seed)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true", help="report raw counterexamples unshrunken"
    )
    fuzz.add_argument(
        "--stop-on-first", action="store_true", help="stop at the first failing seed"
    )
    fuzz.add_argument("--verbose", action="store_true", help="per-seed progress on stderr")
    fuzz.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the span traces of diverging counterexamples as JSON",
    )
    _add_governance_flags(fuzz)
    fuzz.set_defaults(handler=_cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
