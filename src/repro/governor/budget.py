"""Per-query memory accounting against a fixed byte budget.

The budget models the executor-memory ceiling of one Spark task slot: the
paper's cluster ran 21 GB executors, and a join whose hash build outgrows
that ceiling either spills (Spark's ``ShuffledHashJoin`` falling back to
sort-merge with external sort) or dies with an OOM. Here the executors
charge every memory-hungry site — hash-join build, explode, distinct,
sort, aggregate — against a :class:`MemoryBudget`, and a charge that
exceeds the *effective* budget triggers the degradation ladder instead of
an error (see :mod:`repro.governor.context`).

Sizing reuses the engine's shuffle accounting (``estimate_row_bytes`` /
``batch_bytes``), which is contract-equal between the row and vectorized
paths, so both paths see the same charges and make the same degradation
decisions.
"""

from __future__ import annotations

from ..errors import ValidationError

#: Bounds on the grace-hash fanout: at least a real split, at most the
#: file-handle-friendly cap Spark uses for its own shuffle spills.
MIN_SPILL_FANOUT = 2
MAX_SPILL_FANOUT = 64


class MemoryBudget:
    """A per-query byte budget with a high-water mark and pressure shrink.

    Attributes:
        limit_bytes: the configured budget.
        shrunk_bytes: bytes removed by memory-pressure faults; the
            *effective* budget is ``limit_bytes - shrunk_bytes`` (floored
            at one byte so decisions stay well-defined under heavy
            pressure).
        peak_bytes: largest single charge seen — the query's high-water
            mark, surfaced as ``governor.peak_memory_bytes``.
    """

    __slots__ = ("limit_bytes", "shrunk_bytes", "peak_bytes")

    def __init__(self, limit_bytes: int):
        if limit_bytes <= 0:
            raise ValidationError("memory budget must be positive")
        self.limit_bytes = int(limit_bytes)
        self.shrunk_bytes = 0
        self.peak_bytes = 0

    @property
    def effective_bytes(self) -> int:
        """The budget currently in force (post memory-pressure shrinks)."""
        return max(1, self.limit_bytes - self.shrunk_bytes)

    def shrink(self, fraction: float) -> int:
        """Apply memory pressure: remove ``fraction`` of the *configured*
        budget, returning the new effective budget. Idempotent at the
        one-byte floor."""
        removed = int(self.limit_bytes * fraction)
        self.shrunk_bytes = min(self.limit_bytes - 1, self.shrunk_bytes + removed)
        return self.effective_bytes

    def charge(self, nbytes: int) -> bool:
        """Charge one operator's working set; True when it trips the budget.

        Charges are per-site, not cumulative: operator state is transient
        (a build table is dropped once its join finishes), so each site is
        compared against the effective budget on its own. The high-water
        mark keeps the largest charge for observability.
        """
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes
        return nbytes > self.effective_bytes

    def would_trip(self, nbytes: int) -> bool:
        """Like :meth:`charge` but without touching the high-water mark."""
        return nbytes > self.effective_bytes

    def spill_fanout(self, nbytes: int) -> int:
        """Grace-hash partition count for a build side of ``nbytes``.

        Rounds ``nbytes / effective_budget`` up to the next power of two so
        every sub-partition's build is expected to fit, clamped to
        [:data:`MIN_SPILL_FANOUT`, :data:`MAX_SPILL_FANOUT`]. Purely a
        function of the charge and the effective budget — deterministic,
        and identical across the row and vector paths.
        """
        needed = -(-nbytes // self.effective_bytes)  # ceil division
        fanout = MIN_SPILL_FANOUT
        while fanout < needed and fanout < MAX_SPILL_FANOUT:
            fanout *= 2
        return fanout

    def __repr__(self) -> str:
        return (
            f"MemoryBudget(limit={self.limit_bytes}, "
            f"effective={self.effective_bytes}, peak={self.peak_bytes})"
        )
