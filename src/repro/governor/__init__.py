"""Resource governance: memory budgets, deadlines, and admission control.

The layer that turns ``ClusterConfig.broadcast_threshold_bytes`` — the one
resource guardrail the paper's Spark deployment exposes — into a full
governance story. Four pieces:

- :class:`~repro.governor.budget.MemoryBudget` — per-query byte budget
  charged at every memory-hungry operator site; tripping it walks the
  degradation ladder (broadcast→shuffle, in-memory hash join→grace-hash
  spill) instead of failing;
- :class:`~repro.governor.deadline.Deadline` — cooperative per-query
  deadline polled at stage boundaries and inside the fault injector's
  retry loop;
- :class:`~repro.governor.context.GovernorContext` — the per-query object
  carrying both, attached to ``ExecutionMetrics`` exactly like the fault
  injector so the executors need no new plumbing;
- :class:`~repro.governor.admission.Governor` — the engine front door:
  concurrent-query slots, aggregate-memory reservations, bounded queueing
  and load-shedding.

Configuration comes from the validated ``ClusterConfig`` fields
(``memory_budget_bytes``, ``query_timeout_sec``, ``max_concurrent_queries``,
``spill_dir``), with the ``REPRO_MEM_BUDGET`` / ``REPRO_QUERY_TIMEOUT``
environment variables as fallbacks — the hook CI uses to re-run the whole
fuzz corpus with every query forced through the spill path.
"""

from __future__ import annotations

import os

from ..errors import ValidationError
from .admission import Governor
from .budget import MAX_SPILL_FANOUT, MIN_SPILL_FANOUT, MemoryBudget
from .context import GovernorContext
from .deadline import Deadline
from .spill import SpillStore, grace_hash_join_partition

#: Environment fallback for ``ClusterConfig.memory_budget_bytes``.
MEM_BUDGET_ENV = "REPRO_MEM_BUDGET"

#: Environment fallback for ``ClusterConfig.query_timeout_sec``.
QUERY_TIMEOUT_ENV = "REPRO_QUERY_TIMEOUT"

__all__ = [
    "Deadline",
    "Governor",
    "GovernorContext",
    "MAX_SPILL_FANOUT",
    "MEM_BUDGET_ENV",
    "MIN_SPILL_FANOUT",
    "MemoryBudget",
    "QUERY_TIMEOUT_ENV",
    "SpillStore",
    "grace_hash_join_partition",
    "governor_context_for",
    "memory_budget_from_env",
    "query_timeout_from_env",
]


def memory_budget_from_env() -> int | None:
    """``REPRO_MEM_BUDGET`` as bytes, or ``None`` when unset/empty."""
    raw = os.environ.get(MEM_BUDGET_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValidationError(
            f"{MEM_BUDGET_ENV} must be an integer byte count, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValidationError(f"{MEM_BUDGET_ENV} must be positive, got {raw!r}")
    return value


def query_timeout_from_env() -> float | None:
    """``REPRO_QUERY_TIMEOUT`` as seconds, or ``None`` when unset/empty."""
    raw = os.environ.get(QUERY_TIMEOUT_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValidationError(
            f"{QUERY_TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValidationError(f"{QUERY_TIMEOUT_ENV} must be positive, got {raw!r}")
    return value


def governor_context_for(config) -> GovernorContext | None:
    """The per-query :class:`GovernorContext` a ``ClusterConfig`` implies.

    Explicit config fields win; the environment variables fill in when a
    field is unset (so an exported ``REPRO_MEM_BUDGET`` governs every
    engine in the process, which is how the CI spill leg works). Returns
    ``None`` when neither a budget nor a timeout is in force — governance
    off means literally no per-query state.
    """
    budget = config.memory_budget_bytes
    if budget is None:
        budget = memory_budget_from_env()
    timeout = config.query_timeout_sec
    if timeout is None:
        timeout = query_timeout_from_env()
    if budget is None and timeout is None:
        return None
    return GovernorContext(
        budget_bytes=budget, timeout_sec=timeout, spill_root=config.spill_dir
    )
