"""Admission control: concurrent-query gating with bounded queueing.

The front-door half of the governor. A :class:`Governor` owns two limits:

- **slots**: at most ``max_concurrent_queries`` queries run at once;
- **aggregate memory**: when a per-query budget is configured, admitted
  queries reserve it, and total reservations may not exceed
  ``budget × slots`` — an engine-wide memory ceiling.

A query that cannot be admitted immediately waits in a *bounded* queue;
when the queue is full (or the wait times out) it is shed with
:class:`~repro.errors.AdmissionRejectedError` instead of piling up —
load-shedding rather than collapse, the same posture PHD-Store argues for
under live overload.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from ..errors import AdmissionRejectedError, ValidationError

#: Default bound on queries waiting for a slot before load-shedding.
DEFAULT_MAX_QUEUE_DEPTH = 16

#: Default seconds a queued query waits for a slot before being shed.
DEFAULT_QUEUE_TIMEOUT_SEC = 30.0


class Governor:
    """Engine-level admission controller (thread-safe).

    Attributes:
        max_concurrent_queries: slot count.
        memory_budget_bytes: per-query reservation (``None`` disables the
            aggregate-memory limit).
        max_queue_depth: waiting queries beyond this are shed immediately.
        queue_timeout_sec: max seconds a query waits for a slot.
        max_queries_per_tenant: per-tenant slot cap applied to admissions
            carrying a tenant label (``None`` disables fairness capping).
        admitted / rejected / peak_concurrent: lifetime stats.
    """

    def __init__(
        self,
        max_concurrent_queries: int = 8,
        memory_budget_bytes: int | None = None,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        queue_timeout_sec: float = DEFAULT_QUEUE_TIMEOUT_SEC,
        max_queries_per_tenant: int | None = None,
    ):
        if max_concurrent_queries < 1:
            raise ValidationError("max_concurrent_queries must be at least 1")
        if max_queue_depth < 0:
            raise ValidationError("max_queue_depth must be non-negative")
        if queue_timeout_sec <= 0:
            raise ValidationError("queue_timeout_sec must be positive")
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValidationError("memory budget must be positive")
        if max_queries_per_tenant is not None and max_queries_per_tenant < 1:
            raise ValidationError("max_queries_per_tenant must be at least 1")
        self.max_concurrent_queries = max_concurrent_queries
        self.memory_budget_bytes = memory_budget_bytes
        self.max_queue_depth = max_queue_depth
        self.queue_timeout_sec = queue_timeout_sec
        self.max_queries_per_tenant = max_queries_per_tenant
        self._condition = threading.Condition()
        self.admitted = 0  # guarded-by: _condition
        self.rejected = 0  # guarded-by: _condition
        self.peak_concurrent = 0  # guarded-by: _condition
        self._active = 0  # guarded-by: _condition
        self._active_bytes = 0  # guarded-by: _condition
        self._waiting = 0  # guarded-by: _condition
        self._tenant_active: dict[str, int] = {}  # guarded-by: _condition
        self._tenant_admitted: dict[str, int] = {}  # guarded-by: _condition
        self._tenant_rejected: dict[str, int] = {}  # guarded-by: _condition
        self._tenant_reserved_bytes: dict[str, int] = {}  # guarded-by: _condition

    @classmethod
    def from_config(cls, config) -> "Governor":
        """Build from a ``ClusterConfig`` (slots + per-query budget)."""
        return cls(
            max_concurrent_queries=config.max_concurrent_queries,
            memory_budget_bytes=config.memory_budget_bytes,
        )

    @property
    def active_queries(self) -> int:
        """Queries currently holding a slot."""
        with self._condition:
            return self._active

    @property
    def aggregate_memory_limit(self) -> int | None:
        """Engine-wide reservation ceiling (``budget × slots``), if any."""
        if self.memory_budget_bytes is None:
            return None
        return self.memory_budget_bytes * self.max_concurrent_queries

    def _admissible(self, reserve_bytes: int, tenant: str | None = None) -> bool:  # requires-lock: _condition
        if self._active >= self.max_concurrent_queries:
            return False
        if (
            tenant is not None
            and self.max_queries_per_tenant is not None
            and self._tenant_active.get(tenant, 0) >= self.max_queries_per_tenant
        ):
            return False
        limit = self.aggregate_memory_limit
        return limit is None or self._active_bytes + reserve_bytes <= limit

    def _record_rejection(self, tenant: str | None) -> None:  # requires-lock: _condition
        self.rejected += 1
        if tenant is not None:
            self._tenant_rejected[tenant] = self._tenant_rejected.get(tenant, 0) + 1

    @contextmanager
    def admit(self, reserve_bytes: int | None = None, tenant: str | None = None):
        """Hold one query slot (and its memory reservation) for the body.

        With a ``tenant`` label the slot is charged to that tenant's
        account: the per-tenant cap (when configured) applies, and the
        tenant's admitted/rejected/reserved-bytes totals — the serve
        layer's per-tenant cost attribution — are updated.

        Raises :class:`~repro.errors.AdmissionRejectedError` when the wait
        queue is full or the slot wait times out.
        """
        reserve = (
            reserve_bytes
            if reserve_bytes is not None
            else (self.memory_budget_bytes or 0)
        )
        with self._condition:
            if not self._admissible(reserve, tenant):
                if self._waiting >= self.max_queue_depth:
                    self._record_rejection(tenant)
                    raise AdmissionRejectedError(
                        f"admission queue full ({self._waiting} waiting, "
                        f"{self._active} active of "
                        f"{self.max_concurrent_queries} slots); query shed"
                    )
                self._waiting += 1
                try:
                    granted = self._condition.wait_for(
                        lambda: self._admissible(reserve, tenant),
                        timeout=self.queue_timeout_sec,
                    )
                finally:
                    self._waiting -= 1
                if not granted:
                    self._record_rejection(tenant)
                    raise AdmissionRejectedError(
                        f"no query slot within {self.queue_timeout_sec:g}s "
                        f"({self._active} active of "
                        f"{self.max_concurrent_queries} slots); query shed"
                    )
            self._active += 1
            self._active_bytes += reserve
            self.admitted += 1
            if tenant is not None:
                self._tenant_active[tenant] = self._tenant_active.get(tenant, 0) + 1
                self._tenant_admitted[tenant] = (
                    self._tenant_admitted.get(tenant, 0) + 1
                )
                self._tenant_reserved_bytes[tenant] = (
                    self._tenant_reserved_bytes.get(tenant, 0) + reserve
                )
            if self._active > self.peak_concurrent:
                self.peak_concurrent = self._active
        try:
            yield self
        finally:
            with self._condition:
                self._active -= 1
                self._active_bytes -= reserve
                if tenant is not None:
                    self._tenant_active[tenant] -= 1
                self._condition.notify_all()

    def tenant_snapshot(self) -> dict[str, dict[str, int]]:
        """Per-tenant accounting: active, admitted, rejected, reserved bytes.

        Tenants appear once they have been admitted or rejected at least
        once; ``reserved_bytes`` is the lifetime total of memory
        reservations the tenant's admitted queries carried.
        """
        with self._condition:
            names = sorted(
                set(self._tenant_admitted) | set(self._tenant_rejected)
            )
            return {
                name: {
                    "active": self._tenant_active.get(name, 0),
                    "admitted": self._tenant_admitted.get(name, 0),
                    "rejected": self._tenant_rejected.get(name, 0),
                    "reserved_bytes": self._tenant_reserved_bytes.get(name, 0),
                }
                for name in names
            }

    def __repr__(self) -> str:
        with self._condition:
            return (
                f"Governor(slots={self.max_concurrent_queries}, "
                f"active={self._active}, admitted={self.admitted}, "
                f"rejected={self.rejected})"
            )
