"""Deterministic grace-hash spill join — the over-budget hash-join path.

When a hash-join build side outgrows the memory budget, both executors
swap the in-memory build/probe kernel for the classic grace hash join:
partition both inputs by an independent hash of the join key into a
deterministic fanout of disk buckets, then join each bucket pair
in-memory. Three properties matter:

- **Output equivalence**: every emitted row is tagged with its original
  probe-side index and the merged output is stably re-sorted by it, so
  the spilled join returns rows in *exactly* the order of the in-memory
  kernel (``executor._hash_join_partition``) — spilling is invisible to
  everything downstream, including the row-vs-vector equivalence suite.
- **Deterministic buckets**: bucket placement re-mixes ``stable_hash``
  through splitmix64, decorrelating it from the shuffle partitioner (a
  shuffled partition holds keys congruent mod the partition count, so
  reusing the same hash would collapse every row into one bucket). The
  same inputs always produce byte-identical bucket files.
- **Shared kernel**: the vectorized path converts affected batches to row
  tuples (cells stay term-ID-encoded) and runs this same kernel, so both
  paths charge identical ``governor.*`` counters and produce identical
  rows; the degraded path deliberately trades vector speed for parity.
"""

from __future__ import annotations

import os
import pickle
from operator import itemgetter

from ..engine.data import _mix_int, estimate_row_bytes, stable_hash
from ..errors import ExecutionError

#: XOR'd into ``stable_hash`` before re-mixing so bucket placement is
#: independent of the shuffle partitioner built on the same hash.
_BUCKET_SALT = 0x517CC1B727220A95


class SpillStore:
    """Bucket files for one grace-hash join, under the query's spill dir.

    Writes pickled row lists to ``directory`` and accounts the spilled
    volume into ``metrics.spill_bytes`` using the engine's
    ``estimate_row_bytes`` sizing — the same contract-equal estimate both
    execution paths use everywhere else, so the counter is byte-identical
    between the row and vector paths (actual pickle sizes are not: they
    depend on object-sharing patterns).

    Attributes:
        directory: pre-created directory the bucket files land in.
        metrics: the query's ``ExecutionMetrics`` (for spill accounting).
        paths: every file written, for lifecycle tests and cleanup audits.
    """

    __slots__ = ("directory", "metrics", "paths")

    def __init__(self, directory: str, metrics):
        self.directory = directory
        self.metrics = metrics
        self.paths: list[str] = []

    def write(self, name: str, rows: list) -> str:
        """Persist one bucket; returns the file path."""
        path = os.path.join(self.directory, f"{name}.pkl")
        with open(path, "wb") as handle:
            pickle.dump(rows, handle, protocol=4)
        self.paths.append(path)
        return path

    def read(self, path: str) -> list:
        """Load one bucket back."""
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def account_rows(self, rows: list[tuple]) -> None:
        """Charge spilled rows into ``metrics.spill_bytes``."""
        self.metrics.spill_bytes += sum(estimate_row_bytes(row) for row in rows)


def bucket_of(key: tuple, fanout: int) -> int:
    """Deterministic grace-hash bucket for a join key.

    ``stable_hash`` re-mixed through splitmix64: equal keys always share a
    bucket, and placement is independent of the shuffle partitioner.
    """
    return _mix_int(stable_hash(key) ^ _BUCKET_SALT) % fanout


def grace_hash_join_partition(
    left_rows: list[tuple],
    right_rows: list[tuple],
    left_key_idx: list[int],
    right_key_idx: list[int],
    right_keep_idx: list[int],
    how: str,
    fanout: int,
    store: SpillStore,
) -> list[tuple]:
    """Grace-hash join of one partition pair through disk buckets.

    Drop-in replacement for ``executor._hash_join_partition``: identical
    rows in identical order, with the build held one bucket at a time
    instead of whole. Both sides spill (probe rows tagged with their
    original index), then bucket pairs join in-memory and the merged
    output is stably sorted back into probe order.
    """
    left_buckets: list[list[tuple]] = [[] for _ in range(fanout)]
    for index, row in enumerate(left_rows):
        key = tuple(row[i] for i in left_key_idx)
        left_buckets[bucket_of(key, fanout)].append((index, row))
    right_buckets: list[list[tuple]] = [[] for _ in range(fanout)]
    for row in right_rows:
        key = tuple(row[i] for i in right_key_idx)
        right_buckets[bucket_of(key, fanout)].append(row)

    store.account_rows(left_rows)
    store.account_rows(right_rows)
    bucket_paths = []
    for bucket in range(fanout):
        bucket_paths.append(
            (
                store.write(f"bucket-{bucket:04d}-left", left_buckets[bucket]),
                store.write(f"bucket-{bucket:04d}-right", right_buckets[bucket]),
            )
        )
    # The in-memory buckets are dropped before probing: only one bucket
    # pair is resident at a time — the point of the grace hash.
    del left_buckets, right_buckets

    tagged: list[tuple[int, tuple]] = []
    for left_path, right_path in bucket_paths:
        tagged.extend(
            _probe_bucket(
                store.read(left_path),
                store.read(right_path),
                left_key_idx,
                right_key_idx,
                right_keep_idx,
                how,
            )
        )
    # Stable sort by original probe index: within one probe row the match
    # order is already the build-side insertion order (all equal keys share
    # a bucket), so this reproduces the in-memory kernel's output exactly.
    tagged.sort(key=itemgetter(0))
    return [row for _, row in tagged]


def _row_getter(indexes: list[int]):
    """Row → tuple-of-cells projection (mirrors ``executor._row_getter``)."""
    if not indexes:
        return lambda row: ()
    if len(indexes) == 1:
        index = indexes[0]
        return lambda row: (row[index],)
    return itemgetter(*indexes)


def _probe_bucket(
    left_pairs: list[tuple[int, tuple]],
    right_rows: list[tuple],
    left_key_idx: list[int],
    right_key_idx: list[int],
    right_keep_idx: list[int],
    how: str,
) -> list[tuple[int, tuple]]:
    """Join one bucket pair in memory, tagging outputs with probe indexes.

    A faithful port of ``executor._hash_join_partition`` (single-key fast
    path, NULL-keys-never-match, left/semi/anti emission rules) over
    ``(original_index, row)`` probe pairs.
    """
    build: dict = {}
    output: list[tuple[int, tuple]] = []
    if len(left_key_idx) == 1:
        li, ri = left_key_idx[0], right_key_idx[0]
        build_get = build.get
        for row in right_rows:
            key = row[ri]
            if key is not None:
                bucket = build_get(key)
                if bucket is None:
                    build[key] = [row]
                else:
                    bucket.append(row)
        keep = _row_getter(right_keep_idx)
        if how == "inner":
            for index, row in left_pairs:
                matches = build_get(row[li])
                if matches:
                    for match in matches:
                        output.append((index, row + keep(match)))
            return output
        if how == "left":
            nulls = (None,) * len(right_keep_idx)
            for index, row in left_pairs:
                matches = build_get(row[li])
                if matches:
                    for match in matches:
                        output.append((index, row + keep(match)))
                else:
                    output.append((index, row + nulls))
            return output
        if how == "semi":
            return [(index, row) for index, row in left_pairs if build_get(row[li])]
        if how == "anti":
            return [
                (index, row) for index, row in left_pairs if not build_get(row[li])
            ]
        raise ExecutionError(f"unsupported join type {how!r}")
    for row in right_rows:
        key = tuple(row[i] for i in right_key_idx)
        if any(part is None for part in key):
            continue  # SQL semantics: NULL keys never match
        build.setdefault(key, []).append(row)
    for index, row in left_pairs:
        key = tuple(row[i] for i in left_key_idx)
        if any(part is None for part in key):
            matches = None
        else:
            matches = build.get(key)
        if how == "inner":
            if matches:
                for match in matches:
                    output.append((index, row + tuple(match[i] for i in right_keep_idx)))
        elif how == "left":
            if matches:
                for match in matches:
                    output.append((index, row + tuple(match[i] for i in right_keep_idx)))
            else:
                output.append((index, row + tuple(None for _ in right_keep_idx)))
        elif how == "semi":
            if matches:
                output.append((index, row))
        elif how == "anti":
            if not matches:
                output.append((index, row))
        else:
            raise ExecutionError(f"unsupported join type {how!r}")
    return output
