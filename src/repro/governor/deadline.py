"""Per-query deadlines with cooperative cancellation.

A :class:`Deadline` tracks two clocks at once:

- **wall time** via an injectable monotonic clock (``time.monotonic`` by
  default — never ``time.time``, which the determinism lint bans from the
  data plane), so a runaway query is cut off in real seconds;
- **simulated waits** charged explicitly: the fault injector's retry
  backoff and straggler drag are simulated seconds that never elapse on
  the wall clock, yet a production deadline would count them. Charging
  them into the deadline makes timeout behaviour *deterministic* under a
  seeded fault plan — the property every governor test relies on.

The deadline never interrupts anything itself: the executors poll it at
stage boundaries and the fault injector polls it inside the retry loop
(cooperative cancellation, like Spark's task-kill flag).
"""

from __future__ import annotations

import time
from typing import Callable

from ..errors import ValidationError


class Deadline:
    """A fixed per-query time budget, polled cooperatively.

    Attributes:
        timeout_sec: the budget, in seconds.
        charged_sec: simulated seconds (retry backoff, straggler drag)
            counted against the budget in addition to wall time.
    """

    __slots__ = ("timeout_sec", "charged_sec", "_clock", "_started")

    def __init__(
        self,
        timeout_sec: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if timeout_sec <= 0:
            raise ValidationError("query timeout must be positive")
        self.timeout_sec = float(timeout_sec)
        self.charged_sec = 0.0
        self._clock = clock
        self._started = clock()

    def charge(self, seconds: float) -> None:
        """Count simulated seconds (e.g. retry backoff) against the budget."""
        self.charged_sec += seconds

    @property
    def elapsed_sec(self) -> float:
        """Wall seconds since creation plus charged simulated seconds."""
        return (self._clock() - self._started) + self.charged_sec

    @property
    def remaining_sec(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.timeout_sec - self.elapsed_sec

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.elapsed_sec > self.timeout_sec

    def __repr__(self) -> str:
        return (
            f"Deadline(timeout={self.timeout_sec}s, "
            f"elapsed={self.elapsed_sec:.3f}s)"
        )
