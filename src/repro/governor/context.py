"""The per-query governor context: budget + deadline + spill lifecycle.

One :class:`GovernorContext` is attached to each query's
``ExecutionMetrics`` (the same non-counter side-channel the fault injector
uses), so both executors reach it through the ``metrics`` object they
already thread everywhere — no new plumbing, and one ``is None`` check of
overhead when governance is off.

The context is the single decision point for the degradation ladder:

1. a broadcast build side over budget degrades to a shuffle join
   (``governor.degraded_joins``);
2. a hash-join build over budget runs the grace-hash spill kernel
   (``governor.spills`` / ``spill_bytes`` / ``spill_partitions``);
3. non-spillable wide sites (explode, distinct, sort, aggregate) record
   the trip (``governor.budget_trips``) and proceed — observability
   without wrong answers.

Because every decision input (the contract-equal byte estimates, the
seeded memory-pressure shrinks, the simulated retry waits) is identical
between the row and vectorized paths, the two paths always take the same
rungs of the ladder.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Callable

from ..errors import QueryCancelledError, QueryTimeoutError
from .budget import MemoryBudget
from .deadline import Deadline
from .spill import SpillStore


class GovernorContext:
    """Per-query governance state shared by both execution paths.

    Attributes:
        budget: the memory budget, or ``None`` when unbudgeted.
        deadline: the query deadline, or ``None`` when untimed.
        spill_root: directory spill files go under (system temp dir when
            not configured); the per-query directory inside it is created
            lazily on first spill and always removed by :meth:`cleanup`.
        spill_stores: every :class:`SpillStore` this query opened, so the
            lifecycle tests can audit the files written.
    """

    def __init__(
        self,
        budget_bytes: int | None = None,
        timeout_sec: float | None = None,
        spill_root: str | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget = MemoryBudget(budget_bytes) if budget_bytes is not None else None
        self.deadline = Deadline(timeout_sec, clock) if timeout_sec is not None else None
        self.spill_root = spill_root
        self.spill_stores: list[SpillStore] = []
        self._query_spill_dir: str | None = None
        self._spill_seq = 0
        self._cancel_reason: str | None = None

    # -- stage-boundary polling ------------------------------------------------

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Request cooperative cancellation; honoured at the next poll."""
        self._cancel_reason = reason

    def on_stage(self, metrics) -> None:
        """Stage-boundary poll: cancellation first, then the deadline.

        Raises :class:`~repro.errors.QueryCancelledError` or
        :class:`~repro.errors.QueryTimeoutError` carrying the partial
        ``metrics`` so EXPLAIN ANALYZE can render the work already done.
        """
        if self._cancel_reason is not None:
            raise QueryCancelledError(
                f"query cancelled: {self._cancel_reason}", metrics=metrics
            )
        deadline = self.deadline
        if deadline is not None and deadline.expired:
            raise QueryTimeoutError(
                f"query exceeded its {deadline.timeout_sec:g}s deadline "
                f"(elapsed {deadline.elapsed_sec:.3f}s, "
                f"{deadline.charged_sec:.3f}s of it simulated waits)",
                metrics=metrics,
            )

    def on_retry_wait(self, metrics, seconds: float) -> None:
        """Charge a simulated retry backoff into the deadline, then poll.

        Called from the fault injector's retry loop: backoff seconds never
        elapse on the wall clock, but a production deadline counts them —
        charging them keeps timeout behaviour deterministic under a seeded
        fault plan.
        """
        if self.deadline is not None:
            self.deadline.charge(seconds)
        self.on_stage(metrics)

    # -- memory charging -------------------------------------------------------

    def charge_site(self, metrics, nbytes: int) -> None:
        """Charge a non-spillable wide site (explode/distinct/sort/aggregate).

        A trip is recorded in ``governor.budget_trips`` and execution
        proceeds: these operators have no cheaper shape to degrade to, so
        the governor observes rather than aborts.
        """
        budget = self.budget
        if budget is None:
            return
        if budget.charge(nbytes):
            metrics.budget_trips += 1
        metrics.peak_memory_bytes = budget.peak_bytes

    def plan_join_build(self, metrics, nbytes: int, span=None) -> int:
        """Charge a hash-join build; return the grace-hash fanout (0 = fits).

        A tripped build returns the deterministic spill fanout and charges
        ``governor.spills`` / ``spill_partitions`` once per join.
        """
        budget = self.budget
        if budget is None:
            return 0
        tripped = budget.charge(nbytes)
        metrics.peak_memory_bytes = budget.peak_bytes
        if not tripped:
            return 0
        fanout = budget.spill_fanout(nbytes)
        metrics.spills += 1
        metrics.spill_partitions += fanout
        if span is not None:
            span.set("spill_partitions", fanout)
        return fanout

    def should_degrade_broadcast(self, metrics, build_bytes: int, span=None) -> bool:
        """Whether a broadcast build of ``build_bytes`` must fall back to a
        shuffle join; charges ``governor.degraded_joins`` when it does."""
        budget = self.budget
        if budget is None or not budget.would_trip(build_bytes):
            return False
        metrics.degraded_joins += 1
        if span is not None:
            span.set("degraded", "broadcast→shuffle (budget)")
        return True

    def apply_memory_pressure(self, metrics, fraction: float) -> int | None:
        """A memory-pressure fault: shrink the effective budget mid-query.

        Returns the new effective budget, or ``None`` when the query is
        unbudgeted (pressure on an unbudgeted query is a no-op).
        """
        if self.budget is None:
            return None
        metrics.memory_pressure_events += 1
        return self.budget.shrink(fraction)

    # -- spill-file lifecycle --------------------------------------------------

    def new_spill_store(self, metrics) -> SpillStore:
        """A fresh bucket directory for one grace-hash kernel invocation.

        Directories are numbered in execution order (``spill-0000``, …),
        which is deterministic per query plan, so reruns write the same
        relative paths with the same contents.
        """
        if self._query_spill_dir is None:
            root = self.spill_root or tempfile.gettempdir()
            os.makedirs(root, exist_ok=True)
            self._query_spill_dir = tempfile.mkdtemp(prefix="prost-spill-", dir=root)
        directory = os.path.join(self._query_spill_dir, f"spill-{self._spill_seq:04d}")
        self._spill_seq += 1
        os.makedirs(directory, exist_ok=True)
        store = SpillStore(directory, metrics)
        self.spill_stores.append(store)
        return store

    @property
    def spill_paths(self) -> list[str]:
        """Every spill file this query wrote (for lifecycle audits)."""
        paths: list[str] = []
        for store in self.spill_stores:
            paths.extend(store.paths)
        return paths

    def cleanup(self) -> None:
        """Remove the query's spill directory; safe to call repeatedly.

        Runs in the session's ``finally`` so success, timeout, and
        injected-fault abort all leave no orphaned temp files.
        """
        if self._query_spill_dir is not None:
            shutil.rmtree(self._query_spill_dir, ignore_errors=True)
            self._query_spill_dir = None

    def __repr__(self) -> str:
        return (
            f"GovernorContext(budget={self.budget!r}, deadline={self.deadline!r}, "
            f"spills={len(self.spill_stores)})"
        )
