"""Seedable random RDF graph generator for differential testing.

Unlike :mod:`repro.watdiv`, which models a realistic e-commerce universe,
this generator optimizes for *bug surface per triple*: small entity pools so
joins actually connect, a tunable share of multi-valued (subject, predicate)
pairs so the Property Table gets list columns that must explode correctly,
and a tunable literal ratio so filters and literal-object patterns have
something to bite on. Predicates reuse the WatDiv vocabulary
(:data:`repro.watdiv.schema.ALL_PROPERTIES`) so generated graphs exercise
the same IRIs — including the known multi-valued ones — as the benchmark
workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.terms import IRI, XSD_INTEGER, Literal, Triple
from ..watdiv.schema import ALL_PROPERTIES, MULTIVALUED_PROPERTIES, WSDBM
from ..errors import ValidationError


@dataclass(frozen=True)
class GraphGenConfig:
    """Knobs of the random graph generator.

    Attributes:
        num_triples: target triple count (duplicates are re-rolled, so the
            result has exactly this many distinct triples unless the
            configuration space is too small).
        num_entities: size of the IRI entity pool shared by subjects and
            objects; smaller pools make denser, more join-friendly graphs.
        num_predicates: how many predicates to draw from the WatDiv
            vocabulary (multi-valued ones are included first so the
            Property Table always gets list columns to explode).
        multi_valued_density: probability that a new triple reuses an
            existing (subject, predicate) pair with a fresh object, forcing
            multi-valued predicates.
        literal_ratio: probability that an object is a literal rather than
            an entity IRI.
        integer_ratio: among literals, probability of an ``xsd:integer``
            (for comparison filters) instead of a plain string.
    """

    num_triples: int = 40
    num_entities: int = 10
    num_predicates: int = 6
    multi_valued_density: float = 0.25
    literal_ratio: float = 0.3
    integer_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.num_triples < 1:
            raise ValidationError("num_triples must be positive")
        if self.num_entities < 2:
            raise ValidationError("num_entities must be at least 2")
        if self.num_predicates < 1:
            raise ValidationError("num_predicates must be positive")
        for name in ("multi_valued_density", "literal_ratio", "integer_ratio"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{name} must be within [0, 1]")


def predicate_pool(count: int) -> list[IRI]:
    """The first ``count`` predicates, multi-valued WatDiv properties first.

    Leading with the multi-valued vocabulary guarantees that even tiny
    configurations produce list columns in PRoST's Property Table.
    """
    multivalued = [p for p in ALL_PROPERTIES if p in MULTIVALUED_PROPERTIES]
    single = [p for p in ALL_PROPERTIES if p not in MULTIVALUED_PROPERTIES]
    ordered = multivalued + single
    if count > len(ordered):
        ordered = ordered + [
            f"{WSDBM}fuzzProperty{i}" for i in range(count - len(ordered))
        ]
    return [IRI(value) for value in ordered[:count]]


#: Small pool of string lexical forms; repeats make joins on literals likely.
_STRING_VALUES = ("alpha", "beta", "gamma", "delta", "x", "y")


def generate_graph(config: GraphGenConfig, rng: random.Random) -> Graph:
    """Generate a random graph; deterministic for a given ``rng`` state."""
    entities = [IRI(f"{WSDBM}Entity{i}") for i in range(config.num_entities)]
    predicates = predicate_pool(config.num_predicates)
    graph = Graph()
    pairs: list[tuple[IRI, IRI]] = []  # (subject, predicate) pairs seen so far

    attempts = 0
    max_attempts = config.num_triples * 20
    while len(graph) < config.num_triples and attempts < max_attempts:
        attempts += 1
        if pairs and rng.random() < config.multi_valued_density:
            subject, predicate = rng.choice(pairs)
        else:
            subject = rng.choice(entities)
            predicate = rng.choice(predicates)
        obj = _random_object(config, rng, entities)
        if graph.add(Triple(subject, predicate, obj)):
            pairs.append((subject, predicate))
    return graph


def _random_object(config: GraphGenConfig, rng: random.Random, entities):
    if rng.random() < config.literal_ratio:
        if rng.random() < config.integer_ratio:
            return Literal(str(rng.randint(0, 20)), datatype=XSD_INTEGER)
        return Literal(rng.choice(_STRING_VALUES))
    return rng.choice(entities)
