"""Randomized differential-testing harness.

The fuzzing subsystem behind ``tests/fuzz/`` and the ``prost-repro fuzz``
CLI subcommand. Three parts:

- :mod:`~repro.testing.graphgen` — seedable random RDF graphs over the
  WatDiv vocabulary (configurable predicate count, multi-valued density,
  literal ratio);
- :mod:`~repro.testing.querygen` — random BGP queries in star, path,
  snowflake, and cyclic shapes with optional FILTER / DISTINCT / LIMIT and
  unbound predicates, emitted as both AST and SPARQL text;
- :mod:`~repro.testing.oracle` / :mod:`~repro.testing.differential` — a
  brute-force nested-loop reference oracle plus the runner that executes
  every generated query on all engines, asserts multiset-equal solutions,
  and shrinks counterexamples to minimal (graph, query) pairs;
- :mod:`~repro.testing.interleave` — a seeded cooperative-interleaving
  scheduler replaying deterministic thread schedules over the serving
  layer (the dynamic counterpart of the static lockset checker in
  :mod:`repro.analysis.concurrency`).

Everything is deterministic given a seed: a failure report prints the seed
and a one-command replay line.
"""

from .differential import (
    ALL_SYSTEMS,
    CLUSTER_SYSTEMS,
    DifferentialMismatch,
    DifferentialRunner,
    FaultStats,
    FuzzReport,
    ServedProstEngine,
    chaos_plan_seed,
    chaos_seed_from_env,
    fuzz_defaults,
    run_fuzz,
    serve_mode_from_env,
)
from .graphgen import GraphGenConfig, generate_graph
from .interleave import (
    INTERLEAVE_SEEDS_ENV,
    DeadlockError,
    InstrumentedLock,
    InterleaveError,
    InterleaveResult,
    InterleaveScheduler,
    SchedulerStallError,
    instrument_methods,
    interleave_seeds,
    replay_instructions,
    sweep,
)
from .oracle import BruteForceOracle
from .querygen import QueryGenConfig, generate_query, serialize_query

__all__ = [
    "ALL_SYSTEMS",
    "CLUSTER_SYSTEMS",
    "BruteForceOracle",
    "DeadlockError",
    "DifferentialMismatch",
    "DifferentialRunner",
    "FaultStats",
    "FuzzReport",
    "GraphGenConfig",
    "INTERLEAVE_SEEDS_ENV",
    "InstrumentedLock",
    "InterleaveError",
    "InterleaveResult",
    "InterleaveScheduler",
    "QueryGenConfig",
    "SchedulerStallError",
    "ServedProstEngine",
    "chaos_plan_seed",
    "chaos_seed_from_env",
    "fuzz_defaults",
    "generate_graph",
    "generate_query",
    "instrument_methods",
    "interleave_seeds",
    "replay_instructions",
    "run_fuzz",
    "serialize_query",
    "serve_mode_from_env",
    "sweep",
]
