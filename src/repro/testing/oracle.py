"""Brute-force nested-loop oracle for the differential harness.

Deliberately the dumbest possible BGP evaluator: no partitioning, no
indexes, no join reordering, no optimizer, no cost model. Each triple
pattern is matched against *every* triple of the graph, in query order,
extending a binding set; the result is post-processed exactly as the engines
do (filters, projection, DISTINCT, deterministic sort, OFFSET/LIMIT).

Semantics pinned here (and documented in README/DESIGN):

- **bag semantics** — pattern matching yields a multiset of solution
  mappings; only an explicit ``DISTINCT`` collapses duplicates;
- **unbound variables** — never produced by plain BGPs (every projected
  variable is bound in every solution); a variable in a filter that is not
  bound makes the filter false (SPARQL type-error semantics, shared with
  :func:`repro.rdf.reference.evaluate_filter`);
- **LIMIT/OFFSET without ORDER BY** — applied *after* the deterministic
  :func:`~repro.core.results.solution_sort_key` sort, the convention every
  engine in this repository follows, so sliced results stay comparable.

This oracle intentionally duplicates (rather than reuses) the matching
logic of :class:`repro.rdf.reference.ReferenceEvaluator`: the reference
evaluator is index-assisted and shares helper code with the engines, while
a correctness oracle should have as little machinery in common with the
systems under test as possible.
"""

from __future__ import annotations

from ..rdf.graph import Graph
from ..rdf.reference import evaluate_filter
from ..rdf.terms import Term, Triple
from ..sparql.algebra import SelectQuery, TriplePattern, Variable
from ..core.results import solution_sort_key
from ..errors import ValidationError

#: One solution mapping: variable name → bound term.
Binding = dict[str, Term]


class BruteForceOracle:
    """Nested-loop evaluator over an in-memory graph (the fuzzing oracle)."""

    def __init__(self, graph: Graph):
        self._triples: list[Triple] = list(graph)

    def evaluate(self, query: SelectQuery) -> list[tuple[Term | None, ...]]:
        """All solutions of ``query``, post-processed like every engine."""
        if query.is_union or query.optional_groups or query.aggregates:
            raise ValidationError(
                "the fuzzing oracle evaluates the plain BGP fragment only"
            )
        bindings = self._match(list(query.patterns))
        bindings = [
            binding
            for binding in bindings
            if all(evaluate_filter(f, binding) for f in query.filters)
        ]
        rows = [
            tuple(binding.get(variable.name) for variable in query.projection)
            for binding in bindings
        ]
        if query.distinct:
            seen: set[tuple] = set()
            unique: list[tuple[Term | None, ...]] = []
            for row in rows:
                key = tuple(None if term is None else term.n3() for term in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        rows.sort(key=solution_sort_key)
        if query.offset:
            rows = rows[query.offset :]
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows

    def solution_count(self, query: SelectQuery) -> int:
        """Number of solutions (after DISTINCT and slicing)."""
        return len(self.evaluate(query))

    # -- matching -------------------------------------------------------------

    def _match(self, patterns: list[TriplePattern]) -> list[Binding]:
        bindings: list[Binding] = [{}]
        for pattern in patterns:  # query order: no reordering whatsoever
            extended: list[Binding] = []
            for binding in bindings:
                for triple in self._triples:  # full scan: no indexes
                    candidate = _unify(pattern, triple, binding)
                    if candidate is not None:
                        extended.append(candidate)
            bindings = extended
            if not bindings:
                break
        return bindings


def _unify(pattern: TriplePattern, triple: Triple, binding: Binding) -> Binding | None:
    """Extend ``binding`` so ``pattern`` matches ``triple``, or ``None``."""
    result: Binding | None = None
    for slot, value in zip(
        (pattern.subject, pattern.predicate, pattern.object),
        (triple.subject, triple.predicate, triple.object),
    ):
        if isinstance(slot, Variable):
            bound = binding.get(slot.name) if result is None else result.get(
                slot.name, binding.get(slot.name)
            )
            if bound is None:
                if result is None:
                    result = dict(binding)
                result[slot.name] = value
            elif bound != value:
                return None
        elif slot != value:
            return None
    return dict(binding) if result is None else result
