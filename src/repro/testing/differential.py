"""Differential runner: oracle vs every engine, with counterexample shrinking.

One *case* is a (graph, query) pair. The runner executes the query on the
:class:`~repro.testing.oracle.BruteForceOracle` and on each system under
test — PRoST (``mixed`` and ``vp``), S2RDF, SPARQLGX, and Rya — and asserts
**multiset equality** of the solution rows. A failing case is shrunk to a
minimal counterexample by dropping graph triples and query patterns while
the mismatch still reproduces, then reported with its seed, the shrunken
graph, the shrunken query, and a one-command replay line.
"""

from __future__ import annotations

import inspect
import os
import random
from collections import Counter
from dataclasses import dataclass, field, replace

from ..engine.cluster import ClusterConfig
from ..rdf.graph import Graph
from ..rdf.terms import Term, Triple
from ..sparql.algebra import SelectQuery, Variable
from ..sparql.parser import parse_sparql
from .graphgen import GraphGenConfig, generate_graph
from .oracle import BruteForceOracle
from .querygen import QueryGenConfig, generate_query, serialize_query
from ..errors import ValidationError

#: Systems the differential harness covers, in reporting order.
ALL_SYSTEMS = ("prost-mixed", "prost-vp", "s2rdf", "sparqlgx", "rya")

#: Systems that execute on the simulated cluster — the ones chaos mode can
#: inject faults into (Rya runs on the key-value store instead).
CLUSTER_SYSTEMS = ("prost-mixed", "prost-vp", "s2rdf", "sparqlgx")

#: Environment variables honored by both pytest's opt-in fuzz test and the
#: ``prost-repro fuzz`` CLI subcommand (one resolution code path for both).
SEED_ENV = "REPRO_FUZZ_SEED"
ITERATIONS_ENV = "REPRO_FUZZ_ITERATIONS"
#: Enables chaos mode and picks its base seed when set (CLI: ``--chaos``).
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"
#: When truthy, PRoST engines run behind a :class:`ServedProstEngine` so the
#: whole differential corpus also exercises the serving layer's cached-plan
#: and batched execution paths (CI runs a leg with a 2-entry plan cache).
SERVE_MODE_ENV = "REPRO_SERVE_MODE"


def chaos_seed_from_env() -> int | None:
    """The chaos base seed requested via :data:`CHAOS_SEED_ENV`, if any."""
    value = os.environ.get(CHAOS_SEED_ENV)
    return int(value) if value is not None else None


def serve_mode_from_env() -> bool:
    """Whether :data:`SERVE_MODE_ENV` asks for served PRoST engines."""
    return os.environ.get(SERVE_MODE_ENV, "0") not in ("0", "", "false")


class ServedProstEngine:
    """A :class:`~repro.core.prost.ProstEngine` behind the serving layer.

    The serve-mode differential check: every query runs three ways through
    one :class:`~repro.serve.server.QueryServer` — cold (first call plans
    and populates the plan cache), cached-plan (second call must hit the
    cache, or at least replan identically after an eviction), and batched
    (a two-copy batch through :func:`~repro.serve.batching.execute_batch`,
    exercising deduplication and shared scans). All three row sets must be
    multiset-equal *to each other*; the cached-plan rows are returned, so
    the harness's oracle comparison then holds the cached path to the
    brute-force ground truth as well.

    The result cache is deliberately disabled: a result-cache hit would
    answer the later runs from the first run's rows, proving nothing.
    """

    def __init__(self, strategy: str, cluster_config: ClusterConfig | None = None):
        from ..core.prost import ProstEngine
        from ..serve import QueryServer

        self.engine = ProstEngine(strategy=strategy, cluster_config=cluster_config)
        self.server = QueryServer(self.engine, result_cache_size=0)

    @property
    def session(self):
        """The engine's session (chaos mode reads its recovery counters)."""
        return self.engine.session

    def load(self, graph: Graph):
        return self.server.load(graph)

    def sparql(self, query, tracer=None):
        from ..serve.batching import execute_batch

        cold = self.server.sparql(query, tracer=tracer)
        cached = self.server.sparql(query)
        batched = execute_batch(self.server, [query, query])
        reference = Counter(map(row_key, cold.rows))
        for label, result in (
            ("cached-plan", cached),
            ("batched[0]", batched[0]),
            ("batched[1]", batched[1]),
        ):
            if Counter(map(row_key, result.rows)) != reference:
                raise ValidationError(
                    f"serve mode: {label} execution diverged from cold "
                    f"execution ({len(result.rows)} vs {len(cold.rows)} rows)"
                )
        return cached


def chaos_plan_seed(chaos_seed: int, case_seed: int) -> int:
    """The fault-plan seed for one fuzz iteration: a fresh fault plan per
    case seed, all replayable from (chaos base seed, case seed)."""
    return chaos_seed * 1_000_003 + case_seed


def fuzz_defaults(seed: int = 0, iterations: int = 20) -> tuple[int, int]:
    """(seed, iterations), with :data:`SEED_ENV`/:data:`ITERATIONS_ENV`
    overriding the passed defaults when set."""
    env_seed = os.environ.get(SEED_ENV)
    env_iterations = os.environ.get(ITERATIONS_ENV)
    if env_seed is not None:
        seed = int(env_seed)
    if env_iterations is not None:
        iterations = int(env_iterations)
    return seed, iterations


def make_system(name: str, cluster_config: ClusterConfig | None = None):
    """A fresh, unloaded engine instance for a system name.

    ``cluster_config`` applies to the systems that run on the simulated
    cluster (chaos mode passes one carrying a ``fault_seed``); Rya runs on
    the key-value store and ignores it. With :data:`SERVE_MODE_ENV` set,
    the PRoST engines come wrapped in :class:`ServedProstEngine`.
    """
    from ..baselines import Rya, S2Rdf, SparqlGx
    from ..core.prost import ProstEngine

    if name == "prost-mixed":
        if serve_mode_from_env():
            return ServedProstEngine("mixed", cluster_config=cluster_config)
        return ProstEngine(strategy="mixed", cluster_config=cluster_config)
    if name == "prost-vp":
        if serve_mode_from_env():
            return ServedProstEngine("vp", cluster_config=cluster_config)
        return ProstEngine(strategy="vp", cluster_config=cluster_config)
    if name == "s2rdf":
        return S2Rdf(cluster_config=cluster_config)
    if name == "sparqlgx":
        return SparqlGx(cluster_config=cluster_config)
    if name == "rya":
        return Rya()
    raise ValidationError(f"unknown system {name!r}")


@dataclass
class FaultStats:
    """Recovery and governance counters aggregated across a run's sessions."""

    task_retries: int = 0
    fetch_retries: int = 0
    speculative_tasks: int = 0
    recomputed_tasks: int = 0
    worker_losses: int = 0
    spills: int = 0
    degraded_joins: int = 0
    budget_trips: int = 0
    memory_pressure_events: int = 0

    @property
    def any(self) -> bool:
        return bool(
            self.task_retries
            or self.fetch_retries
            or self.speculative_tasks
            or self.recomputed_tasks
            or self.worker_losses
        )

    @property
    def any_governed(self) -> bool:
        """Whether the governor intervened anywhere in the run."""
        return bool(
            self.spills
            or self.degraded_joins
            or self.budget_trips
            or self.memory_pressure_events
        )

    def add_system(self, system) -> None:
        """Fold in a loaded engine's session-level metrics (if it has any)."""
        session = getattr(system, "session", None)
        if session is None:
            return
        metrics = session.cluster.session_metrics
        self.task_retries += metrics.task_retries
        self.fetch_retries += metrics.fetch_retries
        self.speculative_tasks += metrics.speculative_tasks
        self.recomputed_tasks += metrics.recomputed_tasks
        self.worker_losses += metrics.worker_losses
        self.spills += metrics.spills
        self.degraded_joins += metrics.degraded_joins
        self.budget_trips += metrics.budget_trips
        self.memory_pressure_events += metrics.memory_pressure_events

    def merge(self, other: "FaultStats") -> None:
        self.task_retries += other.task_retries
        self.fetch_retries += other.fetch_retries
        self.speculative_tasks += other.speculative_tasks
        self.recomputed_tasks += other.recomputed_tasks
        self.worker_losses += other.worker_losses
        self.spills += other.spills
        self.degraded_joins += other.degraded_joins
        self.budget_trips += other.budget_trips
        self.memory_pressure_events += other.memory_pressure_events

    def summary(self) -> str:
        text = (
            f"task_retries={self.task_retries} fetch_retries={self.fetch_retries} "
            f"speculative={self.speculative_tasks} recomputed={self.recomputed_tasks} "
            f"worker_losses={self.worker_losses}"
        )
        if self.any_governed:
            text += (
                f" spills={self.spills} degraded_joins={self.degraded_joins} "
                f"budget_trips={self.budget_trips} "
                f"memory_pressure={self.memory_pressure_events}"
            )
        return text


def row_key(row: tuple[Term | None, ...]) -> tuple[str | None, ...]:
    """Hashable, serialization-based identity of one solution row."""
    return tuple(None if term is None else term.n3() for term in row)


@dataclass
class DifferentialMismatch:
    """One verified disagreement between a system and the oracle.

    ``kind`` is ``"rows"`` (different solutions), ``"error"`` (the system
    raised), or ``"round-trip"`` (serialized SPARQL did not parse back to
    the generated AST — a harness/translator bug, no system involved).
    """

    kind: str
    system: str
    seed: int
    query_index: int
    query_text: str
    graph_ntriples: str
    detail: str
    expected: list[tuple] = field(default_factory=list)
    actual: list[tuple] = field(default_factory=list)
    chaos_seed: int | None = None
    #: JSON-ready span trace of the shrunken counterexample's re-run, when
    #: the diverging system supports tracing (``Tracer.to_dict()`` shape).
    trace: dict | None = None

    @property
    def replay_command(self) -> str:
        command = (
            "PYTHONPATH=src python -m repro.cli fuzz "
            f"--seed {self.seed} --iterations 1"
        )
        if self.chaos_seed is not None:
            command += f" --chaos-seed {self.chaos_seed}"
        return command

    def format(self) -> str:
        triple_count = sum(
            1 for line in self.graph_ntriples.splitlines() if line.strip()
        )
        lines = [
            f"differential mismatch [{self.kind}] system={self.system} "
            f"seed={self.seed} query#{self.query_index}",
            f"replay: {self.replay_command}",
            "query:",
            f"  {self.query_text}",
            f"graph ({triple_count} triples):",
        ]
        lines.extend(f"  {line}" for line in self.graph_ntriples.splitlines() if line)
        lines.append(self.detail)
        if self.trace is not None:
            spans = sum(_count_spans(span) for span in self.trace.get("spans", ()))
            lines.append(
                f"trace: {spans} spans recorded (write with fuzz --trace-out)"
            )
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run over a range of seeds."""

    seeds: list[int]
    cases: int
    mismatches: list[DifferentialMismatch]
    fault_stats: FaultStats | None = None

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} MISMATCH(ES)"
        if not self.seeds:
            return f"fuzz: 0 cases over 0 seed(s): {status}"
        text = (
            f"fuzz: {self.cases} cases over {len(self.seeds)} seed(s) "
            f"[{self.seeds[0]}..{self.seeds[-1]}]: {status}"
        )
        if self.fault_stats is not None:
            text += f"\nchaos: {self.fault_stats.summary()}"
        return text


class DifferentialRunner:
    """Generates seeded cases and checks every system against the oracle.

    With ``chaos_seed`` set, every cluster-backed system runs each seed's
    queries under a seeded random :class:`~repro.engine.faults.FaultPlan`
    (a fresh plan per case seed, derived via :func:`chaos_plan_seed`). The
    oracle is fault-free, so multiset equality doubles as the recovery
    correctness bar: injected faults must never change a result row.
    """

    def __init__(
        self,
        systems: tuple[str, ...] = ALL_SYSTEMS,
        query_config: QueryGenConfig | None = None,
        queries_per_graph: int = 10,
        shrink: bool = True,
        chaos_seed: int | None = None,
        memory_budget_bytes: int | None = None,
        query_timeout_sec: float | None = None,
    ):
        self.systems = systems
        self.query_config = query_config or QueryGenConfig()
        self.queries_per_graph = queries_per_graph
        self.shrink = shrink
        self.chaos_seed = chaos_seed
        self.memory_budget_bytes = memory_budget_bytes
        self.query_timeout_sec = query_timeout_sec

    def _cluster_config(self, seed: int) -> ClusterConfig | None:
        governed = (
            self.memory_budget_bytes is not None
            or self.query_timeout_sec is not None
        )
        if self.chaos_seed is None and not governed:
            return None
        fault_seed = (
            chaos_plan_seed(self.chaos_seed, seed)
            if self.chaos_seed is not None
            else None
        )
        return ClusterConfig(
            fault_seed=fault_seed,
            memory_budget_bytes=self.memory_budget_bytes,
            query_timeout_sec=self.query_timeout_sec,
        )

    # -- seeded case generation ----------------------------------------------

    def generate_case(self, seed: int) -> tuple[Graph, list[SelectQuery]]:
        """The (graph, queries) pair a seed denotes — shared by pytest, the
        CLI, and failure replay, so a printed seed is always reproducible."""
        rng = random.Random(seed)
        graph = generate_graph(_vary_graph_config(rng), rng)
        queries = [
            generate_query(graph, self.query_config, rng)
            for _ in range(self.queries_per_graph)
        ]
        return graph, queries

    # -- checking -------------------------------------------------------------

    def run_seed(self, seed: int) -> list[DifferentialMismatch]:
        """Check every query of one seed on every system; loaded engines are
        reused across the seed's queries (loading dominates the runtime)."""
        mismatches, _ = self.run_seed_with_stats(seed)
        return mismatches

    def run_seed_with_stats(
        self, seed: int
    ) -> tuple[list[DifferentialMismatch], FaultStats]:
        """Like :meth:`run_seed`, also aggregating the recovery counters the
        engines' sessions accumulated (all zero outside chaos mode)."""
        graph, queries = self.generate_case(seed)
        oracle = BruteForceOracle(graph)
        graph_nt = graph.to_ntriples()
        config = self._cluster_config(seed)

        mismatches: list[DifferentialMismatch] = []
        stats = FaultStats()
        loaded = {}
        for name in self.systems:
            try:
                system = make_system(name, cluster_config=config)
                system.load(graph)
                loaded[name] = system
            except Exception as error:  # noqa: BLE001 — report, don't crash
                mismatches.append(
                    DifferentialMismatch(
                        kind="error",
                        system=name,
                        seed=seed,
                        query_index=-1,
                        query_text="(load)",
                        graph_ntriples=graph_nt,
                        detail=f"load failed: {type(error).__name__}: {error}",
                        chaos_seed=self.chaos_seed,
                    )
                )

        for index, query in enumerate(queries):
            text = serialize_query(query)
            parsed = parse_sparql(text)
            if parsed != query:
                mismatches.append(
                    DifferentialMismatch(
                        kind="round-trip",
                        system="parser",
                        seed=seed,
                        query_index=index,
                        query_text=text,
                        graph_ntriples=graph_nt,
                        detail=f"parsed AST differs from generated AST:\n"
                        f"  generated: {query}\n  parsed:    {parsed}",
                        chaos_seed=self.chaos_seed,
                    )
                )
                continue
            expected = oracle.evaluate(query)
            for name, system in loaded.items():
                mismatch = self._check_one(
                    name, system, graph, query, expected, seed, index, text,
                    graph_nt, config,
                )
                if mismatch is not None:
                    mismatches.append(mismatch)
        for system in loaded.values():
            stats.add_system(system)
        return mismatches, stats

    def _check_one(
        self, name, system, graph, query, expected, seed, index, text, graph_nt,
        config,
    ) -> DifferentialMismatch | None:
        try:
            actual = system.sparql(query).rows
        except Exception as error:  # noqa: BLE001 — an engine crash is a finding
            shrunk_graph, shrunk_query = self._shrink(graph, query, name, config)
            return DifferentialMismatch(
                kind="error",
                system=name,
                seed=seed,
                query_index=index,
                query_text=serialize_query(shrunk_query),
                graph_ntriples=shrunk_graph.to_ntriples(),
                detail=f"{type(error).__name__}: {error}",
                chaos_seed=self.chaos_seed,
            )
        if Counter(map(row_key, actual)) == Counter(map(row_key, expected)):
            return None
        shrunk_graph, shrunk_query = self._shrink(graph, query, name, config)
        shrunk_expected = BruteForceOracle(shrunk_graph).evaluate(shrunk_query)
        trace = None
        try:
            fresh = make_system(name, cluster_config=config)
            fresh.load(shrunk_graph)
            # Record a span trace of the diverging run when the system can:
            # the per-operator row counts localize where results went wrong.
            if "tracer" in inspect.signature(fresh.sparql).parameters:
                from ..obs.tracer import Tracer

                tracer = Tracer()
                shrunk_actual = fresh.sparql(shrunk_query, tracer=tracer).rows
                trace = tracer.to_dict()
            else:
                shrunk_actual = fresh.sparql(shrunk_query).rows
        except Exception as error:  # noqa: BLE001
            shrunk_actual = []
            detail_suffix = f" (shrunken run raised {type(error).__name__}: {error})"
        else:
            detail_suffix = ""
        want = Counter(map(row_key, shrunk_expected))
        got = Counter(map(row_key, shrunk_actual))
        missing = list((want - got).elements())
        unexpected = list((got - want).elements())
        return DifferentialMismatch(
            kind="rows",
            system=name,
            seed=seed,
            query_index=index,
            query_text=serialize_query(shrunk_query),
            graph_ntriples=shrunk_graph.to_ntriples(),
            detail=(
                f"oracle: {len(shrunk_expected)} rows, {name}: "
                f"{len(shrunk_actual)} rows; missing from system: "
                f"{missing[:5]}; unexpected in system: {unexpected[:5]}"
                + detail_suffix
            ),
            expected=shrunk_expected,
            actual=shrunk_actual,
            chaos_seed=self.chaos_seed,
            trace=trace,
        )

    # -- shrinking -------------------------------------------------------------

    def _shrink(
        self,
        graph: Graph,
        query: SelectQuery,
        system_name: str,
        config: ClusterConfig | None = None,
    ) -> tuple[Graph, SelectQuery]:
        """Minimal (graph, query) still reproducing the mismatch."""
        if not self.shrink:
            return graph, query
        triples = list(graph)
        triples = _shrink_triples(triples, query, system_name, config)
        query = _shrink_query(triples, query, system_name, config)
        triples = _shrink_triples(triples, query, system_name, config)
        return Graph(triples), query


def _still_fails(
    triples: list[Triple],
    query: SelectQuery,
    system_name: str,
    config: ClusterConfig | None = None,
) -> bool:
    """Whether the case still mismatches (different rows, or a crash)."""
    graph = Graph(triples)
    try:
        expected = BruteForceOracle(graph).evaluate(query)
    except Exception:  # noqa: BLE001 — an invalid reduction, not a failure
        return False
    try:
        system = make_system(system_name, cluster_config=config)
        system.load(graph)
        actual = system.sparql(query).rows
    except Exception:  # noqa: BLE001 — crashes reproduce the finding
        return True
    return Counter(map(row_key, actual)) != Counter(map(row_key, expected))


def _shrink_triples(
    triples: list[Triple],
    query: SelectQuery,
    system_name: str,
    config: ClusterConfig | None = None,
) -> list[Triple]:
    """Delta-debugging-style removal: big chunks first, then single triples."""
    improved = True
    while improved:
        improved = False
        chunk = max(1, len(triples) // 2)
        while chunk >= 1:
            index = 0
            while index < len(triples):
                candidate = triples[:index] + triples[index + chunk :]
                if candidate and _still_fails(candidate, query, system_name, config):
                    triples = candidate
                    improved = True
                else:
                    index += chunk
            chunk //= 2
    return triples


def _shrink_query(
    triples: list[Triple],
    query: SelectQuery,
    system_name: str,
    config: ClusterConfig | None = None,
) -> SelectQuery:
    """Drop patterns, filters, and modifiers while the mismatch reproduces."""
    improved = True
    while improved:
        improved = False
        for index in range(len(query.patterns)):
            if len(query.patterns) <= 1:
                break
            candidate = _drop_pattern(query, index)
            if candidate is not None and _still_fails(
                triples, candidate, system_name, config
            ):
                query = candidate
                improved = True
                break
        if improved:
            continue
        for index in range(len(query.filters)):
            candidate = replace(
                query,
                filters=query.filters[:index] + query.filters[index + 1 :],
            )
            if _still_fails(triples, candidate, system_name, config):
                query = candidate
                improved = True
                break
        if improved:
            continue
        for candidate in _modifier_reductions(query):
            if _still_fails(triples, candidate, system_name, config):
                query = candidate
                improved = True
                break
    return query


def _drop_pattern(query: SelectQuery, index: int) -> SelectQuery | None:
    remaining = query.patterns[:index] + query.patterns[index + 1 :]
    kept_variables = {
        slot.name
        for pattern in remaining
        for slot in (pattern.subject, pattern.predicate, pattern.object)
        if isinstance(slot, Variable)
    }
    if not kept_variables:
        return None  # SELECT needs at least one variable to project
    projection = tuple(v for v in query.projection if v.name in kept_variables)
    if not projection:
        projection = (Variable(sorted(kept_variables)[0]),)
    filters = tuple(
        f
        for f in query.filters
        if all(v.name in kept_variables for v in f.variables)
    )
    return replace(query, patterns=remaining, variables=projection, filters=filters)


def _modifier_reductions(query: SelectQuery):
    if query.distinct:
        yield replace(query, distinct=False)
    if query.limit is not None:
        yield replace(query, limit=None, offset=None)
    if query.offset is not None:
        yield replace(query, offset=None)


def _count_spans(span_dict: dict) -> int:
    """Number of spans in one serialized span subtree."""
    return 1 + sum(_count_spans(child) for child in span_dict.get("children", ()))


# -- top-level fuzzing loop ----------------------------------------------------


def _vary_graph_config(rng: random.Random) -> GraphGenConfig:
    """Per-seed diversity: each seed fuzzes a differently-shaped graph."""
    return GraphGenConfig(
        num_triples=rng.randint(8, 50),
        num_entities=rng.randint(3, 12),
        num_predicates=rng.randint(2, 8),
        multi_valued_density=rng.choice((0.0, 0.15, 0.3, 0.5)),
        literal_ratio=rng.choice((0.1, 0.3, 0.5)),
    )


def run_fuzz(
    base_seed: int = 0,
    iterations: int = 20,
    queries_per_graph: int = 10,
    systems: tuple[str, ...] = ALL_SYSTEMS,
    shrink: bool = True,
    stop_on_first: bool = False,
    progress=None,
    chaos_seed: int | None = None,
    memory_budget_bytes: int | None = None,
    query_timeout_sec: float | None = None,
) -> FuzzReport:
    """Fuzz ``iterations`` consecutive seeds starting at ``base_seed``.

    Args:
        progress: optional callback ``(seed, mismatches_so_far)`` invoked
            after each seed (the CLI uses it for live output).
        chaos_seed: run every cluster-backed system under a seeded random
            fault plan per iteration (``None`` disables chaos mode). The
            report's ``fault_stats`` then carries the recovery counters.
        memory_budget_bytes: per-query memory budget for every
            cluster-backed system — spilled and degraded executions must
            still match the (ungoverned) oracle.
        query_timeout_sec: per-query deadline for every cluster-backed
            system.
    """
    runner = DifferentialRunner(
        systems=systems,
        queries_per_graph=queries_per_graph,
        shrink=shrink,
        chaos_seed=chaos_seed,
        memory_budget_bytes=memory_budget_bytes,
        query_timeout_sec=query_timeout_sec,
    )
    seeds: list[int] = []
    mismatches: list[DifferentialMismatch] = []
    stats = FaultStats()
    cases = 0
    for offset in range(iterations):
        seed = base_seed + offset
        seeds.append(seed)
        seed_mismatches, seed_stats = runner.run_seed_with_stats(seed)
        mismatches.extend(seed_mismatches)
        stats.merge(seed_stats)
        cases += queries_per_graph
        if progress is not None:
            progress(seed, len(mismatches))
        if mismatches and stop_on_first:
            break
    governed = memory_budget_bytes is not None or query_timeout_sec is not None
    return FuzzReport(
        seeds=seeds,
        cases=cases,
        mismatches=mismatches,
        fault_stats=stats if (chaos_seed is not None or governed) else None,
    )
