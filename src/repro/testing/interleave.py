"""Deterministic cooperative-interleaving harness (the dynamic half of the
concurrency analysis).

:mod:`repro.analysis.concurrency` proves locking discipline *statically*;
this module replays thread schedules *dynamically*. An
:class:`InterleaveScheduler` serializes a set of real threads so that
exactly one runs at a time, and at every *yield point* — instrumented lock
acquire/release, instrumented method entry/exit — a seeded RNG picks which
runnable thread proceeds. The same seed therefore replays the same
interleaving, instruction-for-instruction: a failing schedule is a
one-integer reproduction, printed in the failure message.

Three instruments place the yield points:

- :class:`InstrumentedLock` — a drop-in ``threading.Lock`` replacement
  that yields before acquiring, spins with try-acquire (so the scheduler
  never deadlocks *itself*), and detects genuine lock-order deadlocks by
  walking the waits-for graph (raising :class:`DeadlockError` with the
  cycle);
- :func:`instrument_methods` — wraps chosen bound methods of an object to
  yield at entry and exit;
- any code under test may call :meth:`InterleaveScheduler.yield_point`
  directly (it is a no-op on unregistered threads, so instrumented
  objects still work when used outside the harness).

``tests/serve/test_interleave.py`` uses this to prove the serving-layer
races fixed in this subsystem's PR stay fixed: cache eviction and
epoch-bump reload schedules keep results multiset-equal across every
replayed seed, while the *pre-fix* behavior (reinstated by monkeypatch)
is caught by at least one seed. The seed-sweep width is
``REPRO_INTERLEAVE_SEEDS`` (see :func:`interleave_seeds`).
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..errors import DeadlockError, InterleaveError, SchedulerStallError

__all__ = [
    "DEFAULT_INTERLEAVE_SEEDS",
    "DEFAULT_MAX_STEPS",
    "DeadlockError",
    "INTERLEAVE_SEEDS_ENV",
    "InstrumentedLock",
    "InterleaveError",
    "InterleaveResult",
    "InterleaveScheduler",
    "SchedulerStallError",
    "instrument_methods",
    "interleave_seeds",
    "replay_instructions",
    "sweep",
]

#: Environment variable: how many seeds the interleaving sweeps replay.
INTERLEAVE_SEEDS_ENV = "REPRO_INTERLEAVE_SEEDS"

#: Seeds replayed when :data:`INTERLEAVE_SEEDS_ENV` is unset.
DEFAULT_INTERLEAVE_SEEDS = 5

#: Scheduler decisions before a run is declared stalled (a livelock guard;
#: real scenarios take a few hundred steps).
DEFAULT_MAX_STEPS = 100_000


def interleave_seeds(default: int = DEFAULT_INTERLEAVE_SEEDS) -> range:
    """The seed range a sweep replays: ``range(REPRO_INTERLEAVE_SEEDS)``.

    An unset / blank / invalid / negative env value falls back to
    ``default`` — the sweep must never silently shrink to zero seeds.
    """
    raw = os.environ.get(INTERLEAVE_SEEDS_ENV)
    if raw is None or not raw.strip():
        return range(default)
    try:
        count = int(raw.strip())
    except ValueError:
        return range(default)
    return range(count if count > 0 else default)


def replay_instructions(seed: int, test_id: str = "") -> str:
    """A copy-pasteable reproduction line for one failing seed.

    The schedule is a pure function of the seed, so replaying the same
    seed replays the same interleaving.
    """
    target = test_id if test_id else "tests/serve/test_interleave.py"
    return (
        f"failing interleaving seed: {seed} (schedules are deterministic "
        f"per seed)\nreplay: {INTERLEAVE_SEEDS_ENV}={seed + 1} "
        f"PYTHONPATH=src python -m pytest {target} -x -q"
    )


def sweep(
    scenario: Callable[[int], None],
    seeds: Iterable[int] | None = None,
    test_id: str = "",
) -> None:
    """Run ``scenario(seed)`` for every seed, failing with replay help.

    The canonical test-side entry point: any exception (assertion,
    deadlock, stall) out of one seed's scenario is re-raised as an
    ``AssertionError`` carrying :func:`replay_instructions` for that seed.
    """
    for seed in seeds if seeds is not None else interleave_seeds():
        try:
            scenario(seed)
        except BaseException as exc:
            raise AssertionError(
                f"interleaving scenario failed under seed {seed}: {exc}\n"
                f"{replay_instructions(seed, test_id)}"
            ) from exc


@dataclass
class InterleaveResult:
    """Outcome of one scheduled run: per-thread returns, errors, schedule."""

    seed: int
    results: dict[str, Any] = field(default_factory=dict)
    errors: dict[str, BaseException] = field(default_factory=dict)
    trace: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every thread returned without raising."""
        return not self.errors

    def raise_errors(self) -> None:
        """Re-raise the first per-thread error (sorted by thread name)."""
        for name in sorted(self.errors):
            raise self.errors[name]


class InterleaveScheduler:
    """Seeded cooperative scheduler: one thread runs at a time.

    Registered threads park at every yield point; the scheduler picks the
    next runner by seeded RNG over the *sorted* runnable names, so the
    whole schedule is a deterministic function of ``seed``. Unregistered
    threads (e.g. the test's main thread touching an instrumented object
    during setup or assertion) pass through every yield point untouched.
    """

    def __init__(self, seed: int, max_steps: int = DEFAULT_MAX_STEPS):
        self.seed = seed
        self.max_steps = max_steps
        self._rng = random.Random(seed)
        self._cond = threading.Condition()
        self._registered: set[str] = set()
        self._runnable: set[str] = set()
        self._current: str | None = None
        self._steps = 0
        self._aborted = False
        #: Scheduler decisions, in order — the replayable schedule log.
        self.trace: list[str] = []
        #: Instrumented-lock name → owning thread name (waits-for graph).
        self.lock_owners: dict[str, str] = {}
        #: Blocked thread name → instrumented-lock name it wants.
        self.waiting_on: dict[str, str] = {}

    # -- thread-side protocol ----------------------------------------------------

    def register(self) -> None:
        """Enroll the calling thread and park until it is scheduled."""
        name = threading.current_thread().name
        with self._cond:
            self._registered.add(name)
            self._runnable.add(name)
            self._cond.notify_all()
            self._cond.wait_for(lambda: self._current == name or self._aborted)
            if self._aborted:
                raise SchedulerStallError("scheduler aborted before start")

    def yield_point(self, label: str = "") -> None:
        """Hand control back: the RNG picks who (possibly *this* thread)
        runs next. A no-op on threads never :meth:`register`-ed."""
        name = threading.current_thread().name
        with self._cond:
            if name not in self._registered:
                return
            self._pick(label)
            self._cond.wait_for(lambda: self._current == name or self._aborted)
            if self._aborted:
                raise SchedulerStallError(
                    f"scheduler aborted (seed {self.seed}, step {self._steps})"
                )

    def finish(self) -> None:
        """Retire the calling thread and schedule a successor."""
        name = threading.current_thread().name
        with self._cond:
            if name not in self._registered:
                return
            self._runnable.discard(name)
            self._registered.discard(name)
            self.waiting_on.pop(name, None)
            try:
                self._pick(f"finish:{name}")
            except SchedulerStallError:
                # The retiring thread's work is already done (or its error
                # already recorded); the stall surfaces through the threads
                # still parked at yield points.
                pass

    # -- lock bookkeeping (called by InstrumentedLock) ---------------------------

    def note_acquired(self, lock_name: str) -> None:
        """Record the calling thread as ``lock_name``'s owner."""
        name = threading.current_thread().name
        with self._cond:
            self.lock_owners[lock_name] = name
            self.waiting_on.pop(name, None)

    def note_released(self, lock_name: str) -> None:
        """Clear ``lock_name``'s owner."""
        with self._cond:
            self.lock_owners.pop(lock_name, None)

    def note_blocked(self, lock_name: str) -> None:
        """Record the calling thread as waiting, and detect waits-for
        cycles: A wants a lock held by B, B wants one held by A (possibly
        through more hops) — a deterministic deadlock under this schedule.
        """
        name = threading.current_thread().name
        with self._cond:
            if name not in self._registered:
                return
            self.waiting_on[name] = lock_name
            chain = [name]
            wanted: str | None = lock_name
            while wanted is not None:
                owner = self.lock_owners.get(wanted)
                if owner is None:
                    return
                if owner in chain:
                    cycle = " -> ".join(
                        f"{thread} (wants {self.waiting_on[thread]})"
                        for thread in chain
                    )
                    raise DeadlockError(
                        f"lock-order deadlock under seed {self.seed}: "
                        f"{cycle} -> {owner}"
                    )
                chain.append(owner)
                wanted = self.waiting_on.get(owner)

    # -- scheduling core ---------------------------------------------------------

    def _pick(self, label: str = "") -> None:
        """Choose the next runner (caller must hold ``_cond``)."""
        candidates = sorted(self._runnable)
        if not candidates:
            self._current = None
            self._cond.notify_all()
            return
        self._steps += 1
        if self._steps > self.max_steps:
            self._aborted = True
            self._cond.notify_all()
            raise SchedulerStallError(
                f"no progress after {self.max_steps} scheduling steps "
                f"(seed {self.seed}); last decisions: {self.trace[-10:]}"
            )
        if len(candidates) == 1:
            self._current = candidates[0]
        else:
            self._current = candidates[self._rng.randrange(len(candidates))]
        self.trace.append(f"{self._current}{f'@{label}' if label else ''}")
        self._cond.notify_all()

    def abort(self) -> None:
        """Wake every parked thread with a stall error (timeout path)."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    # -- runner ------------------------------------------------------------------

    def run(
        self,
        thunks: dict[str, Callable[[], Any]],
        timeout_sec: float = 30.0,
    ) -> InterleaveResult:
        """Run every thunk on its own scheduled thread; join them all.

        Threads are named by their ``thunks`` key (names drive the RNG's
        sorted candidate order, so rename ⇒ different schedules). Raises
        :class:`SchedulerStallError` if the run exceeds ``timeout_sec`` —
        with the schedule tail and replay seed in the message, since a
        wall-clock hang here almost always means a *real* blocking call
        (an un-instrumented lock or condition) swallowed the only
        runnable thread.
        """
        result = InterleaveResult(seed=self.seed)

        def body(name: str, thunk: Callable[[], Any]) -> None:
            self.register()
            try:
                result.results[name] = thunk()
            except BaseException as exc:  # reported via result.errors
                result.errors[name] = exc
            finally:
                self.finish()

        threads = [
            threading.Thread(target=body, args=(name, thunk), name=name, daemon=True)
            for name, thunk in sorted(thunks.items())
        ]
        for thread in threads:
            thread.start()
        with self._cond:
            ready = self._cond.wait_for(
                lambda: len(self._registered) >= len(threads), timeout=timeout_sec
            )
            if not ready:
                self._aborted = True
                self._cond.notify_all()
                raise SchedulerStallError("threads failed to register")
            self._pick("start")
        deadline = time.monotonic() + timeout_sec
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        if any(thread.is_alive() for thread in threads):
            self.abort()
            for thread in threads:
                thread.join(1.0)
            stuck = [t.name for t in threads if t.is_alive()]
            raise SchedulerStallError(
                f"interleaved run timed out after {timeout_sec:g}s under "
                f"seed {self.seed}; stuck threads: {stuck or 'none (woken)'}; "
                f"schedule tail: {self.trace[-15:]}\n"
                f"{replay_instructions(self.seed)}"
            )
        result.trace = list(self.trace)
        return result


class InstrumentedLock:
    """A ``threading.Lock`` stand-in whose acquire/release are yield points.

    Swap it into the object under test (``obj._lock =
    InstrumentedLock(scheduler, "obj._lock")``): registered threads then
    hand the scheduler control around every critical section, and blocked
    acquisition spins with try-acquire — reporting to the scheduler each
    failed attempt so waits-for cycles surface as :class:`DeadlockError`
    instead of hanging the suite.
    """

    def __init__(self, scheduler: InterleaveScheduler, name: str):
        self._scheduler = scheduler
        self.name = name
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if not blocking:
            acquired = self._inner.acquire(blocking=False)
            if acquired:
                self._scheduler.note_acquired(self.name)
            return acquired
        self._scheduler.yield_point(f"acquire:{self.name}")
        while not self._inner.acquire(blocking=False):
            self._scheduler.note_blocked(self.name)
            self._scheduler.yield_point(f"blocked:{self.name}")
        self._scheduler.note_acquired(self.name)
        return True

    def release(self) -> None:
        self._inner.release()
        self._scheduler.note_released(self.name)
        self._scheduler.yield_point(f"release:{self.name}")

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def instrument_methods(
    scheduler: InterleaveScheduler,
    obj: Any,
    method_names: Iterable[str],
    prefix: str = "",
) -> None:
    """Wrap bound methods of ``obj`` so entry and exit are yield points.

    Instance-level wrapping (``setattr`` on the object, not the class), so
    only the object under test is instrumented and only for this run.
    """
    label_prefix = prefix or type(obj).__name__
    for method_name in method_names:
        original = getattr(obj, method_name)

        def wrapper(
            *args: Any,
            __original: Callable[..., Any] = original,
            __label: str = f"{label_prefix}.{method_name}",
            **kwargs: Any,
        ) -> Any:
            scheduler.yield_point(f"enter:{__label}")
            try:
                return __original(*args, **kwargs)
            finally:
                scheduler.yield_point(f"exit:{__label}")

        setattr(obj, method_name, wrapper)
