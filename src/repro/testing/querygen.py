"""Seedable random BGP/SPARQL query generator.

Produces queries in the four join shapes the paper's workload distinguishes
— **star** (one shared subject), **path** (subject-object chains),
**snowflake** (a star with a chain hanging off one arm), and **cyclic**
(a chain closed back on itself) — then perturbs them: constants substituted
from the queried graph (so matches actually occur), unbound predicates
(occasionally *sharing* a variable with another slot, the shape that
historically crashed the translators), variable aliasing (self-loops and
extra join edges), FILTER, DISTINCT, and LIMIT/OFFSET.

Queries are emitted as :class:`~repro.sparql.algebra.SelectQuery` ASTs;
:func:`serialize_query` renders SPARQL text that parses back to the *same*
AST, which the differential runner asserts on every case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.terms import IRI, Literal, Term, XSD_INTEGER
from ..errors import ValidationError
from ..sparql.algebra import (
    And,
    Comparison,
    FilterExpression,
    Or,
    PatternTerm,
    Regex,
    SelectQuery,
    TriplePattern,
    Variable,
)

SHAPES = ("star", "path", "snowflake", "cyclic")


@dataclass(frozen=True)
class QueryGenConfig:
    """Knobs of the random query generator (all probabilities per-slot)."""

    max_patterns: int = 5
    constant_subject_prob: float = 0.15
    constant_object_prob: float = 0.35
    unbound_predicate_prob: float = 0.12
    repeated_predicate_var_prob: float = 0.25
    variable_alias_prob: float = 0.15
    miss_term_prob: float = 0.1
    filter_prob: float = 0.4
    distinct_prob: float = 0.25
    limit_prob: float = 0.2

    def __post_init__(self) -> None:
        if self.max_patterns < 1:
            raise ValidationError("max_patterns must be positive")


#: Regex patterns the generator draws from (simple, escape-free).
_REGEX_PATTERNS = ("a", "^a", "x", "Entity", "ta$")

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


def generate_query(
    graph: Graph, config: QueryGenConfig, rng: random.Random
) -> SelectQuery:
    """Generate one random SELECT query against ``graph``'s vocabulary."""
    shape = rng.choice(SHAPES)
    edges = _shape_edges(shape, config, rng)
    edges = _alias_variables(edges, config, rng)

    subjects = sorted({t.subject for t in graph}, key=lambda t: t.n3())
    predicates = [IRI(p.value) for p in graph.predicates]
    objects = sorted({t.object for t in graph}, key=lambda t: t.n3())
    if not subjects:  # empty graph: fall back to a fixed vocabulary
        subjects = [IRI("http://fuzz/none")]
    if not predicates:
        predicates = [IRI("http://fuzz/noneP")]
    if not objects:
        objects = [IRI("http://fuzz/noneO")]

    patterns: list[TriplePattern] = []
    node_variables: list[str] = []
    for position, (s_index, o_index) in enumerate(edges):
        subject: PatternTerm = Variable(f"v{s_index}")
        obj: PatternTerm = Variable(f"v{o_index}")
        if rng.random() < config.constant_subject_prob:
            subject = _sample(subjects, config, rng, miss=IRI(f"http://fuzz/missS{position}"))
        if rng.random() < config.constant_object_prob:
            obj = _sample(objects, config, rng, miss=IRI(f"http://fuzz/missO{position}"))
        predicate = _choose_predicate(
            subject, obj, predicates, position, config, rng
        )
        for slot in (subject, obj):
            if isinstance(slot, Variable) and slot.name not in node_variables:
                node_variables.append(slot.name)
        patterns.append(TriplePattern(subject, predicate, obj))

    all_variables: list[str] = []
    for pattern in patterns:
        for slot in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(slot, Variable) and slot.name not in all_variables:
                all_variables.append(slot.name)
    if not all_variables:
        # Fully-constant query: re-open one object slot so SELECT has a
        # variable to project.
        first = patterns[0]
        patterns[0] = TriplePattern(first.subject, first.predicate, Variable("v0"))
        all_variables = ["v0"]

    projection = tuple(
        Variable(name)
        for name in rng.sample(all_variables, rng.randint(1, len(all_variables)))
    )

    filters: tuple[FilterExpression, ...] = ()
    if rng.random() < config.filter_prob:
        filters = (_random_filter(all_variables, objects, rng),)

    distinct = rng.random() < config.distinct_prob
    limit = offset = None
    if rng.random() < config.limit_prob:
        limit = rng.randint(1, 5)
        if rng.random() < 0.5:
            offset = rng.randint(1, 3)

    return SelectQuery(
        variables=projection,
        patterns=tuple(patterns),
        filters=filters,
        distinct=distinct,
        limit=limit,
        offset=offset,
    )


# -- shape construction -------------------------------------------------------


def _shape_edges(
    shape: str, config: QueryGenConfig, rng: random.Random
) -> list[tuple[int, int]]:
    """Subject/object variable indices per pattern, before term assignment."""
    count = rng.randint(1, config.max_patterns)
    if shape == "star":
        return [(0, i + 1) for i in range(count)]
    if shape == "path":
        return [(i, i + 1) for i in range(count)]
    if shape == "cyclic":
        count = max(2, count)
        return [(i, (i + 1) % count) for i in range(count)]
    # Snowflake: a star plus a chain off the first arm.
    arms = max(1, count // 2)
    edges = [(0, i + 1) for i in range(arms)]
    tail = arms + 1
    previous = 1
    for _ in range(count - arms):
        edges.append((previous, tail))
        previous = tail
        tail += 1
    return edges


def _alias_variables(
    edges: list[tuple[int, int]], config: QueryGenConfig, rng: random.Random
) -> list[tuple[int, int]]:
    """Occasionally merge two variable indices (self-loops, extra cycles)."""
    if rng.random() >= config.variable_alias_prob:
        return edges
    indices = sorted({i for edge in edges for i in edge})
    if len(indices) < 2:
        return edges
    target, source = rng.sample(indices, 2)
    return [
        (target if s == source else s, target if o == source else o)
        for s, o in edges
    ]


def _choose_predicate(
    subject: PatternTerm,
    obj: PatternTerm,
    predicates: list[IRI],
    position: int,
    config: QueryGenConfig,
    rng: random.Random,
) -> PatternTerm:
    if rng.random() < config.unbound_predicate_prob:
        # Sometimes reuse a node variable as the predicate variable — the
        # repeated-variable shape engines must answer with an equality
        # constraint, not a crash.
        candidates = [
            slot.name for slot in (subject, obj) if isinstance(slot, Variable)
        ]
        if candidates and rng.random() < config.repeated_predicate_var_prob:
            return Variable(rng.choice(candidates))
        return Variable(f"p{position if rng.random() < 0.5 else 0}")
    if rng.random() < config.miss_term_prob:
        return IRI(f"http://fuzz/missP{position}")
    return rng.choice(predicates)


def _sample(
    pool: list[Term], config: QueryGenConfig, rng: random.Random, miss: Term
) -> Term:
    if rng.random() < config.miss_term_prob:
        return miss
    term = rng.choice(pool)
    # Subject pools may contain blank nodes in principle; the fuzzing
    # fragment sticks to IRIs and literals, which every engine stores.
    return term


def _random_filter(
    variables: list[str], objects: list[Term], rng: random.Random
) -> FilterExpression:
    kind = rng.randrange(5)
    if kind == 0:
        return Regex(Variable(rng.choice(variables)), rng.choice(_REGEX_PATTERNS))
    if kind == 1 and len(variables) >= 2:
        left, right = rng.sample(variables, 2)
        return Comparison(rng.choice(_COMPARISON_OPS), Variable(left), Variable(right))
    if kind == 2:
        literals = [o for o in objects if isinstance(o, Literal)]
        target: Term = rng.choice(literals) if literals else Literal(
            str(rng.randint(0, 20)), datatype=XSD_INTEGER
        )
        return Comparison(
            rng.choice(("=", "!=")), Variable(rng.choice(variables)), target
        )
    comparison = Comparison(
        rng.choice(_COMPARISON_OPS),
        Variable(rng.choice(variables)),
        Literal(str(rng.randint(0, 20)), datatype=XSD_INTEGER),
    )
    if kind == 3:
        other = Comparison(
            rng.choice(_COMPARISON_OPS),
            Variable(rng.choice(variables)),
            Literal(str(rng.randint(0, 20)), datatype=XSD_INTEGER),
        )
        connective = And if rng.random() < 0.5 else Or
        return connective((comparison, other))
    return comparison


# -- serialization ------------------------------------------------------------


def serialize_query(query: SelectQuery) -> str:
    """Render a fuzzing-fragment query as SPARQL text.

    The output round-trips: ``parse_sparql(serialize_query(q)) == q`` for
    every query the generator emits (the differential runner asserts this).
    """
    if query.is_union or query.optional_groups or query.aggregates:
        raise ValidationError("serialize_query covers the fuzzing BGP fragment only")
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.extend(str(v) for v in query.variables)
    body = [str(pattern) for pattern in query.patterns]
    body.extend(_serialize_filter(f) for f in query.filters)
    parts.append("WHERE { " + " . ".join(body) + " }")
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    if query.offset is not None:
        parts.append(f"OFFSET {query.offset}")
    return " ".join(parts)


def _serialize_filter(expression: FilterExpression) -> str:
    return f"FILTER({_serialize_expression(expression)})"


def _serialize_expression(expression: FilterExpression) -> str:
    if isinstance(expression, Comparison):
        return (
            f"{_serialize_operand(expression.left)} {expression.op} "
            f"{_serialize_operand(expression.right)}"
        )
    if isinstance(expression, Regex):
        return f'regex({expression.variable}, "{expression.pattern}")'
    if isinstance(expression, And):
        return " && ".join(
            f"({_serialize_expression(op)})" for op in expression.operands
        )
    if isinstance(expression, Or):
        return " || ".join(
            f"({_serialize_expression(op)})" for op in expression.operands
        )
    raise ValidationError(f"unsupported filter expression {expression!r}")


def _serialize_operand(slot: PatternTerm) -> str:
    if isinstance(slot, Variable):
        return str(slot)
    return slot.n3()
