"""Shared plan-building helpers for the baseline systems.

Both SPARQLGX and S2RDF materialize each triple pattern from an ``(s, o)``
shaped table and join the results on shared variable names; these helpers
build those per-pattern frames and estimate pattern cardinalities from the
load-time statistics.
"""

from __future__ import annotations

import itertools

from ..columnar.schema import ColumnSchema, TableSchema
from ..core.encoding import encode_term
from ..engine.dataframe import DataFrame
from ..engine.expressions import col, lit
from ..engine.session import EngineSession
from ..rdf.stats import GraphStatistics
from ..rdf.terms import IRI
from ..sparql.algebra import TriplePattern, Variable

_COUNTER = itertools.count(1)


def pattern_cardinality(statistics: GraphStatistics, pattern: TriplePattern) -> float:
    """Estimated matching tuples for one pattern (for join ordering)."""
    if isinstance(pattern.predicate, Variable):
        return float(statistics.total_triples)
    stats = statistics.for_predicate(pattern.predicate.value)
    estimated = float(stats.triple_count)
    if not isinstance(pattern.object, Variable):
        estimated /= max(1, stats.distinct_objects)
    if not isinstance(pattern.subject, Variable):
        estimated /= max(1, stats.distinct_subjects)
    return estimated


def empty_pattern_frame(session: EngineSession, pattern: TriplePattern) -> DataFrame:
    """A correctly-shaped empty relation (predicate missing from the data)."""
    names: list[str] = []
    for slot in (pattern.subject, pattern.predicate, pattern.object):
        if isinstance(slot, Variable) and slot.name not in names:
            names.append(slot.name)
    if not names:
        names = [f"__exists{next(_COUNTER)}"]
    schema = TableSchema([ColumnSchema(name, "string") for name in names])
    return session.create_dataframe(schema, [], label="empty-vp")


def unbound_predicate_frame(
    session: EngineSession, tables: dict[str, str], pattern: TriplePattern
) -> DataFrame:
    """A frame for a variable-predicate pattern: the union of all VP tables,
    each tagged with its predicate as an extra column bound to the variable.
    """
    predicate_variable = pattern.predicate
    assert isinstance(predicate_variable, Variable)
    frames: list[DataFrame] = []
    for predicate_iri in sorted(tables):
        tagged = session.table(tables[predicate_iri]).select(
            "s", "o", ("__p", lit(encode_term(IRI(predicate_iri))))
        )
        frames.append(tagged)
    if not frames:
        return empty_pattern_frame(session, pattern)
    union = frames[0]
    for frame in frames[1:]:
        union = union.union(frame)
    shaped = shape_vp_frame(session, union, pattern, keep=["__p"])
    outputs: list = [name for name in shaped.columns if name != "__p"]
    if predicate_variable.name in outputs:
        # The predicate variable also binds the subject or object of the same
        # pattern (e.g. ``?s ?p ?p``): constrain against the tag column
        # instead of emitting a duplicate output column.
        shaped = shaped.filter(col(predicate_variable.name) == col("__p"))
        return shaped.select(*outputs)
    return shaped.select(*outputs, (predicate_variable.name, col("__p")))


def shape_vp_frame(
    session: EngineSession,
    frame: DataFrame | None,
    pattern: TriplePattern,
    keep: list[str] | None = None,
) -> DataFrame:
    """Apply a pattern's constants and variable names to an ``(s, o)`` frame.

    Constants become selections; variables become renamed output columns; a
    repeated variable becomes an equality selection. ``frame=None`` yields an
    empty, correctly-shaped relation. Columns in ``keep`` pass through.
    """
    if frame is None:
        return empty_pattern_frame(session, pattern)
    conditions = []
    outputs = []
    if isinstance(pattern.subject, Variable):
        outputs.append((pattern.subject.name, col("s")))
    else:
        conditions.append(col("s") == lit(encode_term(pattern.subject)))
    if isinstance(pattern.object, Variable):
        same_as_subject = (
            isinstance(pattern.subject, Variable)
            and pattern.object.name == pattern.subject.name
        )
        if same_as_subject:
            conditions.append(col("s") == col("o"))
        else:
            outputs.append((pattern.object.name, col("o")))
    else:
        conditions.append(col("o") == lit(encode_term(pattern.object)))
    for condition in conditions:
        frame = frame.filter(condition)
    for name in keep or []:
        outputs.append((name, col(name)))
    if not outputs:
        marker = f"__exists{next(_COUNTER)}"
        return frame.select((marker, lit("x"))).distinct()
    return frame.select(*outputs)
