"""Baseline systems the paper compares against: SPARQLGX, S2RDF, and Rya.

Each baseline exposes the same minimal interface as
:class:`~repro.core.prost.ProstEngine`::

    system.load(graph)   -> LoadReport
    system.sparql(query) -> ResultSet
    system.last_query_report() -> QueryExecutionReport | None
"""

from .plans import empty_pattern_frame, pattern_cardinality, shape_vp_frame
from .rya import INDEXES, Rya, RyaCostModel
from .s2rdf import POSITION_PAIRS, ExtVpEntry, S2Rdf
from .sparqlgx import SparqlGx, SparqlGxDirect

__all__ = [
    "ExtVpEntry",
    "INDEXES",
    "POSITION_PAIRS",
    "Rya",
    "RyaCostModel",
    "S2Rdf",
    "SparqlGx",
    "SparqlGxDirect",
    "empty_pattern_frame",
    "pattern_cardinality",
    "shape_vp_frame",
]
