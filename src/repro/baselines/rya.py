"""Rya baseline (Punnoose et al., 2012).

Rya stores whole triples as *keys* in Accumulo, three times over — once per
index permutation SPO, POS, and OSP — so any triple pattern with a bound
prefix becomes a fast sorted-range scan. Query evaluation is index
nested-loop join: patterns are reordered by selectivity, then each partial
binding issues one range scan per remaining pattern.

This reproduces the paper's observations: Rya is extremely fast when a query
touches few intermediate results (point lookups on the right index), and
orders of magnitude slower on join-heavy queries, because every intermediate
binding pays a fresh index scan and there is no distributed join machinery
("it lacks ... the powerful in-memory data processing that make, in
practice, other systems faster").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.encoding import (
    cell_for_text,
    cell_text,
    decode_term,
    encode_term,
    encode_term_text,
)
from ..core.loader import LoadReport
from ..core.prost import _apply_modifiers
from ..core.results import QueryExecutionReport, ResultSet
from ..errors import LoaderError
from ..kvstore.store import SortedKeyValueStore
from ..rdf.graph import Graph
from ..rdf.reference import evaluate_filter
from ..rdf.stats import GraphStatistics, collect_statistics
from ..sparql.algebra import SelectQuery, TriplePattern, Variable
from ..sparql.parser import parse_sparql
from .plans import pattern_cardinality

#: Separator between the three term components inside an index key.
_SEP = "\x00"

#: The three index permutations: table name → triple-position order.
INDEXES = {
    "spo": (0, 1, 2),
    "pos": (1, 2, 0),
    "osp": (2, 0, 1),
}


@dataclass(frozen=True)
class RyaCostModel:
    """Client-driven scan costs for the simulated Accumulo cluster.

    Attributes:
        seek_sec: round-trip latency of starting one range scan.
        entry_sec: per-entry transfer/deserialization cost.
        parallel_scans: concurrent ranges a batch scanner keeps in flight.
        data_scale: emulation factor (see
            :class:`~repro.engine.cluster.ClusterConfig.data_scale`): seek and
            entry counts measured on the scaled-down dataset are multiplied
            by this factor before costing.
    """

    seek_sec: float = 0.0015
    entry_sec: float = 2e-6
    parallel_scans: int = 8
    data_scale: float = 1.0

    def time_for(self, seeks: int, entries: int) -> float:
        return self.data_scale * (
            (seeks * self.seek_sec) / self.parallel_scans + entries * self.entry_sec
        )


class Rya:
    """Triple store over sorted key-value tables with nested-loop joins."""

    name = "Rya"

    def __init__(
        self,
        num_tablet_servers: int = 9,
        cost_model: RyaCostModel | None = None,
    ):
        self.store = SortedKeyValueStore(num_tablet_servers=num_tablet_servers)
        self.cost_model = cost_model or RyaCostModel()
        self.statistics: GraphStatistics | None = None
        self.last_query_report_: QueryExecutionReport | None = None

    # -- loading --------------------------------------------------------------------

    def load(self, graph: Graph) -> LoadReport:
        """Ingest every triple into the three index tables."""
        started = time.perf_counter()
        self.statistics = collect_statistics(graph)
        for table in INDEXES:
            if not self.store.has_table(table):
                self.store.create_table(table)
        for triple in graph:
            # Index keys are lexical: Accumulo's sorted range scans depend on
            # the N-Triples byte order, and key bytes are the size measurement.
            parts = (
                encode_term_text(triple.subject),
                encode_term_text(triple.predicate),
                encode_term_text(triple.object),
            )
            for table, order in INDEXES.items():
                key = _SEP.join(parts[i] for i in order)
                self.store.put(table, key)
        for table in INDEXES:
            self.store.compact(table)
        stored = self.store.stored_bytes()
        # Ingest cost: the batch writer streams 3× the data to the tablet
        # servers, which sort and flush it (one pass each).
        entries = 3 * len(graph)
        scale = self.cost_model.data_scale
        simulated = scale * (entries / 120_000.0 + stored / 200e6)
        report = LoadReport(
            system=self.name,
            stored_bytes=stored,
            tables_written=len(INDEXES),
            triples_loaded=len(graph),
            simulated_sec=simulated,
            wall_clock_sec=time.perf_counter() - started,
        )
        self.load_report = report
        return report

    # -- querying ----------------------------------------------------------------------

    def sparql(self, query: str | SelectQuery) -> ResultSet:
        """Execute a SELECT query with index nested-loop joins."""
        parsed = parse_sparql(query) if isinstance(query, str) else query
        if self.statistics is None:
            raise LoaderError("no graph loaded; call load() first")
        started = time.perf_counter()
        self.store.metrics.reset()

        if parsed.is_union:
            bindings = []
            for branch in parsed.union_branches:
                bindings.extend(self._evaluate_bgp(list(branch)))
        else:
            bindings = self._evaluate_bgp(list(parsed.patterns))
            for group in parsed.optional_groups:
                bindings = self._apply_optional(list(group), bindings)

        rows = []
        for binding in bindings:
            decoded = {
                name: decode_term(value) for name, value in binding.items()
            }
            if all(evaluate_filter(f, decoded) for f in parsed.filters):
                rows.append(
                    tuple(decoded.get(v.name) for v in parsed.projection)
                )
        if parsed.distinct:
            unique = {}
            for row in rows:
                unique.setdefault(tuple(t.n3() if t else None for t in row), row)
            rows = list(unique.values())
        rows = _apply_modifiers(parsed, rows)

        metrics = self.store.metrics
        report = QueryExecutionReport(
            simulated_sec=self.cost_model.time_for(metrics.seeks, metrics.entries_read),
            wall_clock_sec=time.perf_counter() - started,
        )
        self.last_query_report_ = report
        return ResultSet(tuple(v.name for v in parsed.projection), rows, report)

    def explain(self, query: str | SelectQuery, analyze: bool = False) -> str:
        """Index-selection EXPLAIN: reordered patterns and chosen indexes.

        Shows Rya's greedy join order and, per pattern, which of the three
        Accumulo-style indexes (SPO/POS/OSP) serves it and how many triple
        positions its scan prefix binds (constants plus variables bound by
        earlier patterns). With ``analyze``, the query executes and a final
        line reports measured index seeks, entries read, and simulated time.
        """
        parsed = parse_sparql(query) if isinstance(query, str) else query
        if self.statistics is None:
            raise LoaderError("no graph loaded; call load() first")
        if parsed.is_union:
            groups = [
                ("UNION branch", list(branch)) for branch in parsed.union_branches
            ]
        else:
            groups = [("BGP", list(parsed.patterns))]
            groups += [("OPTIONAL", list(g)) for g in parsed.optional_groups]
        lines = ["== Index Plan =="]
        for title, patterns in groups:
            if len(groups) > 1:
                lines.append(f"-- {title} --")
            bound: set[str] = set()
            for step, pattern in enumerate(self._reorder(patterns), start=1):
                slots = [
                    None
                    if isinstance(slot, Variable) and slot.name not in bound
                    else "*"  # constant, or bound by an earlier pattern
                    for slot in (pattern.subject, pattern.predicate, pattern.object)
                ]
                table, prefix_parts = _best_index(slots)
                lines.append(
                    f"{step}. {pattern}  index={table.upper()} "
                    f"prefix={len(prefix_parts)}/3 bound"
                )
                bound |= {v.name for v in pattern.variables}
        if analyze:
            self.sparql(parsed)
            metrics = self.store.metrics
            assert self.last_query_report_ is not None
            lines.append(
                f"measured: seeks={metrics.seeks} entries={metrics.entries_read} "
                f"simulated={self.last_query_report_.simulated_sec * 1000:.1f}ms"
            )
        return "\n".join(lines)

    def last_query_report(self) -> QueryExecutionReport | None:
        return self.last_query_report_

    def _reorder(self, patterns: list[TriplePattern]) -> list[TriplePattern]:
        """Rya's join reordering: greedily pick the pattern with the most
        positions bound (constants plus already-bound variables), breaking
        ties by estimated cardinality."""
        assert self.statistics is not None
        ordered: list[TriplePattern] = []
        bound_variables: set[str] = set()
        remaining = list(patterns)
        while remaining:
            def effective_bound(pattern: TriplePattern) -> int:
                count = 0
                for slot in (pattern.subject, pattern.predicate, pattern.object):
                    if not isinstance(slot, Variable) or slot.name in bound_variables:
                        count += 1
                return count

            best = min(
                remaining,
                key=lambda p: (
                    -effective_bound(p),
                    pattern_cardinality(self.statistics, p),
                ),
            )
            remaining.remove(best)
            ordered.append(best)
            bound_variables |= {v.name for v in best.variables}
        return ordered

    # -- index nested-loop machinery -----------------------------------------------------

    def _evaluate_bgp(self, patterns: list[TriplePattern]) -> list[dict[str, str]]:
        """Match one conjunction with reordered index nested-loop joins."""
        bindings: list[dict[str, str]] = [{}]
        for pattern in self._reorder(patterns):
            bindings = self._extend(pattern, bindings)
            if not bindings:
                break
        return bindings

    def _apply_optional(
        self, patterns: list[TriplePattern], bindings: list[dict[str, str]]
    ) -> list[dict[str, str]]:
        """OPTIONAL (left join): per binding, keep extensions when the group
        matches and the unextended binding otherwise."""
        result: list[dict[str, str]] = []
        for binding in bindings:
            extensions = [binding]
            for pattern in self._reorder(patterns):
                extensions = self._extend(pattern, extensions)
                if not extensions:
                    break
            result.extend(extensions if extensions else [binding])
        return result

    def _extend(
        self, pattern: TriplePattern, bindings: list[dict[str, str]]
    ) -> list[dict[str, str]]:
        """Join current bindings with one pattern via per-binding index scans."""
        extended: list[dict[str, str]] = []
        for binding in bindings:
            slots = []
            for slot in (pattern.subject, pattern.predicate, pattern.object):
                if isinstance(slot, Variable):
                    bound = binding.get(slot.name)
                    slots.append(None if bound is None else cell_text(bound))
                else:
                    slots.append(encode_term_text(slot))
            table, prefix_parts = _best_index(slots)
            prefix = _SEP.join(prefix_parts)
            if prefix:
                prefix += "" if len(prefix_parts) == 3 else _SEP
            order = INDEXES[table]
            for key, _ in self.store.prefix_scan(table, prefix):
                components = key.split(_SEP)
                triple_parts = [""] * 3
                for index_position, triple_position in enumerate(order):
                    triple_parts[triple_position] = components[index_position]
                new_binding = _unify(pattern, triple_parts, binding)
                if new_binding is not None:
                    extended.append(new_binding)
        return extended


def _bound_positions(pattern: TriplePattern) -> int:
    return sum(
        0 if isinstance(slot, Variable) else 1
        for slot in (pattern.subject, pattern.predicate, pattern.object)
    )


def _best_index(slots: list[str | None]) -> tuple[str, list[str]]:
    """The index whose sort order gives the longest bound prefix.

    ``slots`` holds the resolved (encoded) value per triple position, or
    ``None`` when free. Ties resolve in SPO, POS, OSP order.
    """
    best_table = "spo"
    best_prefix: list[str] = []
    for table, order in INDEXES.items():
        prefix: list[str] = []
        for position in order:
            value = slots[position]
            if value is None:
                break
            prefix.append(value)
        if len(prefix) > len(best_prefix):
            best_table = table
            best_prefix = prefix
    return best_table, best_prefix


def _unify(
    pattern: TriplePattern, triple_parts: list[str], binding: dict[str, str]
) -> dict[str, str] | None:
    """Extend a binding with one scanned key, interning components so the
    runtime bindings compare and hash as dictionary IDs."""
    result = dict(binding)
    for slot, value in zip(
        (pattern.subject, pattern.predicate, pattern.object), triple_parts
    ):
        cell = cell_for_text(value)
        if isinstance(slot, Variable):
            existing = result.get(slot.name)
            if existing is None:
                result[slot.name] = cell
            elif existing != cell:
                return None
        elif encode_term(slot) != cell:
            return None
    return result
