"""SPARQLGX baseline (Graux et al., ISWC 2016).

SPARQLGX stores Vertical Partitioning tables as *plain text* files on HDFS
and compiles SPARQL directly into Spark (RDD) operations — no Spark SQL, no
Catalyst. Its own loading-time statistics drive the join order. Consequences
reproduced here:

- storage is VP-only plain text (smallest footprint, Table 1);
- scans always read whole ``(s, o)`` lines — no column pruning;
- joins are always hash shuffles (RDD joins have no broadcast strategy);
- there is no property table, so an n-pattern query needs n − 1 joins.
"""

from __future__ import annotations

import time
import zlib

from ..columnar.schema import ColumnSchema, TableSchema
from ..core.encoding import cell_for_text, decode_row, encode_term, encode_term_text
from ..core.filters import SparqlCondition
from ..core.loader import LoadReport, estimate_load_seconds
from ..core.naming import assign_names
from ..core.prost import _apply_modifiers
from ..core.results import QueryExecutionReport, ResultSet
from ..errors import UnsupportedSparqlError
from ..engine.cluster import ClusterConfig, SimulatedCluster
from ..engine.dataframe import DataFrame
from ..engine.session import EngineSession
from ..rdf.graph import Graph
from ..rdf.stats import GraphStatistics, collect_statistics
from ..sparql.algebra import SelectQuery, TriplePattern, Variable
from ..sparql.parser import parse_sparql
from .plans import pattern_cardinality, shape_vp_frame, unbound_predicate_frame

_VP_SCHEMA = TableSchema([ColumnSchema("s", "string"), ColumnSchema("o", "string")])


class SparqlGx:
    """VP-only, statistics-ordered, shuffle-join SPARQL processor."""

    name = "SPARQLGX"

    #: RDD row throughput relative to Spark SQL's whole-stage codegen. The
    #: compiled Scala closures SPARQLGX emits process generic JVM objects,
    #: which Spark's own benchmarks put several times slower per row than
    #: the code Catalyst generates for DataFrames.
    RDD_SLOWDOWN = 8.0

    def __init__(self, num_workers: int = 9, cluster_config: ClusterConfig | None = None):
        import dataclasses

        if cluster_config is None:
            cluster_config = ClusterConfig(num_workers=num_workers)
        cluster_config = dataclasses.replace(
            cluster_config, rows_per_sec=cluster_config.rows_per_sec / self.RDD_SLOWDOWN
        )
        self.session = EngineSession(SimulatedCluster(cluster_config))
        self.statistics: GraphStatistics | None = None
        self._tables: dict[str, str] = {}
        self.last_query_report_: QueryExecutionReport | None = None

    # -- loading ---------------------------------------------------------------

    def load(self, graph: Graph) -> LoadReport:
        """Write one plain-text ``s o`` file per predicate and collect stats."""
        started = time.perf_counter()
        self.statistics = collect_statistics(graph)
        names = assign_names([p.value for p in graph.predicates])
        text_bytes = 0
        for predicate in graph.predicates:
            pairs = [
                (t.subject, t.object) for t in graph.triples_with_predicate(predicate)
            ]
            rows = [(encode_term(s), encode_term(o)) for s, o in pairs]
            # The text file on HDFS is the system of record (and the size
            # measurement), so it always stores the lexical N-Triples form;
            # the catalog serves the dictionary-encoded rows to scans.
            # SPARQLGX stores its triple files through HDFS's deflate codec,
            # which is where its small Table 1 footprint comes from.
            text = "".join(
                f"{encode_term_text(s)}\t{encode_term_text(o)}\n" for s, o in pairs
            )
            payload = zlib.compress(text.encode("utf-8"), level=6)
            text_bytes += len(payload)
            path = f"/sparqlgx/vp/{names[predicate.value]}.txt"
            self.session.hdfs.write(path, payload)
            table_name = f"gx_{names[predicate.value]}"
            self.session.register_rows(table_name, _VP_SCHEMA, rows)
            self._tables[predicate.value] = table_name
        report = LoadReport(
            system=self.name,
            stored_bytes=text_bytes,
            tables_written=len(self._tables),
            triples_loaded=len(graph),
            simulated_sec=estimate_load_seconds(
                self.session,
                text_bytes,
                len(graph),
                shuffles=1,
                table_jobs=len(self._tables),
                # Loading is a plain text transform; the RDD query-side
                # slowdown does not apply to it.
                rows_per_sec=self.session.config.rows_per_sec * self.RDD_SLOWDOWN,
            ),
            wall_clock_sec=time.perf_counter() - started,
        )
        self.load_report = report
        return report

    # -- querying ----------------------------------------------------------------

    def _frame_for_pattern(self, pattern: TriplePattern) -> DataFrame:
        if isinstance(pattern.predicate, Variable):
            return unbound_predicate_frame(self.session, self._tables, pattern)
        table = self._tables.get(pattern.predicate.value)
        if table is None:
            return shape_vp_frame(self.session, None, pattern)
        return shape_vp_frame(self.session, self.session.table(table), pattern)

    def dataframe(self, query: SelectQuery) -> DataFrame:
        """Compile a query to a left-deep chain of shuffle joins, ordered by
        SPARQLGX's own statistics (ascending estimated cardinality)."""
        assert self.statistics is not None
        ordered = sorted(
            query.patterns,
            key=lambda pattern: pattern_cardinality(self.statistics, pattern),
        )
        frame = self._frame_for_pattern(ordered[0])
        pending = list(ordered[1:])
        while pending:
            # Next pattern sharing a variable with the accumulated columns
            # (connected joins first; cartesian only when unavoidable).
            index = next(
                (
                    i
                    for i, pattern in enumerate(pending)
                    if {v.name for v in pattern.variables} & set(frame.columns)
                ),
                0,
            )
            pattern = pending.pop(index)
            right = self._frame_for_pattern(pattern)
            shared = sorted(set(frame.columns) & set(right.columns))
            if shared:
                frame = frame.join(right, on=shared, hint="shuffle")
            else:
                frame = frame.join(right, on=(), how="cross")
        for filter_expression in query.filters:
            frame = frame.filter(SparqlCondition(filter_expression))
        frame = frame.select(*[v.name for v in query.projection])
        if query.distinct:
            frame = frame.distinct()
        return frame

    def sparql(self, query: str | SelectQuery) -> ResultSet:
        """Execute a SELECT query; see :class:`ResultSet`."""
        parsed = parse_sparql(query) if isinstance(query, str) else query
        if parsed.optional_groups or parsed.is_union:
            raise UnsupportedSparqlError(
                "the SPARQLGX baseline evaluates plain basic graph patterns only"
            )
        started = time.perf_counter()
        frame = self.dataframe(parsed)
        # No Catalyst: the compiled plan runs as-is (no pushdown/pruning).
        encoded, engine_report = frame.collect_with_report(run_optimizer=False)
        rows = _apply_modifiers(parsed, [decode_row(row) for row in encoded])
        report = QueryExecutionReport(
            simulated_sec=engine_report.simulated_sec,
            wall_clock_sec=time.perf_counter() - started,
            join_tree=None,
            engine_report=engine_report,
        )
        self.last_query_report_ = report
        return ResultSet(tuple(v.name for v in parsed.projection), rows, report)

    def explain(self, query: str | SelectQuery, analyze: bool = False) -> str:
        """Plan-shape EXPLAIN of the compiled shuffle-join chain.

        SPARQLGX has no Catalyst, so the *unoptimized* plan is exactly what
        runs. With ``analyze``, the query executes under a tracer and the
        plan gains per-operator actual row counts and shuffle bytes.
        """
        parsed = parse_sparql(query) if isinstance(query, str) else query
        if parsed.optional_groups or parsed.is_union:
            raise UnsupportedSparqlError(
                "the SPARQLGX baseline evaluates plain basic graph patterns only"
            )
        frame = self.dataframe(parsed)
        if analyze:
            from ..obs.tracer import Tracer

            _, engine_report = frame.collect_with_report(
                run_optimizer=False, tracer=Tracer()
            )
            return f"== Engine Plan ==\n{engine_report.explain()}"
        return f"== Engine Plan ==\n{frame.explain(optimized=False)}"

    def last_query_report(self) -> QueryExecutionReport | None:
        return self.last_query_report_


class SparqlGxDirect:
    """SPARQLGX's *direct evaluator* (SDE): no preprocessing at all.

    The SPARQLGX paper ships a second mode that evaluates SPARQL straight
    off the raw triple file — no Vertical Partitioning, no statistics.
    Loading is a plain file copy (near-instant); every triple pattern scans
    the *whole* triple file, so queries pay for what loading saved. Useful
    when a dataset is queried once or twice and never again.
    """

    name = "SPARQLGX-SDE"

    _SCHEMA = TableSchema(
        [
            ColumnSchema("s", "string"),
            ColumnSchema("p", "string"),
            ColumnSchema("o", "string"),
        ]
    )

    def __init__(self, num_workers: int = 9, cluster_config: ClusterConfig | None = None):
        import dataclasses

        if cluster_config is None:
            cluster_config = ClusterConfig(num_workers=num_workers)
        cluster_config = dataclasses.replace(
            cluster_config,
            rows_per_sec=cluster_config.rows_per_sec / SparqlGx.RDD_SLOWDOWN,
        )
        self.session = EngineSession(SimulatedCluster(cluster_config))
        self.last_query_report_: QueryExecutionReport | None = None

    def load(self, graph: Graph) -> LoadReport:
        """Copy the triple file to HDFS; no transformation, no statistics."""
        started = time.perf_counter()
        # The copied file keeps the lexical, lexicographically sorted form;
        # the catalog rows carry the dictionary-encoded cells in file order.
        text_rows = sorted(
            (
                encode_term_text(triple.subject),
                encode_term_text(triple.predicate),
                encode_term_text(triple.object),
            )
            for triple in graph
        )
        text = "".join(f"{s} {p} {o} .\n" for s, p, o in text_rows)
        payload = text.encode("utf-8")
        self.session.hdfs.write("/sparqlgx-sde/triples.nt", payload, overwrite=True)
        rows = [tuple(cell_for_text(part) for part in row) for row in text_rows]
        self.session.register_rows("sde_triples", self._SCHEMA, rows, replace=True)
        config = self.session.config
        report = LoadReport(
            system=self.name,
            stored_bytes=len(payload),
            tables_written=1,
            triples_loaded=len(graph),
            simulated_sec=config.data_scale
            * len(payload)
            / (config.scan_bytes_per_sec * config.num_workers),
            wall_clock_sec=time.perf_counter() - started,
        )
        self.load_report = report
        return report

    def dataframe(self, query: SelectQuery) -> DataFrame:
        """Each pattern is a full scan of the triple file plus selections."""
        frame: DataFrame | None = None
        pending = list(query.patterns)
        ordered: list[TriplePattern] = []
        bound: set[str] = set()
        while pending:  # connected patterns first, query order otherwise
            index = next(
                (
                    i
                    for i, pattern in enumerate(pending)
                    if {v.name for v in pattern.variables} & bound
                ),
                0,
            )
            pattern = pending.pop(index)
            ordered.append(pattern)
            bound |= {v.name for v in pattern.variables}
        for pattern in ordered:
            right = self._pattern_frame(pattern)
            if frame is None:
                frame = right
                continue
            shared = sorted(set(frame.columns) & set(right.columns))
            if shared:
                frame = frame.join(right, on=shared, hint="shuffle")
            else:
                frame = frame.join(right, on=(), how="cross")
        assert frame is not None
        for filter_expression in query.filters:
            frame = frame.filter(SparqlCondition(filter_expression))
        frame = frame.select(*[v.name for v in query.projection])
        if query.distinct:
            frame = frame.distinct()
        return frame

    def _pattern_frame(self, pattern: TriplePattern) -> DataFrame:
        from ..engine.expressions import col, lit

        frame = self.session.table("sde_triples")
        if isinstance(pattern.predicate, Variable):
            name = pattern.predicate.name
            repeated = any(
                isinstance(slot, Variable) and slot.name == name
                for slot in (pattern.subject, pattern.object)
            )
            if repeated:
                # ``?p ?p ?o`` / ``?s ?p ?p``: the predicate equals another
                # slot, so constrain in place and let the subject/object
                # column carry the binding.
                if isinstance(pattern.subject, Variable) and pattern.subject.name == name:
                    frame = frame.filter(col("s") == col("p"))
                if isinstance(pattern.object, Variable) and pattern.object.name == name:
                    frame = frame.filter(col("o") == col("p"))
                return shape_vp_frame(self.session, frame.select("s", "o"), pattern)
            renamed = frame.rename({"p": name})
            return shape_vp_frame(self.session, renamed, pattern, keep=[name])
        frame = frame.filter(col("p") == lit(encode_term(pattern.predicate)))
        return shape_vp_frame(self.session, frame.select("s", "o"), pattern)

    def sparql(self, query: str | SelectQuery) -> ResultSet:
        """Execute a SELECT query; see :class:`ResultSet`."""
        parsed = parse_sparql(query) if isinstance(query, str) else query
        if parsed.optional_groups or parsed.is_union:
            raise UnsupportedSparqlError(
                "the SPARQLGX-SDE baseline evaluates plain basic graph patterns only"
            )
        started = time.perf_counter()
        frame = self.dataframe(parsed)
        encoded, engine_report = frame.collect_with_report(run_optimizer=False)
        rows = _apply_modifiers(parsed, [decode_row(row) for row in encoded])
        report = QueryExecutionReport(
            simulated_sec=engine_report.simulated_sec,
            wall_clock_sec=time.perf_counter() - started,
            engine_report=engine_report,
        )
        self.last_query_report_ = report
        return ResultSet(tuple(v.name for v in parsed.projection), rows, report)

    def explain(self, query: str | SelectQuery, analyze: bool = False) -> str:
        """Plan-shape EXPLAIN: every pattern scans the whole triple file.

        With ``analyze``, the query executes under a tracer and the plan
        gains per-operator actual row counts and shuffle bytes.
        """
        parsed = parse_sparql(query) if isinstance(query, str) else query
        if parsed.optional_groups or parsed.is_union:
            raise UnsupportedSparqlError(
                "the SPARQLGX-SDE baseline evaluates plain basic graph patterns only"
            )
        frame = self.dataframe(parsed)
        if analyze:
            from ..obs.tracer import Tracer

            _, engine_report = frame.collect_with_report(
                run_optimizer=False, tracer=Tracer()
            )
            return f"== Engine Plan ==\n{engine_report.explain()}"
        return f"== Engine Plan ==\n{frame.explain(optimized=False)}"

    def last_query_report(self) -> QueryExecutionReport | None:
        return self.last_query_report_
