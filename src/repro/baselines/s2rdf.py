"""S2RDF baseline (Schätzle et al., PVLDB 2016).

S2RDF extends Vertical Partitioning with **ExtVP**: precomputed semi-join
reductions. For every ordered predicate pair (p1, p2) and join-position pair
XY ∈ {SS, SO, OS, OO}::

    ExtVP_p1|p2^XY = { t ∈ VP_p1 : t.X ∈ π_Y(VP_p2) }

A reduction is *persisted* when its selectivity ``|ExtVP| / |VP_p1|`` is at
most a threshold (0.25 in the S2RDF evaluation); its selectivity is recorded
either way, and an empty reduction proves the whole query empty whenever the
corresponding join occurs (S2RDF's empty-table optimization).

At query time each triple pattern picks the smallest applicable reduction
over its join partners, then patterns are joined smallest-first through
Spark SQL (our engine with the optimizer on). The price is paid at load
time: the pairwise semi-join sweep is why S2RDF's loading takes hours and
its storage is the largest in the paper's Table 1.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass

from ..columnar.schema import ColumnSchema, TableSchema
from ..core.encoding import decode_row, encode_term
from ..core.filters import SparqlCondition
from ..core.loader import LoadReport
from ..core.naming import assign_names
from ..core.prost import _apply_modifiers
from ..core.results import QueryExecutionReport, ResultSet
from ..engine.cluster import ClusterConfig, SimulatedCluster
from ..engine.dataframe import DataFrame
from ..engine.session import EngineSession
from ..errors import UnsupportedSparqlError, ValidationError
from ..rdf.graph import Graph
from ..rdf.stats import GraphStatistics, collect_statistics
from ..sparql.algebra import SelectQuery, TriplePattern, Variable
from ..sparql.parser import parse_sparql
from .plans import pattern_cardinality, shape_vp_frame, unbound_predicate_frame

_VP_SCHEMA = TableSchema([ColumnSchema("s", "string"), ColumnSchema("o", "string")])

#: Join-position pairs, named as (position in p1, position in p2).
POSITION_PAIRS = ("SS", "SO", "OS", "OO")


@dataclass(frozen=True)
class ExtVpEntry:
    """Metadata of one computed reduction."""

    predicate: str
    partner: str
    positions: str
    row_count: int
    selectivity: float
    table_name: str | None  # None when not persisted (selectivity too high)

    @property
    def is_empty(self) -> bool:
        return self.row_count == 0


class S2Rdf:
    """VP + ExtVP SPARQL processor with precomputed semi-join reductions."""

    name = "S2RDF"

    def __init__(
        self,
        num_workers: int = 9,
        selectivity_threshold: float = 0.25,
        cluster_config: ClusterConfig | None = None,
    ):
        """
        Args:
            selectivity_threshold: persist reductions with selectivity at or
                below this bound (S2RDF's ``TH_sf``; 1.0 persists everything).
        """
        if not 0.0 <= selectivity_threshold <= 1.0:
            raise ValidationError("selectivity_threshold must be within [0, 1]")
        if cluster_config is None:
            cluster_config = ClusterConfig(num_workers=num_workers)
        self.session = EngineSession(SimulatedCluster(cluster_config))
        self.selectivity_threshold = selectivity_threshold
        self.statistics: GraphStatistics | None = None
        self._vp_tables: dict[str, str] = {}
        self._ext: dict[tuple[str, str, str], ExtVpEntry] = {}
        self.last_query_report_: QueryExecutionReport | None = None

    # -- loading -------------------------------------------------------------------

    def load(self, graph: Graph) -> LoadReport:
        """Build VP tables, then sweep all predicate pairs for reductions."""
        started = time.perf_counter()
        self.statistics = collect_statistics(graph)
        predicates = [p.value for p in graph.predicates]
        names = assign_names(predicates)

        rows_by_predicate: dict[str, list[tuple[str, str]]] = {}
        rows_by_subject: dict[str, dict[str, list[tuple[str, str]]]] = {}
        rows_by_object: dict[str, dict[str, list[tuple[str, str]]]] = {}
        for predicate in graph.predicates:
            rows = [
                (encode_term(t.subject), encode_term(t.object))
                for t in graph.triples_with_predicate(predicate)
            ]
            rows_by_predicate[predicate.value] = rows
            by_subject: dict[str, list[tuple[str, str]]] = defaultdict(list)
            by_object: dict[str, list[tuple[str, str]]] = defaultdict(list)
            for row in rows:
                by_subject[row[0]].append(row)
                by_object[row[1]].append(row)
            rows_by_subject[predicate.value] = by_subject
            rows_by_object[predicate.value] = by_object
            table = f"s2_vp_{names[predicate.value]}"
            self.session.register_rows(
                table, _VP_SCHEMA, rows,
                partition_columns=("s",),
                persist_path=f"/s2rdf/vp/{names[predicate.value]}",
            )
            self._vp_tables[predicate.value] = table

        # Pairwise semi-join sweep. The simulated cost charges, per computed
        # reduction, a shuffle of both inputs plus the write of the output —
        # the work the real S2RDF spends its hours of loading on.
        simulated_shuffle_bytes = 0
        simulated_write_bytes = 0
        reductions = 0
        for p1 in predicates:
            for p2 in predicates:
                for positions in POSITION_PAIRS:
                    if p1 == p2 and positions in ("SS", "OO"):
                        continue  # identity reductions are trivially full
                    entry = self._compute_reduction(
                        p1, p2, positions, names,
                        rows_by_predicate, rows_by_subject, rows_by_object,
                    )
                    if entry is None:
                        continue
                    self._ext[(p1, p2, positions)] = entry
                    reductions += 1
                    pair_rows = len(rows_by_predicate[p1]) + len(rows_by_predicate[p2])
                    simulated_shuffle_bytes += pair_rows * 60
                    simulated_write_bytes += entry.row_count * 60

        config = self.session.config
        scale = config.data_scale
        stored = self.session.catalog.total_stored_bytes()
        simulated_sec = (
            scale * stored / (config.scan_bytes_per_sec * config.num_workers)
            + scale * 2 * simulated_shuffle_bytes
            / (config.network_bytes_per_sec * config.num_workers)
            + scale * simulated_write_bytes
            / (config.scan_bytes_per_sec * config.num_workers)
            # Each reduction is one short Spark SQL job (submission +
            # scheduling); S2RDF's loading time is dominated by the sheer
            # number of these jobs.
            + reductions * 1.0
        )
        report = LoadReport(
            system=self.name,
            stored_bytes=stored,
            tables_written=len(self._vp_tables)
            + sum(1 for e in self._ext.values() if e.table_name),
            triples_loaded=len(graph),
            simulated_sec=simulated_sec,
            wall_clock_sec=time.perf_counter() - started,
        )
        self.load_report = report
        return report

    def _compute_reduction(
        self,
        p1: str,
        p2: str,
        positions: str,
        names: dict[str, str],
        rows_by_predicate,
        rows_by_subject,
        rows_by_object,
    ) -> ExtVpEntry | None:
        """Compute ExtVP_p1|p2^positions; persist it when selective enough."""
        p1_index = rows_by_subject[p1] if positions[0] == "S" else rows_by_object[p1]
        p2_index = rows_by_subject[p2] if positions[1] == "S" else rows_by_object[p2]
        total = len(rows_by_predicate[p1])
        if total == 0:
            return None
        common = p1_index.keys() & p2_index.keys()
        count = sum(len(p1_index[value]) for value in common)
        selectivity = count / total
        table_name = None
        if selectivity >= 1.0:
            # No reduction: S2RDF never stores full copies, queries use VP.
            return ExtVpEntry(p1, p2, positions, count, selectivity, None)
        if selectivity <= self.selectivity_threshold and count > 0:
            rows = [row for value in sorted(common) for row in p1_index[value]]
            table_name = f"s2_ext_{positions.lower()}_{names[p1]}__{names[p2]}"
            self.session.register_rows(
                table_name, _VP_SCHEMA, rows,
                partition_columns=("s",),
                persist_path=f"/s2rdf/extvp/{positions.lower()}/{names[p1]}__{names[p2]}",
            )
        return ExtVpEntry(p1, p2, positions, count, selectivity, table_name)

    # -- querying ----------------------------------------------------------------------

    def _table_choice(
        self, pattern: TriplePattern, others: list[TriplePattern]
    ) -> tuple[str | None, float, bool]:
        """Pick the best table for a pattern.

        Returns ``(table_name, estimated_rows, provably_empty)`` where the
        table is the smallest persisted reduction applicable against the
        pattern's join partners, falling back to the plain VP table.
        """
        assert self.statistics is not None
        p1 = pattern.predicate.value
        vp_rows = self.statistics.for_predicate(p1).triple_count
        best_table = self._vp_tables.get(p1)
        best_rows = float(vp_rows)
        if best_table is None:
            return None, 0.0, True
        for other in others:
            if isinstance(other.predicate, Variable):
                continue
            positions = _join_positions(pattern, other)
            if positions is None:
                continue
            entry = self._ext.get((p1, other.predicate.value, positions))
            if entry is None:
                continue
            if entry.is_empty:
                return best_table, 0.0, True
            if entry.table_name is not None and entry.row_count < best_rows:
                best_table = entry.table_name
                best_rows = float(entry.row_count)
        return best_table, best_rows, False

    def dataframe(self, query: SelectQuery) -> DataFrame | None:
        """Compile to a smallest-first join chain over the chosen tables.

        Returns ``None`` when an empty reduction proves the result empty.
        """
        assert self.statistics is not None
        patterns = list(query.patterns)
        choices: list[tuple[TriplePattern, str | None, float]] = []
        for pattern in patterns:
            if isinstance(pattern.predicate, Variable):
                # No reduction can apply to an unbound predicate: estimate it
                # as the whole dataset and answer it from the VP union.
                choices.append((pattern, "", float(self.statistics.total_triples)))
                continue
            others = [p for p in patterns if p is not pattern]
            table, rows, provably_empty = self._table_choice(pattern, others)
            if provably_empty:
                return None
            constant_factor = pattern_cardinality(self.statistics, pattern) / max(
                1.0, float(self.statistics.for_predicate(pattern.predicate.value).triple_count)
            )
            choices.append((pattern, table, rows * constant_factor))

        choices.sort(key=lambda item: item[2])
        frame = self._pattern_frame(choices[0][0], choices[0][1])
        pending = choices[1:]
        while pending:
            index = next(
                (
                    i
                    for i, (pattern, _, _) in enumerate(pending)
                    if {v.name for v in pattern.variables} & set(frame.columns)
                ),
                0,
            )
            pattern, table, _ = pending.pop(index)
            right = self._pattern_frame(pattern, table)
            shared = sorted(set(frame.columns) & set(right.columns))
            if shared:
                frame = frame.join(right, on=shared)
            else:
                frame = frame.join(right, on=(), how="cross")
        for filter_expression in query.filters:
            frame = frame.filter(SparqlCondition(filter_expression))
        frame = frame.select(*[v.name for v in query.projection])
        if query.distinct:
            frame = frame.distinct()
        return frame

    def _pattern_frame(self, pattern: TriplePattern, table: str | None) -> DataFrame:
        if isinstance(pattern.predicate, Variable):
            return unbound_predicate_frame(self.session, self._vp_tables, pattern)
        source = self.session.table(table) if table else None
        return shape_vp_frame(self.session, source, pattern)

    def sparql(self, query: str | SelectQuery) -> ResultSet:
        """Execute a SELECT query; see :class:`ResultSet`."""
        parsed = parse_sparql(query) if isinstance(query, str) else query
        if parsed.optional_groups or parsed.is_union:
            raise UnsupportedSparqlError(
                "the S2RDF baseline evaluates plain basic graph patterns only"
            )
        started = time.perf_counter()
        frame = self.dataframe(parsed)
        if frame is None:
            # Empty-table optimization: no cluster work at all.
            report = QueryExecutionReport(
                simulated_sec=self.session.config.task_overhead_sec,
                wall_clock_sec=time.perf_counter() - started,
            )
            self.last_query_report_ = report
            return ResultSet(tuple(v.name for v in parsed.projection), [], report)
        encoded, engine_report = frame.collect_with_report()
        rows = _apply_modifiers(parsed, [decode_row(row) for row in encoded])
        report = QueryExecutionReport(
            simulated_sec=engine_report.simulated_sec,
            wall_clock_sec=time.perf_counter() - started,
            engine_report=engine_report,
        )
        self.last_query_report_ = report
        return ResultSet(tuple(v.name for v in parsed.projection), rows, report)

    def explain(self, query: str | SelectQuery, analyze: bool = False) -> str:
        """Plan-shape EXPLAIN: per-pattern table choices + the join chain.

        Shows which ExtVP reduction (or plain VP table) answers each triple
        pattern and the compiled engine plan. With ``analyze``, the query
        executes under a tracer and the engine plan carries per-operator
        actual row counts and data-movement bytes.
        """
        parsed = parse_sparql(query) if isinstance(query, str) else query
        if parsed.optional_groups or parsed.is_union:
            raise UnsupportedSparqlError(
                "the S2RDF baseline evaluates plain basic graph patterns only"
            )
        assert self.statistics is not None
        patterns = list(parsed.patterns)
        lines = ["== Table Choices =="]
        for pattern in patterns:
            if isinstance(pattern.predicate, Variable):
                lines.append(f"{pattern}  ->  VP union (unbound predicate)")
                continue
            others = [p for p in patterns if p is not pattern]
            table, rows, provably_empty = self._table_choice(pattern, others)
            if provably_empty:
                lines.append(f"{pattern}  ->  empty reduction (query provably empty)")
            else:
                lines.append(f"{pattern}  ->  {table}  est={round(rows)} rows")
        lines.append("== Engine Plan ==")
        frame = self.dataframe(parsed)
        if frame is None:
            lines.append("(skipped: the empty-table optimization answers the query)")
        elif analyze:
            from ..obs.tracer import Tracer

            _, engine_report = frame.collect_with_report(tracer=Tracer())
            lines.append(engine_report.explain())
        else:
            lines.append(frame.explain())
        return "\n".join(lines)

    def last_query_report(self) -> QueryExecutionReport | None:
        return self.last_query_report_

    def extvp_entries(self) -> list[ExtVpEntry]:
        """All computed reductions (persisted or not), for inspection."""
        return list(self._ext.values())


def _join_positions(pattern: TriplePattern, other: TriplePattern) -> str | None:
    """The ExtVP position pair under which ``pattern`` joins ``other``.

    Considers variable correlations only (constants do not form joins);
    subject-subject beats other correlations when several exist, matching
    S2RDF's preference for the most selective reduction kind.
    """
    def var_name(slot) -> str | None:
        return slot.name if isinstance(slot, Variable) else None

    s1, o1 = var_name(pattern.subject), var_name(pattern.object)
    s2, o2 = var_name(other.subject), var_name(other.object)
    if s1 is not None and s1 == s2:
        return "SS"
    if s1 is not None and s1 == o2:
        return "SO"
    if o1 is not None and o1 == s2:
        return "OS"
    if o1 is not None and o1 == o2:
        return "OO"
    return None
