"""Reproduce the paper's evaluation on a laptop-scale WatDiv dataset.

Generates a WatDiv-style graph, runs the 20-query basic testing set on all
four systems (PRoST, S2RDF, Rya, SPARQLGX), and prints the paper's Table 1,
Figure 2, Figure 3, and Table 2 with simulated 100M-triple cluster timings.

Run with::

    python examples/watdiv_benchmark.py [scale]
"""

import sys

from repro.bench import (
    BenchmarkConfig,
    BenchmarkSuite,
    render_figure2,
    render_figure3,
    render_table1,
    render_table2,
)


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    suite = BenchmarkSuite(BenchmarkConfig(scale=scale))
    triples = len(suite.dataset.graph)
    print(
        f"WatDiv scale={scale}: {triples:,} triples "
        f"(cost model emulates WatDiv100M, factor {suite.data_scale:,.0f}x)\n"
    )

    print(render_table1(suite.run_loading_comparison(), suite.data_scale), "\n")

    runs = suite.run_strategy_comparison()
    print(render_figure2(runs), "\n")

    system_runs = suite.run_all_systems()
    print(render_figure3(system_runs), "\n")
    print(render_table2(system_runs))


if __name__ == "__main__":
    main()
