"""The worked EXPLAIN ANALYZE query from docs/ARCHITECTURE.md, runnable.

Loads a small WatDiv graph, shows the estimate-only EXPLAIN, executes the
query under a tracer, then re-renders the plan with actual row counts, join
strategies, and data movement — and demonstrates that the trace reconciles
with the run's ExecutionMetrics.

Run from the repository root::

    PYTHONPATH=src python examples/explain_walkthrough.py
"""

from repro.core.prost import ProstEngine
from repro.obs import Tracer, snapshot_execution_metrics
from repro.watdiv.generator import generate_watdiv

QUERY = """SELECT ?v ?name ?u WHERE {
  ?v sorg:caption ?name .
  ?v rev:hasReview ?r .
  ?r rev:reviewer ?u .
}"""


def main() -> None:
    """Load, EXPLAIN, EXPLAIN ANALYZE, and reconcile the trace."""
    print("# Loading WatDiv (scale=120, seed=3) into PRoST (mixed strategy)...")
    dataset = generate_watdiv(scale=120, seed=3)
    engine = ProstEngine(num_workers=9, strategy="mixed")
    load_report = engine.load(dataset.graph)
    print(f"#   {load_report.summary()}")

    print("\n# EXPLAIN — statistics-based estimates, nothing executed:\n")
    print(engine.explain(QUERY))

    print("\n# EXPLAIN ANALYZE — the query runs; every node gains actuals:\n")
    print(engine.explain(QUERY, analyze=True))

    print("\n# The raw span tree behind the ANALYZE render:\n")
    tracer = Tracer()
    result = engine.sparql(QUERY, tracer=tracer)
    report = engine.last_query_report()
    print(report.engine_report.explain())

    print("\n# Reconciliation: root-span counter deltas == ExecutionMetrics:")
    totals = snapshot_execution_metrics(report.engine_report.metrics)
    root = report.engine_report.trace
    for name in ("engine.bytes_scanned", "engine.broadcast_bytes",
                 "engine.shuffle_bytes"):
        print(f"#   {name:24} span={root.counters.get(name, 0):>8} "
              f"metrics={totals[name]:>8}")
    print(f"#   rows: result={len(result.rows)} "
          f"root span rows_out={root.attrs['rows_out']}")

    print("\n# Writing the full trace to explain_trace.json")
    tracer.write_json("explain_trace.json")


if __name__ == "__main__":
    main()
