"""Domain scenario: aggregate analytics with COUNT / GROUP BY.

PRoST's later development added SPARQL 1.1 features on top of the paper's
BGP fragment; this reproduction implements COUNT aggregates end to end
(parser → Join Tree → a partial-aggregation engine operator). The example
answers e-commerce dashboard questions over the WatDiv graph.

Run with::

    python examples/analytics_aggregates.py
"""

from repro import ProstEngine
from repro.watdiv import generate_watdiv
from repro.watdiv.schema import GR, REV, WSDBM

QUERIES = {
    "products per category": f"""
        SELECT ?category (COUNT(?p) AS ?products) WHERE {{
            ?p a ?category .
        }} GROUP BY ?category ORDER BY DESC(?products) LIMIT 5
    """,
    "most-reviewed products": f"""
        SELECT ?product (COUNT(?review) AS ?reviews) WHERE {{
            ?product <{REV}hasReview> ?review .
        }} GROUP BY ?product ORDER BY DESC(?reviews) LIMIT 5
    """,
    "distinct buyers": f"""
        SELECT (COUNT(DISTINCT ?buyer) AS ?buyers) WHERE {{
            ?buyer <{WSDBM}makesPurchase> ?purchase .
        }}
    """,
    "offers per retailer": f"""
        SELECT ?retailer (COUNT(?offer) AS ?offers) WHERE {{
            ?retailer <{GR}offers> ?offer .
        }} GROUP BY ?retailer ORDER BY DESC(?offers) LIMIT 5
    """,
}


def main() -> None:
    dataset = generate_watdiv(scale=300, seed=11)
    engine = ProstEngine()
    engine.load(dataset.graph)
    print(f"Catalogue: {len(dataset.graph):,} triples\n")

    for title, query in QUERIES.items():
        result = engine.sparql(query)
        print(f"== {title} ==  ({result.report.summary()})")
        for row in result:
            rendered = " | ".join(str(term) for term in row)
            print(f"  {rendered}")
        print()


if __name__ == "__main__":
    main()
