"""Domain scenario: choosing an RDF store for an unknown workload.

The paper's conclusion argues PRoST suits "real-world applications, for
which the query type and the dataset are unknown a priori". This example
plays that situation out: load one dataset into all four systems and compare
loading cost, storage footprint, and the latency profile across a selective
lookup, a star, and a join-heavy query.

Run with::

    python examples/store_comparison.py
"""

from repro.baselines import Rya, RyaCostModel, S2Rdf, SparqlGx, SparqlGxDirect
from repro.core import ProstEngine
from repro.engine.cluster import ClusterConfig
from repro.watdiv import generate_watdiv
from repro.watdiv.schema import FOAF, REV, SORG, WSDBM


def build_queries(dataset) -> dict[str, str]:
    user = dataset.placeholder("user", 1).n3()
    return {
        "point lookup": f"SELECT ?n WHERE {{ {user} <{FOAF}givenName> ?n }}",
        "star": f"""
            SELECT ?p ?caption ?desc WHERE {{
                ?p <{SORG}caption>     ?caption .
                ?p <{SORG}description> ?desc .
                ?p <{SORG}language>    ?lang .
            }}
        """,
        "join-heavy": f"""
            SELECT ?buyer ?product ?reviewer WHERE {{
                ?buyer   <{WSDBM}makesPurchase> ?purchase .
                ?purchase <{WSDBM}purchaseFor>  ?product .
                ?product <{REV}hasReview>       ?review .
                ?review  <{REV}reviewer>        ?reviewer .
            }}
        """,
    }


def main() -> None:
    dataset = generate_watdiv(scale=250, seed=3)
    data_scale = 100_000_000 / len(dataset.graph)  # emulate WatDiv100M
    config = ClusterConfig(num_workers=9, data_scale=data_scale)
    queries = build_queries(dataset)

    systems = [
        ProstEngine(cluster_config=config),
        S2Rdf(cluster_config=config),
        SparqlGx(cluster_config=config),
        SparqlGxDirect(cluster_config=config),
        Rya(cost_model=RyaCostModel(data_scale=data_scale)),
    ]

    print(f"{'system':<13} {'load':>10} {'storage':>10} "
          + "".join(f"{name:>16}" for name in queries))
    for system in systems:
        report = system.load(dataset.graph)
        cells = [
            f"{report.simulated_sec:>9.0f}s",
            f"{report.stored_bytes * data_scale / 1e9:>8.1f}GB",
        ]
        for query in queries.values():
            result = system.sparql(query)
            cells.append(f"{result.report.simulated_sec * 1000:>14,.0f}ms")
        print(f"{system.name:<13} " + " ".join(cells))

    print(
        "\nReading the profile (paper §5): Rya flies on the point lookup but"
        "\ncollapses on the join-heavy query; S2RDF pays hours of loading for"
        "\nits query speed; SPARQLGX is lean but slow to query; PRoST is the"
        "\nall-rounder — fast loading AND consistently good latency."
    )


if __name__ == "__main__":
    main()
