"""Quickstart: load a small RDF graph into PRoST and run SPARQL queries.

Run with::

    python examples/quickstart.py
"""

from repro import Graph, ProstEngine

NT = """
<http://example.org/alice>  <http://example.org/knows> <http://example.org/bob> .
<http://example.org/alice>  <http://example.org/knows> <http://example.org/carol> .
<http://example.org/bob>    <http://example.org/knows> <http://example.org/carol> .
<http://example.org/alice>  <http://example.org/name>  "Alice" .
<http://example.org/bob>    <http://example.org/name>  "Bob" .
<http://example.org/carol>  <http://example.org/name>  "Carol" .
<http://example.org/alice>  <http://example.org/age>   "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://example.org/bob>    <http://example.org/age>   "25"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://example.org/carol>  <http://example.org/city>  <http://example.org/paris> .
"""


def main() -> None:
    graph = Graph.from_ntriples(NT)
    print(f"Loaded graph: {graph}")

    # PRoST stores the graph twice: Vertical Partitioning tables (one table
    # per predicate) plus the Property Table (one wide row per subject).
    engine = ProstEngine(num_workers=9)
    report = engine.load(graph)
    print(f"Load: {report.summary()}\n")

    # A star query: both patterns share ?person, so the translator answers
    # them with ONE Property Table select — no join at all.
    star = """
        SELECT ?name ?age WHERE {
            ?person <http://example.org/name> ?name .
            ?person <http://example.org/age>  ?age .
        }
    """
    print("Star query (answered by the Property Table):")
    for name, age in engine.sparql(star):
        print(f"  {name} is {age}")
    print(engine.explain(star), "\n")

    # A chain query: distinct subjects, answered by joining VP tables.
    chain = """
        SELECT ?a ?c WHERE {
            ?a <http://example.org/knows> ?b .
            ?b <http://example.org/knows> ?c .
        }
    """
    print("Chain query (Vertical Partitioning joins):")
    for a, c in engine.sparql(chain):
        print(f"  {a} knows someone who knows {c}")

    # Every query produces an execution report with the simulated cluster
    # cost (the paper's 9-worker Gigabit cluster) and operator metrics.
    query_report = engine.last_query_report()
    print(f"\nLast query: {query_report.summary()}")


if __name__ == "__main__":
    main()
