"""Domain scenario: social-network analytics over the WatDiv e-commerce graph.

Demonstrates the public API on the kind of workload the paper's introduction
motivates — mixed star/chain analytics over a social graph — and shows how
the Join Tree translation adapts per query shape.

Run with::

    python examples/social_network_analysis.py
"""

from repro import ProstEngine
from repro.watdiv import generate_watdiv
from repro.watdiv.schema import DC, FOAF, SORG, WSDBM

QUERIES = {
    # Star: one Property Table row per user answers all four patterns.
    "user profiles (star)": f"""
        SELECT ?user ?name ?city WHERE {{
            ?user <{FOAF}givenName>   ?name .
            ?user <{DC}Location>      ?city .
            ?user <{WSDBM}gender>     ?gender .
            ?user <{SORG}jobTitle>    ?job .
        }} LIMIT 5
    """,
    # Chain across the social graph: follower recommendations.
    "who my friends follow (chain)": f"""
        SELECT DISTINCT ?user ?suggestion WHERE {{
            ?user       <{WSDBM}friendOf> ?friend .
            ?friend     <{WSDBM}follows>  ?suggestion .
        }} LIMIT 5
    """,
    # Mixed: a star on the user plus a hop to liked products.
    "named users and their likes (mixed)": f"""
        SELECT ?name ?product WHERE {{
            ?user <{FOAF}givenName>  ?name .
            ?user <{FOAF}familyName> ?family .
            ?user <{WSDBM}likes>     ?product .
        }} ORDER BY ?name LIMIT 5
    """,
    # Collaborative filtering: users sharing a liked product.
    "taste neighbours (object join)": f"""
        SELECT DISTINCT ?other WHERE {{
            ?me    <{WSDBM}likes> ?product .
            ?other <{WSDBM}likes> ?product .
            ?me    <{FOAF}givenName> "alpha" .
        }} LIMIT 5
    """,
}


def main() -> None:
    dataset = generate_watdiv(scale=200, seed=42)
    print(f"Social graph: {len(dataset.graph):,} triples, "
          f"{len(dataset.users)} users, {len(dataset.products)} products\n")

    engine = ProstEngine()
    engine.load(dataset.graph)

    for title, query in QUERIES.items():
        print(f"== {title} ==")
        tree = engine.translate(query)
        kinds = ", ".join(f"{k}×{v}" for k, v in sorted(tree.node_kinds().items()))
        result = engine.sparql(query)
        print(f"join tree: {kinds}, {tree.num_joins} join(s); "
              f"{len(result)} rows, {result.report.summary()}")
        for row in result:
            print("  " + " | ".join(str(term) for term in row))
        print()


if __name__ == "__main__":
    main()
