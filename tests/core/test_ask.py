"""ASK query tests: parser form and existence-check execution."""

import pytest

from repro.errors import UnsupportedSparqlError
from repro.sparql import parse_sparql


class TestAskParsing:
    def test_ask_form(self):
        query = parse_sparql("ASK { ?s <http://ex/p> ?o }")
        assert query.is_ask
        assert query.limit == 1
        assert query.variables == ()

    def test_ask_with_where_keyword(self):
        assert parse_sparql("ASK WHERE { ?s <http://ex/p> ?o }").is_ask

    def test_ask_with_filter(self):
        query = parse_sparql("ASK { ?s <http://ex/age> ?a . FILTER(?a > 5) }")
        assert len(query.filters) == 1

    def test_construct_still_unsupported(self):
        with pytest.raises(UnsupportedSparqlError):
            parse_sparql("CONSTRUCT { ?s <http://ex/p> ?o } WHERE { ?s <http://ex/p> ?o }")


class TestAskExecution:
    def test_true_when_pattern_matches(self, prost_mixed, social_reference):
        query = parse_sparql('ASK { ?x <http://ex/name> "Alice" }')
        assert prost_mixed.ask(query) is True
        assert social_reference.ask(query) is True

    def test_false_when_no_match(self, prost_mixed, social_reference):
        query = parse_sparql('ASK { ?x <http://ex/name> "Nobody" }')
        assert prost_mixed.ask(query) is False
        assert social_reference.ask(query) is False

    def test_ask_with_join(self, prost_mixed):
        assert prost_mixed.ask(
            "ASK { ?x <http://ex/knows> ?y . ?y <http://ex/knows> ?z }"
        )

    def test_ask_with_failing_filter(self, prost_mixed):
        assert not prost_mixed.ask(
            "ASK { ?x <http://ex/age> ?a . FILTER(?a > 1000) }"
        )

    def test_ask_works_on_select_too(self, prost_mixed):
        assert prost_mixed.ask("SELECT ?x WHERE { ?x <http://ex/tag> ?t }")
