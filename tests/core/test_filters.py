"""SparqlCondition bridge tests: algebra filters over encoded cells."""

from repro.columnar import ColumnSchema, TableSchema
from repro.core import SparqlCondition, encode_term
from repro.rdf.terms import IRI, Literal
from repro.sparql.algebra import And, Comparison, Or, Regex, Variable

SCHEMA = TableSchema([ColumnSchema("x", "string"), ColumnSchema("y", "string")])


def cell(term) -> str:
    return encode_term(term)


def integer(value: int) -> Literal:
    return Literal(str(value), datatype="http://www.w3.org/2001/XMLSchema#integer")


class TestSparqlCondition:
    def test_numeric_comparison_on_encoded_cells(self):
        condition = SparqlCondition(Comparison(">", Variable("x"), integer(5)))
        bound = condition.bind(SCHEMA)
        assert bound((cell(integer(7)), None))
        assert not bound((cell(integer(3)), None))

    def test_variable_to_variable_comparison(self):
        condition = SparqlCondition(Comparison("=", Variable("x"), Variable("y")))
        bound = condition.bind(SCHEMA)
        assert bound((cell(integer(5)), cell(integer(5))))
        assert not bound((cell(integer(5)), cell(integer(6))))

    def test_null_cell_fails_comparison(self):
        condition = SparqlCondition(Comparison("=", Variable("x"), integer(5)))
        assert not condition.bind(SCHEMA)((None, None))

    def test_regex_on_literal(self):
        condition = SparqlCondition(Regex(Variable("x"), "^al"))
        bound = condition.bind(SCHEMA)
        assert bound((cell(Literal("alice")), None))
        assert not bound((cell(Literal("bob")), None))
        assert not bound((cell(IRI("http://alpha")), None))  # IRIs don't regex-match

    def test_boolean_combinations(self):
        condition = SparqlCondition(
            Or(
                (
                    And((Comparison(">", Variable("x"), integer(1)),
                         Comparison("<", Variable("x"), integer(5)))),
                    Comparison("=", Variable("x"), integer(99)),
                )
            )
        )
        bound = condition.bind(SCHEMA)
        assert bound((cell(integer(3)), None))
        assert bound((cell(integer(99)), None))
        assert not bound((cell(integer(7)), None))

    def test_references_are_variable_names(self):
        condition = SparqlCondition(Comparison("=", Variable("x"), Variable("y")))
        assert condition.references() == {"x", "y"}

    def test_describe_is_readable(self):
        condition = SparqlCondition(Comparison(">", Variable("x"), integer(5)))
        assert "?x" in condition.describe()
        assert ">" in condition.describe()
