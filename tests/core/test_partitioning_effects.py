"""Partitioning-layout effects the paper's §3.1 design aims for.

PRoST hash-partitions every table on its subject column ("we partition
horizontally on the subject column ... every row is stored entirely in the
same node"). The observable payoff on our engine: subject-subject joins are
**colocated** — zero network shuffle — while subject-object joins (chains)
must move data.
"""

import pytest

from repro.core import ProstEngine
from repro.rdf import Graph
from repro.sparql import parse_sparql

from ..conftest import SOCIAL_NT


@pytest.fixture(scope="module")
def vp_engine():
    engine = ProstEngine(strategy="vp")
    engine.load(Graph.from_ntriples(SOCIAL_NT))
    return engine


@pytest.fixture(scope="module")
def mixed_engine():
    engine = ProstEngine(strategy="mixed")
    engine.load(Graph.from_ntriples(SOCIAL_NT))
    return engine


def metrics_for(engine, query: str):
    return engine.sparql(parse_sparql(query)).report.engine_report.metrics


class TestColocatedJoins:
    def test_subject_subject_vp_join_is_colocated(self, vp_engine):
        metrics = metrics_for(
            vp_engine,
            "SELECT ?x WHERE { ?x <http://ex/name> ?n . ?x <http://ex/age> ?a }",
        )
        assert metrics.colocated_joins == 1
        assert metrics.shuffle_bytes == 0
        assert metrics.broadcast_count == 0

    def test_three_way_subject_star_stays_colocated(self, vp_engine):
        metrics = metrics_for(
            vp_engine,
            "SELECT ?x WHERE { ?x <http://ex/name> ?n . ?x <http://ex/age> ?a . "
            "?x <http://ex/city> ?c }",
        )
        assert metrics.colocated_joins == 2
        assert metrics.shuffle_bytes == 0

    def test_chain_join_cannot_be_colocated(self, vp_engine):
        metrics = metrics_for(
            vp_engine,
            "SELECT ?x WHERE { ?x <http://ex/city> ?ci . ?ci <http://ex/country> ?c }",
        )
        # The join key is the first pattern's *object*: data must move
        # (broadcast or shuffle), never a free colocated join.
        assert metrics.colocated_joins == 0
        assert metrics.broadcast_count + (metrics.shuffle_bytes > 0) >= 1

    def test_pt_join_with_vp_on_subject_is_colocated(self, mixed_engine):
        # A PT star group joined to a VP pattern on the shared subject:
        # both sides are subject-partitioned.
        metrics = metrics_for(
            mixed_engine,
            "SELECT ?x WHERE { ?x <http://ex/name> ?n . ?x <http://ex/age> ?a . "
            "?x ?p <http://ex/berlin> }",
        )
        assert metrics.colocated_joins >= 0  # layout-dependent, never wrong
        # What must hold: the plan is correct and no cartesian appears.
        assert metrics.rows_output == 2
