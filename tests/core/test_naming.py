"""Naming tests: local names, sanitization, collision handling."""

from repro.core import assign_names, local_name, sanitize


class TestLocalName:
    def test_slash_segment(self):
        assert local_name("http://ex/path/likes") == "likes"

    def test_hash_fragment(self):
        assert local_name("http://ex/onto#type") == "type"

    def test_hash_beats_slash(self):
        assert local_name("http://ex/a#b") == "b"

    def test_no_separator_returns_input(self):
        assert local_name("plain") == "plain"

    def test_trailing_slash_stripped(self):
        assert local_name("http://ex/a/") == "a"


class TestSanitize:
    def test_replaces_invalid_characters(self):
        assert sanitize("a-b.c") == "a_b_c"

    def test_leading_digit_prefixed(self):
        assert sanitize("1abc") == "p_1abc"

    def test_empty_becomes_placeholder(self):
        assert sanitize("") == "p"


class TestAssignNames:
    def test_unique_names_for_colliding_locals(self):
        mapping = assign_names(["http://a/name", "http://b/name"])
        assert len(set(mapping.values())) == 2
        assert sorted(mapping.values()) == ["name", "name_2"]

    def test_deterministic_across_input_order(self):
        a = assign_names(["http://b/x", "http://a/x"])
        b = assign_names(["http://a/x", "http://b/x"])
        assert a == b

    def test_reserved_names_avoided(self):
        mapping = assign_names(["http://ex/s"], reserved={"s"})
        assert mapping["http://ex/s"] != "s"
