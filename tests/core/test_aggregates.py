"""PRoST COUNT/GROUP BY execution vs the reference evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProstEngine
from repro.rdf import Graph, IRI, Literal, Triple
from repro.rdf.reference import ReferenceEvaluator
from repro.sparql import parse_sparql

AGGREGATE_QUERIES = [
    'SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x <http://ex/knows> ?y } GROUP BY ?x',
    'SELECT (COUNT(*) AS ?n) WHERE { ?x <http://ex/knows> ?y }',
    'SELECT (COUNT(DISTINCT ?y) AS ?n) WHERE { ?x <http://ex/knows> ?y }',
    # group over a join
    'SELECT ?c (COUNT(?x) AS ?n) WHERE { ?x <http://ex/city> ?ci . '
    '?ci <http://ex/country> ?c } GROUP BY ?c',
    # counting an optional variable counts only bound solutions
    'SELECT ?x (COUNT(?a) AS ?n) WHERE { ?x <http://ex/name> ?m . '
    'OPTIONAL { ?x <http://ex/age> ?a } } GROUP BY ?x',
    # empty input still yields the one global row with count 0
    'SELECT (COUNT(*) AS ?n) WHERE { ?x <http://ex/missing> ?y }',
    # filter applies before the aggregation
    'SELECT (COUNT(?x) AS ?n) WHERE { ?x <http://ex/age> ?a . FILTER(?a > 26) }',
    # group by two variables
    'SELECT ?x ?t (COUNT(?y) AS ?n) WHERE { ?x <http://ex/knows> ?y . '
    '?x <http://ex/tag> ?t } GROUP BY ?x ?t',
]


class TestAgainstReference:
    @pytest.mark.parametrize("query", AGGREGATE_QUERIES)
    def test_mixed_matches_reference(self, prost_mixed, social_reference, query):
        parsed = parse_sparql(query)
        assert prost_mixed.sparql(parsed).rows == social_reference.evaluate(parsed)

    @pytest.mark.parametrize("query", AGGREGATE_QUERIES)
    def test_vp_matches_reference(self, prost_vp, social_reference, query):
        parsed = parse_sparql(query)
        assert prost_vp.sparql(parsed).rows == social_reference.evaluate(parsed)


class TestSemantics:
    def test_counts_are_integer_literals(self, prost_mixed):
        rows = prost_mixed.sparql(
            "SELECT (COUNT(*) AS ?n) WHERE { ?x <http://ex/name> ?y }"
        ).rows
        count = rows[0][0]
        assert isinstance(count, Literal)
        assert count.to_python() == 4

    def test_order_by_count_descending(self, prost_mixed):
        rows = prost_mixed.sparql(
            "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x <http://ex/knows> ?y } "
            "GROUP BY ?x ORDER BY DESC(?n)"
        ).rows
        counts = [row[1].to_python() for row in rows]
        assert counts == sorted(counts, reverse=True)

    def test_limit_after_grouping(self, prost_mixed):
        rows = prost_mixed.sparql(
            "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x <http://ex/knows> ?y } "
            "GROUP BY ?x LIMIT 2"
        ).rows
        assert len(rows) == 2


_SUBJECTS = [IRI(f"http://r/s{i}") for i in range(5)]
_PREDICATES = [IRI(f"http://r/p{i}") for i in range(3)]
_triples = st.builds(
    Triple,
    st.sampled_from(_SUBJECTS),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_SUBJECTS),
)


@given(st.lists(_triples, min_size=1, max_size=30), st.sampled_from([p.n3() for p in _PREDICATES]))
@settings(max_examples=25, deadline=None)
def test_property_grouped_count_matches_reference(triples, predicate):
    graph = Graph(triples)
    query = parse_sparql(
        f"SELECT ?s (COUNT(?o) AS ?n) (COUNT(DISTINCT ?o) AS ?d) "
        f"WHERE {{ ?s {predicate} ?o }} GROUP BY ?s"
    )
    engine = ProstEngine()
    engine.load(graph)
    assert engine.sparql(query).rows == ReferenceEvaluator(graph).evaluate(query)
