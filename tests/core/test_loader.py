"""Loader tests: VP tables, the Property Table, and the object-keyed PT."""

import pytest

from repro.core import decode_row, decode_term, load_prost_store
from repro.core.loader import (
    load_object_property_table,
    load_property_table,
    load_vertical_partitioning,
)
from repro.engine import EngineSession
from repro.errors import LoaderError
from repro.rdf import Graph, collect_statistics
from repro.rdf.terms import IRI, Literal


NT = """
<http://ex/a> <http://ex/likes> <http://ex/x> .
<http://ex/a> <http://ex/likes> <http://ex/y> .
<http://ex/b> <http://ex/likes> <http://ex/x> .
<http://ex/a> <http://ex/name> "A" .
<http://ex/b> <http://ex/name> "B" .
<http://ex/x> <http://ex/title> "X" .
"""


@pytest.fixture
def graph():
    return Graph.from_ntriples(NT)


class TestVerticalPartitioning:
    def test_one_table_per_predicate(self, graph):
        session = EngineSession()
        tables = load_vertical_partitioning(session, graph)
        assert set(tables) == {"http://ex/likes", "http://ex/name", "http://ex/title"}
        assert session.catalog.has("vp_likes")

    def test_table_contents(self, graph):
        session = EngineSession()
        load_vertical_partitioning(session, graph)
        rows = session.table("vp_likes").collect()
        decoded = [decode_row(row) for row in rows]
        assert sorted(decoded, key=lambda r: (r[0].value, r[1].value)) == [
            (IRI("http://ex/a"), IRI("http://ex/x")),
            (IRI("http://ex/a"), IRI("http://ex/y")),
            (IRI("http://ex/b"), IRI("http://ex/x")),
        ]

    def test_tables_partitioned_on_subject(self, graph):
        session = EngineSession()
        load_vertical_partitioning(session, graph)
        table = session.catalog.get("vp_likes")
        assert table.data.partitioner is not None
        assert table.data.partitioner.columns == ("s",)

    def test_tables_persisted_to_hdfs(self, graph):
        session = EngineSession()
        load_vertical_partitioning(session, graph)
        assert session.hdfs.exists("/prost/vp/likes")


class TestPropertyTable:
    def test_one_row_per_subject(self, graph):
        session = EngineSession()
        stats = collect_statistics(graph)
        info = load_property_table(session, graph, stats)
        assert info.row_count == 3  # a, b, x

    def test_multivalued_column_is_list(self, graph):
        session = EngineSession()
        stats = collect_statistics(graph)
        info = load_property_table(session, graph, stats)
        assert info.is_multivalued("http://ex/likes")
        assert not info.is_multivalued("http://ex/name")
        schema = session.catalog.get(info.table_name).schema
        assert schema.column(info.column("http://ex/likes")).type == "list<string>"
        assert schema.column(info.column("http://ex/name")).type == "string"

    def test_missing_values_are_null(self, graph):
        session = EngineSession()
        stats = collect_statistics(graph)
        info = load_property_table(session, graph, stats)
        rows = session.table(info.table_name).to_dicts()
        row_x = [r for r in rows if decode_term(r["s"]) == IRI("http://ex/x")][0]
        assert row_x[info.column("http://ex/likes")] is None
        assert decode_term(row_x[info.column("http://ex/title")]) == Literal("X")

    def test_empty_graph_rejected(self):
        session = EngineSession()
        empty = Graph()
        with pytest.raises(LoaderError):
            load_property_table(session, empty, collect_statistics(empty))


class TestObjectPropertyTable:
    def test_rows_keyed_by_object(self, graph):
        session = EngineSession()
        stats = collect_statistics(graph)
        info = load_object_property_table(session, graph, stats)
        rows = session.table(info.table_name).to_dicts()
        row_x = [r for r in rows if decode_term(r["o"]) == IRI("http://ex/x")][0]
        likers = [decode_term(c) for c in row_x[info.column("http://ex/likes")]]
        assert sorted(likers, key=lambda t: t.value) == [
            IRI("http://ex/a"),
            IRI("http://ex/b"),
        ]

    def test_all_columns_are_lists(self, graph):
        session = EngineSession()
        stats = collect_statistics(graph)
        info = load_object_property_table(session, graph, stats)
        schema = session.catalog.get(info.table_name).schema
        for column in schema.columns[1:]:
            assert column.is_list


class TestFullLoad:
    def test_load_report_fields(self, graph):
        store = load_prost_store(graph)
        report = store.load_report
        assert report.triples_loaded == 6
        assert report.tables_written == 4  # 3 VP + PT
        assert report.stored_bytes > 0
        assert report.simulated_sec > 0
        assert "PRoST" in report.summary()

    def test_vp_only_load(self, graph):
        store = load_prost_store(graph, include_property_table=False)
        assert store.property_table is None
        assert store.load_report.tables_written == 3

    def test_object_pt_included_on_request(self, graph):
        store = load_prost_store(graph, include_object_property_table=True)
        assert store.object_property_table is not None

    def test_vp_table_name_lookup(self, graph):
        store = load_prost_store(graph)
        assert store.vp_table_name("http://ex/likes") == "vp_likes"
        assert store.vp_table_name("http://ex/zzz") is None
