"""Term ↔ cell encoding tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import decode_row, decode_term, encode_term
from repro.rdf.terms import IRI, BlankNode, Literal


class TestEncodeDecode:
    def test_iri(self):
        assert encode_term(IRI("http://ex/a")) == "<http://ex/a>"
        assert decode_term("<http://ex/a>") == IRI("http://ex/a")

    def test_literal_with_datatype(self):
        lit = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert decode_term(encode_term(lit)) == lit

    def test_language_literal(self):
        lit = Literal("hi", language="en")
        assert decode_term(encode_term(lit)) == lit

    def test_bnode(self):
        assert decode_term(encode_term(BlankNode("b0"))) == BlankNode("b0")

    def test_none_passes_through(self):
        assert decode_term(None) is None

    def test_decode_row(self):
        row = ("<http://ex/a>", None, '"x"')
        assert decode_row(row) == (IRI("http://ex/a"), None, Literal("x"))

    def test_encoding_is_injective_across_kinds(self):
        """An IRI, a literal of the same text, and a bnode never collide."""
        cells = {
            encode_term(IRI("x")),
            encode_term(Literal("x")),
            encode_term(BlankNode("x")),
        }
        assert len(cells) == 3


_terms = (
    st.from_regex(r"[a-z0-9/._-]{1,12}", fullmatch=True).map(lambda s: IRI("http://ex/" + s))
    | st.builds(Literal, st.text(max_size=15))
    | st.from_regex(r"[A-Za-z0-9]{1,6}", fullmatch=True).map(BlankNode)
)


@given(_terms)
@settings(max_examples=100, deadline=None)
def test_property_term_cells_round_trip(term):
    assert decode_term(encode_term(term)) == term
