"""Term ↔ cell encoding tests (dictionary IDs and the strings ablation)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    cell_for_text,
    cell_text,
    decode_row,
    decode_term,
    encode_term,
    encode_term_text,
)
from repro.rdf import is_term_id, term_ids
from repro.rdf.terms import IRI, BlankNode, Literal


class TestEncodeDecode:
    def test_iri(self):
        assert encode_term_text(IRI("http://ex/a")) == "<http://ex/a>"
        assert decode_term(encode_term(IRI("http://ex/a"))) == IRI("http://ex/a")
        assert decode_term("<http://ex/a>") == IRI("http://ex/a")

    def test_literal_with_datatype(self):
        lit = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert decode_term(encode_term(lit)) == lit

    def test_language_literal(self):
        lit = Literal("hi", language="en")
        assert decode_term(encode_term(lit)) == lit

    def test_bnode(self):
        assert decode_term(encode_term(BlankNode("b0"))) == BlankNode("b0")

    def test_none_passes_through(self):
        assert decode_term(None) is None

    def test_decode_row(self):
        row = ("<http://ex/a>", None, '"x"')
        assert decode_row(row) == (IRI("http://ex/a"), None, Literal("x"))

    def test_encoding_is_injective_across_kinds(self):
        """An IRI, a literal of the same text, and a bnode never collide."""
        cells = {
            encode_term(IRI("x")),
            encode_term(Literal("x")),
            encode_term(BlankNode("x")),
        }
        assert len(cells) == 3


class TestTermIdContract:
    def test_cells_are_term_ids(self):
        cell = encode_term(IRI("http://ex/id-contract"))
        assert is_term_id(cell)

    def test_interning_is_idempotent(self):
        term = IRI("http://ex/idempotent")
        assert encode_term(term) == encode_term(term)

    def test_plain_int_decodes_to_count_literal(self):
        """An arithmetic int (COUNT output) is not a dictionary ID."""
        assert decode_term(7) == Literal(
            "7", datatype="http://www.w3.org/2001/XMLSchema#integer"
        )

    def test_term_id_decodes_through_dictionary(self):
        term = Literal("7", datatype="http://www.w3.org/2001/XMLSchema#integer")
        cell = encode_term(term)
        assert is_term_id(cell)
        assert decode_term(cell) == term

    def test_cell_text_round_trips(self):
        cell = cell_for_text("<http://ex/text-round-trip>")
        assert cell_text(cell) == "<http://ex/text-round-trip>"

    def test_strings_ablation_uses_lexical_cells(self):
        with term_ids(False):
            cell = encode_term(IRI("http://ex/ablation"))
            assert cell == "<http://ex/ablation>"
            assert decode_term(cell) == IRI("http://ex/ablation")
            assert cell_for_text(cell) == cell


_terms = (
    st.from_regex(r"[a-z0-9/._-]{1,12}", fullmatch=True).map(lambda s: IRI("http://ex/" + s))
    | st.builds(Literal, st.text(max_size=15))
    | st.from_regex(r"[A-Za-z0-9]{1,6}", fullmatch=True).map(BlankNode)
)


@given(_terms)
@settings(max_examples=100, deadline=None)
def test_property_term_cells_round_trip(term):
    assert decode_term(encode_term(term)) == term


@given(_terms)
@settings(max_examples=100, deadline=None)
def test_property_strings_mode_round_trip(term):
    with term_ids(False):
        assert decode_term(encode_term(term)) == term
