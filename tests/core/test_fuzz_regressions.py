"""Regression tests for divergences found by the differential fuzzer.

Each test inlines the *shrunken* counterexample the fuzzer reported (minimal
graph + minimal query) and asserts all engines now agree with the brute-force
oracle. Replay any of these against the harness with::

    PYTHONPATH=src python -m repro.cli fuzz --seed <seed> --iterations 1
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.baselines import Rya, S2Rdf, SparqlGx
from repro.baselines.sparqlgx import SparqlGxDirect
from repro.core import ProstEngine
from repro.rdf import Graph
from repro.sparql.parser import parse_sparql
from repro.testing import BruteForceOracle
from repro.testing.differential import (
    ServedProstEngine,
    row_key,
    serve_mode_from_env,
)


def _prost(strategy: str):
    """A PRoST engine — served (cached-plan + batch cross-checks) when the
    CI leg sets REPRO_SERVE_MODE, direct otherwise."""
    if serve_mode_from_env():
        return ServedProstEngine(strategy)
    return ProstEngine(strategy=strategy)


ENGINE_FACTORIES = {
    "prost-mixed": lambda: _prost("mixed"),
    "prost-vp": lambda: _prost("vp"),
    "s2rdf": S2Rdf,
    "sparqlgx": SparqlGx,
    "sparqlgx-sde": SparqlGxDirect,
    "rya": Rya,
}


def assert_matches_oracle(graph_nt: str, query_text: str, engine_name: str) -> None:
    graph = Graph.from_ntriples(graph_nt)
    query = parse_sparql(query_text)
    expected = BruteForceOracle(graph).evaluate(query)
    engine = ENGINE_FACTORIES[engine_name]()
    engine.load(graph)
    actual = engine.sparql(query).rows
    assert Counter(map(row_key, actual)) == Counter(map(row_key, expected))


@pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
class TestRepeatedPredicateVariable:
    """Fuzzer seed 0, query #3: a predicate variable shared with the subject
    or object slot crashed every engine except Rya (PRoST raised
    ``TranslationError: predicate variable ?v2 also used elsewhere``;
    S2RDF/SPARQLGX raised ``PlanError: duplicate output columns``). The fix
    turns the shared variable into an equality constraint against the tagged
    predicate column."""

    # Shrunken counterexample, verbatim from the fuzzer report (seed 0).
    MISS_GRAPH = (
        "<http://db.uwaterloo.ca/~galuc/wsdbm/Entity3> "
        "<http://db.uwaterloo.ca/~galuc/wsdbm/follows> "
        "<http://db.uwaterloo.ca/~galuc/wsdbm/Entity8> ."
    )

    # Graphs where the equality constraint actually selects rows.
    HIT_GRAPH = """
    <http://ex/s> <http://ex/v> <http://ex/v> .
    <http://ex/p> <http://ex/p> <http://ex/o> .
    <http://ex/x> <http://ex/x> <http://ex/x> .
    <http://ex/s> <http://ex/other> <http://ex/o2> .
    """

    def test_predicate_equals_object_no_match(self, engine_name):
        assert_matches_oracle(
            self.MISS_GRAPH, "SELECT ?v0 WHERE { ?v0 ?v2 ?v2 }", engine_name
        )

    def test_predicate_equals_object_with_match(self, engine_name):
        assert_matches_oracle(
            self.HIT_GRAPH, "SELECT ?s ?p WHERE { ?s ?p ?p }", engine_name
        )

    def test_predicate_equals_subject_with_match(self, engine_name):
        assert_matches_oracle(
            self.HIT_GRAPH, "SELECT ?p ?o WHERE { ?p ?p ?o }", engine_name
        )

    def test_all_three_slots_shared(self, engine_name):
        assert_matches_oracle(
            self.HIT_GRAPH, "SELECT ?x WHERE { ?x ?x ?x }", engine_name
        )

    def test_shared_predicate_variable_joins_other_pattern(self, engine_name):
        assert_matches_oracle(
            self.HIT_GRAPH,
            "SELECT ?s ?p ?o WHERE { ?s ?p ?p . ?p ?p ?o }",
            engine_name,
        )
