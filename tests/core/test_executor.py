"""Join-tree executor tests: node plans and edge cases."""

import pytest

from repro.core import JoinTreeExecutor, ProstEngine
from repro.rdf import Graph, IRI, Literal
from repro.sparql import parse_sparql


NT = """
<http://ex/a> <http://ex/likes> <http://ex/x> .
<http://ex/a> <http://ex/likes> <http://ex/y> .
<http://ex/b> <http://ex/likes> <http://ex/x> .
<http://ex/a> <http://ex/name> "A" .
<http://ex/b> <http://ex/name> "B" .
<http://ex/x> <http://ex/self> <http://ex/x> .
"""


@pytest.fixture(scope="module")
def engine():
    prost = ProstEngine()
    prost.load(Graph.from_ntriples(NT))
    return prost


def run(engine, query: str):
    return engine.sparql(query).rows


class TestVpNodePlans:
    def test_constant_subject(self, engine):
        rows = run(engine, "SELECT ?o WHERE { <http://ex/a> <http://ex/likes> ?o }")
        assert [r[0] for r in rows] == [IRI("http://ex/x"), IRI("http://ex/y")]

    def test_constant_object(self, engine):
        rows = run(engine, "SELECT ?s WHERE { ?s <http://ex/likes> <http://ex/x> }")
        assert {r[0] for r in rows} == {IRI("http://ex/a"), IRI("http://ex/b")}

    def test_fully_bound_pattern_as_existence_check(self, engine):
        rows = run(
            engine,
            "SELECT ?n WHERE { <http://ex/a> <http://ex/likes> <http://ex/x> . "
            "?x <http://ex/name> ?n }",
        )
        assert len(rows) == 2  # existence holds: all names returned

    def test_fully_bound_pattern_failing_kills_query(self, engine):
        rows = run(
            engine,
            "SELECT ?n WHERE { <http://ex/a> <http://ex/likes> <http://ex/zzz> . "
            "?x <http://ex/name> ?n }",
        )
        assert rows == []

    def test_same_variable_subject_and_object(self, engine):
        rows = run(engine, "SELECT ?x WHERE { ?x <http://ex/self> ?x }")
        assert rows == [(IRI("http://ex/x"),)]

    def test_variable_predicate_returns_tagged_rows(self, engine):
        rows = run(engine, "SELECT ?p WHERE { <http://ex/b> ?p ?o }")
        assert {r[0].value for r in rows} == {"http://ex/likes", "http://ex/name"}


class TestPtNodePlans:
    def test_star_with_multivalued_explode(self, engine):
        rows = run(
            engine,
            "SELECT ?o ?n WHERE { ?s <http://ex/likes> ?o . ?s <http://ex/name> ?n }",
        )
        assert (IRI("http://ex/y"), Literal("A")) in rows
        assert len(rows) == 3

    def test_star_with_constant_in_multivalued(self, engine):
        rows = run(
            engine,
            "SELECT ?n WHERE { ?s <http://ex/likes> <http://ex/y> . ?s <http://ex/name> ?n }",
        )
        assert rows == [(Literal("A"),)]

    def test_star_with_constant_subject(self, engine):
        rows = run(
            engine,
            "SELECT ?o ?n WHERE { <http://ex/a> <http://ex/likes> ?o . "
            "<http://ex/a> <http://ex/name> ?n }",
        )
        assert len(rows) == 2

    def test_same_predicate_twice_in_star(self, engine):
        rows = run(
            engine,
            "SELECT ?o1 ?o2 WHERE { ?s <http://ex/likes> ?o1 . ?s <http://ex/likes> ?o2 }",
        )
        # a: 2×2 combinations, b: 1×1.
        assert len(rows) == 5

    def test_repeated_object_variable_in_star(self, engine):
        rows = run(
            engine,
            "SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?s <http://ex/self> ?o }",
        )
        assert rows == []  # nothing likes itself in the data

    def test_pt_requires_property_table(self):
        from repro.core.join_tree import JoinTree, PtNode
        from repro.core.loader import load_prost_store
        from repro.errors import TranslationError
        from repro.sparql.algebra import TriplePattern, Variable

        store = load_prost_store(
            Graph.from_ntriples(NT), include_property_table=False
        )
        pattern = TriplePattern(Variable("s"), IRI("http://ex/name"), Variable("n"))
        node = PtNode(patterns=(pattern, pattern))
        with pytest.raises(TranslationError):
            JoinTreeExecutor(store).build(JoinTree(root=node))
