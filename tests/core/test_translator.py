"""Translator tests: grouping, priorities, tree shape, strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JoinTreeTranslator, PtNode, VpNode
from repro.core.join_tree import ObjectPtNode
from repro.errors import TranslationError
from repro.rdf import Graph, collect_statistics
from repro.sparql import parse_sparql

NT = """
<http://ex/a> <http://ex/likes> <http://ex/x> .
<http://ex/a> <http://ex/likes> <http://ex/y> .
<http://ex/b> <http://ex/likes> <http://ex/x> .
<http://ex/c> <http://ex/likes> <http://ex/x> .
<http://ex/a> <http://ex/name> "A" .
<http://ex/b> <http://ex/name> "B" .
<http://ex/x> <http://ex/title> "X" .
<http://ex/y> <http://ex/title> "Y" .
"""


@pytest.fixture(scope="module")
def stats():
    return collect_statistics(Graph.from_ntriples(NT))


def translate(stats, query: str, **kwargs):
    return JoinTreeTranslator(stats, **kwargs).translate(parse_sparql(query))


class TestGrouping:
    def test_star_becomes_single_pt_node(self, stats):
        tree = translate(
            stats,
            "SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?s <http://ex/name> ?n }",
        )
        assert tree.num_nodes == 1
        assert isinstance(tree.root, PtNode)
        assert len(tree.root.patterns) == 2

    def test_single_patterns_become_vp_nodes(self, stats):
        tree = translate(
            stats,
            "SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?o <http://ex/title> ?t }",
        )
        assert tree.num_nodes == 2
        assert all(isinstance(node, VpNode) for node in tree.nodes)

    def test_mixed_query_gets_both_kinds(self, stats):
        tree = translate(
            stats,
            "SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?s <http://ex/name> ?n . "
            "?o <http://ex/title> ?t }",
        )
        kinds = tree.node_kinds()
        assert kinds == {"PT": 1, "VP": 1}

    def test_vp_strategy_never_uses_pt(self, stats):
        tree = translate(
            stats,
            "SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?s <http://ex/name> ?n }",
            strategy="vp",
        )
        assert tree.num_nodes == 2
        assert all(isinstance(node, VpNode) for node in tree.nodes)

    def test_variable_predicate_stays_vp(self, stats):
        tree = translate(
            stats,
            "SELECT ?s WHERE { ?s ?p ?o . ?s <http://ex/name> ?n . "
            "?s <http://ex/likes> ?l }",
        )
        kinds = tree.node_kinds()
        assert kinds["VP"] == 1  # the ?p pattern cannot go to the PT
        assert kinds["PT"] == 1

    def test_every_pattern_covered_exactly_once(self, stats):
        query = (
            "SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?s <http://ex/name> ?n . "
            "?o <http://ex/title> ?t . ?x <http://ex/likes> ?o }"
        )
        parsed = parse_sparql(query)
        tree = JoinTreeTranslator(stats).translate(parsed)
        assert sorted(map(str, tree.patterns())) == sorted(map(str, parsed.patterns))


class TestPriorities:
    def test_constant_object_scores_highest(self, stats):
        tree = translate(
            stats,
            'SELECT ?s ?o WHERE { ?s <http://ex/likes> ?o . ?o <http://ex/title> "X" }',
        )
        # The literal-constrained node must NOT be the root (it is pushed down).
        assert isinstance(tree.root, VpNode)
        assert not tree.root.pattern.has_constant_object
        child = tree.root.children[0]
        assert child.patterns[0].has_constant_object

    def test_largest_predicate_is_root(self, stats):
        tree = translate(
            stats,
            "SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?o <http://ex/title> ?t }",
        )
        assert tree.root.patterns[0].predicate.value == "http://ex/likes"

    def test_pt_node_with_literal_weighted_heavily(self, stats):
        tree = translate(
            stats,
            'SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?s <http://ex/name> "A" . '
            "?o <http://ex/title> ?t }",
        )
        # PT node has a literal: it should sit below the VP title node.
        assert isinstance(tree.root, VpNode)

    def test_extended_statistics_star_estimate(self):
        graph = Graph.from_ntriples(NT)
        stats = collect_statistics(graph, level="extended")
        tree = translate(
            stats,
            "SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?s <http://ex/name> ?n }",
        )
        # Exactly two subjects carry both predicates.
        assert tree.root.priority == pytest.approx(-2.0)


class TestTreeShape:
    def test_connected_queries_have_no_cartesian(self, stats):
        tree = translate(
            stats,
            "SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?o <http://ex/title> ?t . "
            "?x <http://ex/likes> ?o }",
        )
        # Every non-root node shares a variable with its parent.
        for node in tree.nodes:
            for child in node.children:
                assert node.variables & child.variables

    def test_join_count(self, stats):
        tree = translate(
            stats,
            "SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?o <http://ex/title> ?t }",
        )
        assert tree.num_joins == 1

    def test_describe_renders(self, stats):
        tree = translate(
            stats, "SELECT ?s WHERE { ?s <http://ex/likes> ?o . ?s <http://ex/name> ?n }"
        )
        text = tree.describe()
        assert "PT" in text and "likes" in text


class TestObjectPtGrouping:
    def test_shared_object_grouped_when_enabled(self, stats):
        query = (
            "SELECT ?o WHERE { ?a <http://ex/likes> ?o . ?b <http://ex/likes> ?o . "
            "?o <http://ex/title> ?t }"
        )
        tree = translate(stats, query, use_object_property_table=True)
        assert any(isinstance(node, ObjectPtNode) for node in tree.nodes)

    def test_disabled_by_default(self, stats):
        query = "SELECT ?o WHERE { ?a <http://ex/likes> ?o . ?b <http://ex/likes> ?o }"
        tree = translate(stats, query)
        assert all(isinstance(node, VpNode) for node in tree.nodes)


class TestValidation:
    def test_unknown_strategy_rejected(self, stats):
        with pytest.raises(TranslationError):
            JoinTreeTranslator(stats, strategy="hyper")

    def test_min_group_size_validated(self, stats):
        with pytest.raises(TranslationError):
            JoinTreeTranslator(stats, min_group_size=1)


@given(st.integers(2, 5), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_property_tree_covers_all_patterns(star_size, seed):
    """Any star query's tree covers each pattern exactly once."""
    graph = Graph.from_ntriples(NT)
    stats = collect_statistics(graph)
    predicates = ["likes", "name", "title", "likes", "name"][:star_size]
    body = " . ".join(f"?s <http://ex/{p}> ?o{i}" for i, p in enumerate(predicates))
    parsed = parse_sparql(f"SELECT ?s WHERE {{ {body} }}")
    tree = JoinTreeTranslator(stats).translate(parsed)
    assert len(tree.patterns()) == len(parsed.patterns)
