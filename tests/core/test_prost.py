"""End-to-end PRoST tests: queries against the reference evaluator."""

import pytest

from repro.core import ProstEngine
from repro.errors import LoaderError
from repro.rdf import Graph, IRI, Literal
from repro.sparql import parse_sparql

from ..conftest import SOCIAL_QUERIES


class TestAgainstReference:
    @pytest.mark.parametrize("query", SOCIAL_QUERIES)
    def test_mixed_matches_reference(self, prost_mixed, social_reference, query):
        parsed = parse_sparql(query)
        assert prost_mixed.sparql(parsed).rows == social_reference.evaluate(parsed)

    @pytest.mark.parametrize("query", SOCIAL_QUERIES)
    def test_vp_matches_reference(self, prost_vp, social_reference, query):
        parsed = parse_sparql(query)
        assert prost_vp.sparql(parsed).rows == social_reference.evaluate(parsed)


class TestModifiers:
    def test_order_by_desc(self, prost_mixed):
        rows = prost_mixed.sparql(
            "SELECT ?n WHERE { ?x <http://ex/name> ?n } ORDER BY DESC(?n)"
        ).rows
        names = [row[0].lexical for row in rows]
        assert names == sorted(names, reverse=True)

    def test_limit_offset(self, prost_mixed):
        all_rows = prost_mixed.sparql("SELECT ?n WHERE { ?x <http://ex/name> ?n }").rows
        sliced = prost_mixed.sparql(
            "SELECT ?n WHERE { ?x <http://ex/name> ?n } LIMIT 2 OFFSET 1"
        ).rows
        assert sliced == all_rows[1:3]

    def test_distinct(self, prost_mixed):
        rows = prost_mixed.sparql(
            "SELECT DISTINCT ?y WHERE { ?x <http://ex/knows> ?y }"
        ).rows
        assert len(rows) == len(set(rows)) == 3


class TestResultSet:
    def test_to_dicts(self, prost_mixed):
        result = prost_mixed.sparql("SELECT ?n WHERE { <http://ex/alice> <http://ex/name> ?n }")
        assert result.to_dicts() == [{"n": Literal("Alice")}]

    def test_len_and_iter(self, prost_mixed):
        result = prost_mixed.sparql("SELECT ?n WHERE { ?x <http://ex/name> ?n }")
        assert len(result) == 4
        assert len(list(result)) == 4

    def test_variables_ordered_by_projection(self, prost_mixed):
        result = prost_mixed.sparql(
            "SELECT ?n ?x WHERE { ?x <http://ex/name> ?n }"
        )
        assert result.variables == ("n", "x")


class TestReports:
    def test_query_report_populated(self, prost_mixed):
        result = prost_mixed.sparql("SELECT ?n WHERE { ?x <http://ex/name> ?n }")
        report = result.report
        assert report.simulated_sec > 0
        assert report.wall_clock_sec > 0
        assert "VP" in report.join_tree or "PT" in report.join_tree
        assert report.engine_report is not None
        assert prost_mixed.last_query_report() is report

    def test_explain_contains_tree_and_plan(self, prost_mixed):
        text = prost_mixed.explain(
            "SELECT ?x WHERE { ?x <http://ex/name> ?n . ?x <http://ex/age> ?a }"
        )
        assert "Join Tree" in text and "Engine Plan" in text

    def test_load_report_summary(self, social_graph):
        engine = ProstEngine()
        report = engine.load(social_graph)
        assert report.triples_loaded == len(social_graph)


class TestErrorHandling:
    def test_query_before_load_rejected(self):
        with pytest.raises(LoaderError):
            ProstEngine().sparql("SELECT ?s WHERE { ?s <http://ex/p> ?o }")

    def test_unknown_predicate_returns_empty(self, prost_mixed):
        rows = prost_mixed.sparql("SELECT ?s WHERE { ?s <http://ex/nope> ?o }").rows
        assert rows == []

    def test_unknown_predicate_in_star_returns_empty(self, prost_mixed):
        rows = prost_mixed.sparql(
            "SELECT ?s WHERE { ?s <http://ex/nope> ?o . ?s <http://ex/name> ?n }"
        ).rows
        assert rows == []


class TestObjectPropertyTable:
    def test_object_pt_strategy_matches_reference(self, social_graph, social_reference):
        engine = ProstEngine(use_object_property_table=True)
        engine.load(social_graph)
        for query in SOCIAL_QUERIES:
            parsed = parse_sparql(query)
            assert engine.sparql(parsed).rows == social_reference.evaluate(parsed)

    def test_object_group_uses_object_pt(self, social_graph):
        engine = ProstEngine(use_object_property_table=True)
        engine.load(social_graph)
        tree = engine.translate(
            "SELECT ?y WHERE { ?a <http://ex/knows> ?y . ?b <http://ex/city> ?y }"
        )
        assert "ObjectPT" in tree.describe()


class TestExtendedStatistics:
    def test_extended_stats_strategy_matches_reference(self, social_graph, social_reference):
        engine = ProstEngine(statistics_level="extended")
        engine.load(social_graph)
        for query in SOCIAL_QUERIES:
            parsed = parse_sparql(query)
            assert engine.sparql(parsed).rows == social_reference.evaluate(parsed)
