"""PRoST OPTIONAL / UNION execution vs the reference evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProstEngine
from repro.errors import UnsupportedSparqlError
from repro.rdf import Graph, IRI, Triple
from repro.rdf.reference import ReferenceEvaluator
from repro.sparql import parse_sparql

OPTIONAL_QUERIES = [
    # unmatched optionals leave the variable unbound
    'SELECT ?x ?n ?a WHERE { ?x <http://ex/name> ?n . '
    'OPTIONAL { ?x <http://ex/age> ?a } }',
    # two independent optionals apply sequentially
    'SELECT ?x ?a ?c WHERE { ?x <http://ex/name> ?n . '
    'OPTIONAL { ?x <http://ex/age> ?a } OPTIONAL { ?x <http://ex/city> ?c } }',
    # multi-pattern optional (a chain hanging off the required part)
    'SELECT ?x ?co WHERE { ?x <http://ex/name> ?n . '
    'OPTIONAL { ?x <http://ex/city> ?ci . ?ci <http://ex/country> ?co } }',
    # filter over an optional variable (unbound fails the comparison)
    'SELECT ?x ?a WHERE { ?x <http://ex/name> ?n . '
    'OPTIONAL { ?x <http://ex/age> ?a } FILTER(?a > 26) }',
    # optional over a multi-valued predicate multiplies matches
    'SELECT ?x ?t WHERE { ?x <http://ex/name> ?n . '
    'OPTIONAL { ?x <http://ex/tag> ?t } }',
]

UNION_QUERIES = [
    'SELECT ?x WHERE { { ?x <http://ex/age> ?a } UNION { ?x <http://ex/city> ?c } }',
    # disjoint variable sets: each branch pads the other's columns with NULL
    'SELECT ?a ?c WHERE { { ?x <http://ex/age> ?a } UNION { ?y <http://ex/city> ?c } }',
    'SELECT DISTINCT ?x WHERE { { ?x <http://ex/age> ?a } UNION '
    '{ ?x <http://ex/tag> "x" } }',
    # three branches with shared variables and a star branch
    'SELECT ?x ?v WHERE { { ?x <http://ex/knows> ?v } UNION '
    '{ ?x <http://ex/city> ?v } UNION { ?x <http://ex/tag> ?v } }',
    'SELECT ?x WHERE { { ?x <http://ex/name> ?n . ?x <http://ex/age> ?a } UNION '
    '{ ?x <http://ex/country> ?c } }',
]


class TestOptional:
    @pytest.mark.parametrize("query", OPTIONAL_QUERIES)
    def test_matches_reference(self, prost_mixed, social_reference, query):
        parsed = parse_sparql(query)
        assert prost_mixed.sparql(parsed).rows == social_reference.evaluate(parsed)

    @pytest.mark.parametrize("query", OPTIONAL_QUERIES)
    def test_vp_strategy_matches_reference(self, prost_vp, social_reference, query):
        parsed = parse_sparql(query)
        assert prost_vp.sparql(parsed).rows == social_reference.evaluate(parsed)

    def test_unbound_cells_are_none(self, prost_mixed):
        rows = prost_mixed.sparql(
            'SELECT ?n ?a WHERE { ?x <http://ex/name> ?n . '
            'OPTIONAL { ?x <http://ex/age> ?a } }'
        ).rows
        dave_row = [r for r in rows if r[0].lexical == "Dave"][0]
        assert dave_row[1] is None

    def test_disconnected_optional_rejected(self, prost_mixed):
        with pytest.raises(UnsupportedSparqlError):
            prost_mixed.sparql(
                'SELECT ?x ?c WHERE { ?x <http://ex/name> ?n . '
                'OPTIONAL { ?y <http://ex/country> ?c } }'
            )

    def test_explain_mentions_optional(self, prost_mixed):
        text = prost_mixed.explain(OPTIONAL_QUERIES[0])
        assert "OPTIONAL" in text


class TestUnion:
    @pytest.mark.parametrize("query", UNION_QUERIES)
    def test_matches_reference(self, prost_mixed, social_reference, query):
        parsed = parse_sparql(query)
        assert prost_mixed.sparql(parsed).rows == social_reference.evaluate(parsed)

    def test_union_is_a_bag(self, prost_mixed, social_reference):
        """Duplicate solutions from different branches are kept."""
        query = parse_sparql(
            'SELECT ?x WHERE { { ?x <http://ex/age> ?a } UNION '
            '{ ?x <http://ex/age> ?b } }'
        )
        rows = prost_mixed.sparql(query).rows
        assert rows == social_reference.evaluate(query)
        assert len(rows) == 6  # three subjects, twice

    def test_explain_mentions_union(self, prost_mixed):
        text = prost_mixed.explain(UNION_QUERIES[0])
        assert "UNION" in text

    def test_translate_rejects_union(self, prost_mixed):
        from repro.errors import TranslationError

        with pytest.raises(TranslationError):
            prost_mixed.translate(UNION_QUERIES[0])


# -- property-based -------------------------------------------------------------

_SUBJECTS = [IRI(f"http://r/s{i}") for i in range(6)]
_PREDICATES = [IRI(f"http://r/p{i}") for i in range(3)]
_triples = st.builds(
    Triple,
    st.sampled_from(_SUBJECTS),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_SUBJECTS),
)


@given(
    st.lists(_triples, min_size=1, max_size=25),
    st.sampled_from([p.n3() for p in _PREDICATES]),
    st.sampled_from([p.n3() for p in _PREDICATES]),
)
@settings(max_examples=25, deadline=None)
def test_property_optional_matches_reference(triples, required, optional):
    graph = Graph(triples)
    query = parse_sparql(
        f"SELECT ?a ?b ?c WHERE {{ ?a {required} ?b . OPTIONAL {{ ?b {optional} ?c }} }}"
    )
    engine = ProstEngine()
    engine.load(graph)
    assert engine.sparql(query).rows == ReferenceEvaluator(graph).evaluate(query)


@given(
    st.lists(_triples, min_size=1, max_size=25),
    st.sampled_from([p.n3() for p in _PREDICATES]),
    st.sampled_from([p.n3() for p in _PREDICATES]),
)
@settings(max_examples=25, deadline=None)
def test_property_union_matches_reference(triples, left, right):
    graph = Graph(triples)
    query = parse_sparql(
        f"SELECT ?a ?b WHERE {{ {{ ?a {left} ?b }} UNION {{ ?a {right} ?b }} }}"
    )
    engine = ProstEngine()
    engine.load(graph)
    assert engine.sparql(query).rows == ReferenceEvaluator(graph).evaluate(query)
