"""Mutation tests of the guarded-by/lockset checker: every CC code fires
at the exact node path when its invariant is broken, and the shipped tree
is CC-clean.

Follows the verifier-mutation pattern (``test_verifier_mutations.py``):
one deliberately broken fixture module per diagnostic, assertions on the
exact (code, symbol, line) triple — line numbers located by source text so
the fixtures stay editable — plus clean counter-fixtures proving the
checker's exemptions (``# unguarded-ok``, condition predicates, consistent
lock order) do not over-fire.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.concurrency import (
    check_concurrency,
    check_concurrency_sources,
    check_module,
)
from repro.analysis.lint import load_source_files, run_lints


def _write_package(root, modules: dict[str, str]):
    """Materialize a ``repro``-shaped package from relative-path → source."""
    package = root / "repro"
    (package / "__init__.py").parent.mkdir(parents=True, exist_ok=True)
    (package / "__init__.py").write_text("")
    for relative, source in modules.items():
        path = package / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        init = path.parent / "__init__.py"
        if not init.exists():
            init.write_text("")
        path.write_text(textwrap.dedent(source))
    return package


def _line_of(source: str, needle: str) -> int:
    """1-indexed line of the first line containing ``needle``."""
    for index, line in enumerate(textwrap.dedent(source).splitlines(), start=1):
        if needle in line:
            return index
    raise AssertionError(f"marker {needle!r} not in fixture")


def _findings_for(tmp_path, relative: str, source: str):
    package = _write_package(tmp_path, {relative: source})
    sources = load_source_files(package)
    (target,) = [s for s in sources if s.relative_name == relative]
    return check_module(target)


CC101_LEXICAL = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: _lock

        def bump(self):
            self.count += 1  # outside the lock
"""

CC101_INFERENCE = """
    import threading

    class Tally:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def add(self, n):
            self.total += n  # first mutation

        def reset(self):
            self.total = 0
"""

CC101_REQUIRES = """
    import threading

    class Helper:
        def __init__(self):
            self._lock = threading.Lock()
            self.value = 0  # guarded-by: _lock

        def _bump_locked(self):  # requires-lock: _lock
            self.value += 1

        def bump(self):
            self._bump_locked()  # caller holds nothing
"""

CC102_MISSING_LOCK = """
    class Registry:
        def __init__(self):
            self.items = {}  # guarded-by: _mutex
"""

CC103_ORDER_INVERSION = """
    import threading

    class TwoLocks:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def forward(self):
            with self._a:
                with self._b:
                    pass

        def backward(self):
            with self._b:
                with self._a:  # opposite nesting order
                    pass
"""

CC104_ESCAPE = """
    import threading

    class Exposing:
        def __init__(self):
            self._lock = threading.Lock()
            self.entries = {}  # guarded-by: _lock

        def all_entries(self):
            with self._lock:
                return self.entries  # reference escapes the lock
"""

CC105_BLOCKING = """
    import threading

    class Stats:
        def __init__(self):
            self._lock = threading.Lock()
            self.rows = {}  # guarded-by: _lock

        def refresh(self, engine, query):
            with self._lock:
                self.rows[query] = engine.sparql(query)  # blocks under lock
"""


class TestEachCodeFires:
    def test_cc101_lexical_access_outside_lock(self, tmp_path):
        (finding,) = _findings_for(tmp_path, "serve/bad.py", CC101_LEXICAL)
        assert finding.code == "CC101"
        assert finding.symbol == "Counter.bump"
        assert finding.line == _line_of(CC101_LEXICAL, "outside the lock")
        assert "'count'" in finding.message and "_lock" in finding.message

    def test_cc101_inference_multi_entry_mutation(self, tmp_path):
        (finding,) = _findings_for(tmp_path, "serve/bad.py", CC101_INFERENCE)
        assert finding.code == "CC101"
        assert finding.symbol == "Tally.total"
        assert finding.line == _line_of(CC101_INFERENCE, "first mutation")
        assert "2 public entry points (add, reset)" in finding.message
        assert "guarded-by" in finding.message

    def test_cc101_requires_lock_call_site(self, tmp_path):
        (finding,) = _findings_for(tmp_path, "serve/bad.py", CC101_REQUIRES)
        assert finding.code == "CC101"
        assert finding.symbol == "Helper.bump"
        assert finding.line == _line_of(CC101_REQUIRES, "caller holds nothing")
        assert "_bump_locked" in finding.message
        assert "requires-lock" in finding.message

    def test_cc102_guard_without_lock_attribute(self, tmp_path):
        (finding,) = _findings_for(tmp_path, "serve/bad.py", CC102_MISSING_LOCK)
        assert finding.code == "CC102"
        assert finding.symbol == "Registry.items"
        assert finding.line == _line_of(CC102_MISSING_LOCK, "guarded-by: _mutex")
        assert "_mutex" in finding.message

    def test_cc103_lock_order_inversion(self, tmp_path):
        (finding,) = _findings_for(tmp_path, "serve/bad.py", CC103_ORDER_INVERSION)
        assert finding.code == "CC103"
        assert finding.symbol == "TwoLocks.backward"
        assert finding.line == _line_of(
            CC103_ORDER_INVERSION, "opposite nesting order"
        )
        assert "TwoLocks.forward" in finding.message
        assert "deadlock" in finding.message

    def test_cc104_guarded_container_escapes(self, tmp_path):
        (finding,) = _findings_for(tmp_path, "serve/bad.py", CC104_ESCAPE)
        assert finding.code == "CC104"
        assert finding.symbol == "Exposing.all_entries"
        assert finding.line == _line_of(CC104_ESCAPE, "escapes the lock")
        assert "copy" in finding.message

    def test_cc105_blocking_call_under_lock(self, tmp_path):
        (finding,) = _findings_for(tmp_path, "serve/bad.py", CC105_BLOCKING)
        assert finding.code == "CC105"
        assert finding.symbol == "Stats.refresh"
        assert finding.line == _line_of(CC105_BLOCKING, "blocks under lock")
        assert "'sparql'" in finding.message and "_lock" in finding.message

    def test_format_is_path_line_code_symbol(self, tmp_path):
        (finding,) = _findings_for(tmp_path, "serve/bad.py", CC101_LEXICAL)
        rendered = finding.format()
        assert rendered.startswith(f"serve/bad.py:{finding.line}: CC101 ")
        assert "[Counter.bump]" in rendered


class TestExemptionsStayQuiet:
    def test_well_locked_class_is_clean(self, tmp_path):
        source = """
            import threading

            class Good:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self.count += 1

                def snapshot(self):
                    with self._lock:
                        return self.count
        """
        assert _findings_for(tmp_path, "serve/good.py", source) == []

    def test_unguarded_ok_suppresses_inference(self, tmp_path):
        source = """
            import threading

            class Diagnostic:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.last_report = None  # unguarded-ok: last-writer-wins

                def record(self, report):
                    self.last_report = report

                def clear(self):
                    self.last_report = None
        """
        assert _findings_for(tmp_path, "serve/good.py", source) == []

    def test_condition_wait_predicate_keeps_the_lockset(self, tmp_path):
        """The Governor.admit pattern: a lambda passed to wait_for runs
        with the condition re-acquired, so guarded reads inside it are not
        CC101 — and waiting on the lock you hold is not CC105."""
        source = """
            import threading

            class Gate:
                def __init__(self):
                    self._condition = threading.Condition()
                    self.open_slots = 1  # guarded-by: _condition

                def take(self):
                    with self._condition:
                        self._condition.wait_for(lambda: self.open_slots > 0)
                        self.open_slots -= 1
        """
        assert _findings_for(tmp_path, "serve/good.py", source) == []

    def test_consistent_nesting_order_is_not_cc103(self, tmp_path):
        source = """
            import threading

            class Nested:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def first(self):
                    with self._a:
                        with self._b:
                            pass

                def second(self):
                    with self._a:
                        with self._b:
                            pass
        """
        assert _findings_for(tmp_path, "serve/good.py", source) == []

    def test_copy_return_is_not_cc104(self, tmp_path):
        source = """
            import threading

            class Copying:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.entries = {}  # guarded-by: _lock

                def all_entries(self):
                    with self._lock:
                        return dict(self.entries)
        """
        assert _findings_for(tmp_path, "serve/good.py", source) == []

    def test_unannotated_lockless_class_is_skipped(self, tmp_path):
        """A class with no lock and no guards is outside the analysis —
        inference only activates once the class opts into locking."""
        source = """
            class Plain:
                def __init__(self):
                    self.total = 0

                def add(self, n):
                    self.total += n

                def reset(self):
                    self.total = 0
        """
        assert _findings_for(tmp_path, "serve/good.py", source) == []


class TestScopeAndIntegration:
    def test_out_of_scope_modules_are_not_scanned(self, tmp_path):
        """The runner-facing pass only scans the serving data plane
        (serve/, governor/, core/prost.py)."""
        package = _write_package(tmp_path, {"engine/elsewhere.py": CC101_LEXICAL})
        assert check_concurrency(load_source_files(package)) == []

    def test_in_scope_paths_are_scanned(self, tmp_path):
        package = _write_package(
            tmp_path,
            {
                "serve/bad_serve.py": CC101_LEXICAL,
                "governor/bad_governor.py": CC102_MISSING_LOCK,
                "core/prost.py": CC105_BLOCKING,
            },
        )
        findings = check_concurrency_sources(load_source_files(package))
        assert sorted(f.code for f in findings) == ["CC101", "CC102", "CC105"]

    def test_lint_runner_carries_the_code(self, tmp_path):
        package = _write_package(
            tmp_path,
            {
                "serve/bad.py": CC101_LEXICAL,
                # The errors pass requires a top-level errors module.
                "errors.py": "class ReproError(Exception):\n    pass\n",
            },
        )
        violations = [v for v in run_lints(package) if v.rule == "concurrency"]
        (violation,) = violations
        assert violation.code == "CC101"
        assert "[Counter.bump]" in violation.message
        assert "CC101" in violation.format()

    def test_shipped_tree_is_cc_clean(self):
        findings = check_concurrency_sources(load_source_files())
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_shipped_tree_declares_real_guards(self):
        """The annotations this PR added are actually in force: the model
        sees guarded fields on the server, the caches, the governor, and
        the engine."""
        import ast

        from repro.analysis.concurrency import build_class_model

        sources = {s.relative_name: s for s in load_source_files()}
        expectations = {
            "serve/server.py": ("QueryServer", "_lock", "_parse_cache"),
            "serve/cache.py": ("LruCache", "_lock", "_entries"),
            "governor/admission.py": ("Governor", "_condition", "admitted"),
            "core/prost.py": ("ProstEngine", "_cache_lock", "_plan_cache"),
        }
        for relative, (class_name, lock, guarded_field) in expectations.items():
            source = sources[relative]
            (node,) = [
                n
                for n in source.tree.body
                if isinstance(n, ast.ClassDef) and n.name == class_name
            ]
            model = build_class_model(node, source.source.splitlines())
            assert lock in model.lock_attrs, (relative, class_name)
            assert guarded_field in model.guards, (relative, guarded_field)
            assert model.guards[guarded_field].lock == lock
