"""The pre-execution gate: a corrupted plan is rejected before it runs,
and ``REPRO_PLAN_CHECK=0`` opts out."""

from __future__ import annotations

import pytest

from repro.analysis import plan_check_enabled, set_plan_check_enabled
from repro.core.prost import ProstEngine
from repro.errors import PlanVerificationError, ReproError

QUERY = (
    "SELECT ?x ?n WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/name> ?n }"
)


@pytest.fixture()
def tampering_engine(social_graph):
    """An engine whose translator stamps one stale priority per tree."""
    engine = ProstEngine(num_workers=3, strategy="mixed")
    engine.load(social_graph)
    translator = engine._translator
    original = translator.translate_bgp

    def tampered(patterns):
        tree = original(patterns)
        tree.nodes[-1].priority += 7777.0
        return tree

    translator.translate_bgp = tampered
    return engine


def test_gate_rejects_tampered_plan(tampering_engine):
    with pytest.raises(PlanVerificationError) as excinfo:
        tampering_engine.sparql(QUERY)
    error = excinfo.value
    assert any(d.code == "PV105" for d in error.diagnostics)
    assert "PV105" in str(error)
    assert "!!" in str(error)  # EXPLAIN-style rendering, findings marked


def test_gate_error_is_a_repro_error(tampering_engine):
    with pytest.raises(ReproError):
        tampering_engine.sparql(QUERY)


def test_gate_can_be_disabled(tampering_engine):
    previous = set_plan_check_enabled(False)
    try:
        result = tampering_engine.sparql(QUERY)  # runs despite the tamper
        assert len(result) > 0
    finally:
        set_plan_check_enabled(previous)


def test_setter_returns_previous_value():
    first = plan_check_enabled()
    try:
        assert set_plan_check_enabled(False) == first
        assert plan_check_enabled() is False
        assert set_plan_check_enabled(True) is False
    finally:
        set_plan_check_enabled(first)


def test_env_var_parsing(monkeypatch):
    """``REPRO_PLAN_CHECK`` accepts the usual falsy spellings at import."""
    import importlib

    import repro.analysis as analysis

    monkeypatch.setenv("REPRO_PLAN_CHECK", "0")
    importlib.reload(analysis)
    assert analysis.plan_check_enabled() is False
    monkeypatch.setenv("REPRO_PLAN_CHECK", "yes")
    importlib.reload(analysis)
    assert analysis.plan_check_enabled() is True
    monkeypatch.delenv("REPRO_PLAN_CHECK")
    importlib.reload(analysis)
    assert analysis.plan_check_enabled() is True


def test_clean_queries_pass_the_gate(prost_mixed):
    assert plan_check_enabled()
    result = prost_mixed.sparql(QUERY)
    assert len(result) > 0
