"""The architectural lints: the shipped tree is clean, and a deliberately
broken fixture package trips every pass."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.lint import load_source_files, run_lints
from repro.analysis.lint.determinism import check_determinism
from repro.analysis.lint.errors import check_errors
from repro.analysis.lint.layering import check_layering
from repro.analysis.lint.metrics import check_metrics
from repro.analysis.lint.runner import render_report


def test_shipped_tree_is_clean():
    violations = run_lints()
    assert violations == [], render_report(violations)


@pytest.fixture()
def broken_package(tmp_path):
    """A small ``repro``-shaped package violating every contract once."""
    root = tmp_path / "repro"

    def module(relative, source):
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.relative_to(root).parents:
            init = root / parent / "__init__.py"
            if not init.exists():
                init.write_text("")
        path.write_text(textwrap.dedent(source))

    module("__init__.py", "")
    module(
        "errors.py",
        """
        class ReproError(Exception):
            pass

        class PlanError(ReproError):
            pass
        """,
    )
    module(
        "engine/bad_layering.py",
        """
        from repro.sparql import parser        # generic layer -> sparql
        from repro.obs.tracer import Tracer    # module-level obs import
        """,
    )
    module(
        "engine/bad_determinism.py",
        """
        import random
        import time

        def stamp(rows):
            started = time.time()              # wall clock in the data plane
            shuffled = random.shuffle(rows)    # ambient global randomness
            for row in set(rows):              # unordered iteration
                pass
            return started, shuffled
        """,
    )
    module(
        "core/bad_metrics.py",
        """
        KNOWN = "engine.shuffle_bytes"         # inline literal, not constant
        UNKNOWN = "engine.bogus_counter"       # not in the registry at all
        """,
    )
    module(
        "core/bad_errors.py",
        """
        def fail():
            raise ValueError("not from the hierarchy")
        """,
    )
    return root


def rules(violations):
    return sorted({v.rule for v in violations})


def test_fixture_layering(broken_package):
    violations = check_layering(load_source_files(broken_package))
    assert rules(violations) == ["layering"]
    lines = {v.path for v in violations}
    assert lines == {"engine/bad_layering.py"}
    messages = " ".join(v.message for v in violations)
    assert "repro.sparql" in messages and "repro.obs" in messages


def test_fixture_determinism(broken_package):
    violations = check_determinism(load_source_files(broken_package))
    assert rules(violations) == ["determinism"]
    messages = " ".join(v.message for v in violations)
    assert "wall-clock" in messages
    assert "random.Random" in messages
    assert "bare set" in messages


def test_fixture_metrics(broken_package):
    violations = check_metrics(load_source_files(broken_package))
    assert rules(violations) == ["metrics"]
    by_message = sorted(v.message for v in violations)
    assert any("inline counter literal" in m for m in by_message)
    assert any("not in the metrics registry" in m for m in by_message)


def test_fixture_errors(broken_package):
    violations = check_errors(load_source_files(broken_package))
    assert rules(violations) == ["errors"]
    (violation,) = violations
    assert violation.path == "core/bad_errors.py"
    assert "ValueError" in violation.message


def test_run_lints_on_fixture_counts_everything(broken_package):
    violations = run_lints(broken_package)
    assert rules(violations) == ["determinism", "errors", "layering", "metrics"]
    # Sorted by file and line for stable reports.
    assert violations == sorted(
        violations, key=lambda v: (v.path, v.line, v.rule)
    )


def test_allowed_patterns_stay_clean(tmp_path):
    """perf_counter, seeded Random in faults.py, lazy obs, hierarchy raises."""
    root = tmp_path / "repro"
    (root / "engine").mkdir(parents=True)
    (root / "__init__.py").write_text("")
    (root / "errors.py").write_text("class ReproError(Exception):\n    pass\n")
    (root / "engine" / "__init__.py").write_text("")
    (root / "engine" / "good.py").write_text(
        textwrap.dedent(
            """
            import time

            def run(tracer=None):
                started = time.perf_counter()
                if tracer is not None:
                    from repro.obs.tracer import Tracer  # lazy: allowed
                try:
                    pass
                except Exception as error:
                    raise error
                return started
            """
        )
    )
    (root / "engine" / "faults.py").write_text(
        textwrap.dedent(
            """
            import random

            def plan(seed):
                rng = random.Random(seed)
                return rng.random()
            """
        )
    )
    assert run_lints(root) == []
