"""Mutation tests: every seeded plan corruption is rejected with the right
diagnostic, pointing at the offending tree node.

Each test takes a plan the verifier accepts, applies one targeted mutation
(the kind of bug a planner regression would introduce), and asserts the
specific diagnostic code *and* node path."""

from __future__ import annotations

import pytest

from repro.analysis import verify_join_tree, verify_logical_plan, verify_query
from repro.core.join_tree import JoinTree, PtNode, VpNode
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.engine.logical import InMemoryRelation, Join, TableScan
from repro.engine.session import EngineSession
from repro.columnar.schema import ColumnSchema, TableSchema
from repro.sparql.parser import parse_sparql

CHAIN = (
    "SELECT ?x WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/knows> ?z . "
    "?z <http://ex/knows> ?w }"
)
STAR = "SELECT ?x WHERE { ?x <http://ex/name> ?n . ?x <http://ex/age> ?a }"


def chain_patterns():
    return parse_sparql(CHAIN).patterns


def codes(diagnostics):
    return [d.code for d in diagnostics]


# -- join-tree mutations ------------------------------------------------------


def test_clean_translated_tree_verifies(prost_mixed):
    tree = prost_mixed.translate(STAR)
    assert verify_join_tree(tree, translator=prost_mixed._translator) == []


def test_misattached_node_is_cartesian_pv102():
    """Swapping a node's attachment point to a variable-disjoint parent."""
    p_xy, p_yz, p_zw = chain_patterns()
    root = VpNode(patterns=(p_yz,), priority=-10.0)
    middle = VpNode(patterns=(p_xy,), priority=-5.0)
    leaf = VpNode(patterns=(p_zw,), priority=-1.0)
    # Correct shape: both neighbors hang off the shared-variable root.
    root.children = [middle, leaf]
    assert verify_join_tree(JoinTree(root=root)) == []
    # Mutation: move {z,w} below {x,y}, which shares no variable with it.
    root.children = [middle]
    middle.children = [leaf]
    diagnostics = verify_join_tree(JoinTree(root=root))
    assert codes(diagnostics) == ["PV102"]
    assert diagnostics[0].node_path == "root.children[0].children[0]"


def test_dropped_partitioning_pv108(prost_mixed):
    tree = prost_mixed.translate(CHAIN)
    assert verify_join_tree(tree) == []
    victim = tree.root.children[0]
    assert victim.natural_partitioning()  # the node is keyed by construction
    victim.declared_partitioning = ()  # mutation: declare it unpartitioned
    diagnostics = verify_join_tree(tree)
    assert codes(diagnostics) == ["PV108"]
    assert diagnostics[0].node_path == "root.children[0]"


def test_split_pt_group_pv103(prost_mixed):
    tree = prost_mixed.translate(STAR)
    (pt_node,) = tree.nodes
    assert isinstance(pt_node, PtNode)
    other = parse_sparql(CHAIN).patterns[0]  # subject ?x — same; use ?y one
    foreign = parse_sparql(CHAIN).patterns[1]  # subject ?y
    pt_node.patterns = (pt_node.patterns[0], foreign)
    pt_node.declared_partitioning = None  # isolate the grouping violation
    diagnostics = verify_join_tree(tree)
    assert "PV103" in codes(diagnostics)
    assert all(d.node_path == "root" for d in diagnostics)
    del other


def test_undersized_pt_group_pv110(prost_mixed):
    tree = prost_mixed.translate(STAR)
    (pt_node,) = tree.nodes
    pt_node.patterns = pt_node.patterns[:1]  # mutation: 1-pattern PT group
    diagnostics = verify_join_tree(tree)
    assert codes(diagnostics) == ["PV110"]
    assert "below the minimum group size" in diagnostics[0].message


def test_multi_pattern_vp_node_pv110():
    p_xy, p_yz, _ = chain_patterns()
    root = VpNode(patterns=(p_xy, p_yz))
    diagnostics = verify_join_tree(JoinTree(root=root))
    assert codes(diagnostics) == ["PV110"]
    assert "exactly one pattern" in diagnostics[0].message


def test_unbound_predicate_in_pt_node_pv104():
    parsed = parse_sparql("SELECT ?x WHERE { ?x ?p ?n . ?x <http://ex/age> ?a }")
    node = PtNode(patterns=parsed.patterns)
    diagnostics = verify_join_tree(JoinTree(root=node))
    assert "PV104" in codes(diagnostics)


def test_tampered_priority_pv105(prost_mixed):
    tree = prost_mixed.translate(CHAIN)
    translator = prost_mixed._translator
    assert verify_join_tree(tree, translator=translator) == []
    leaf = tree.nodes[-1]
    leaf.priority += 12345.0  # mutation: stale/tampered priority
    diagnostics = verify_join_tree(tree, translator=translator)
    assert codes(diagnostics) == ["PV105"]
    assert diagnostics[0].node_path != "root"


def test_non_minimal_root_pv106():
    p_xy, p_yz, _ = chain_patterns()
    child = VpNode(patterns=(p_yz,), priority=-50.0)
    root = VpNode(patterns=(p_xy,), priority=-1.0, children=[child])
    diagnostics = verify_join_tree(JoinTree(root=root))
    assert codes(diagnostics) == ["PV106"]
    assert diagnostics[0].node_path == "root.children[0]"


def test_pattern_coverage_pv109(prost_mixed):
    tree = prost_mixed.translate(CHAIN)
    full = chain_patterns()
    assert verify_join_tree(tree, patterns=full) == []
    diagnostics = verify_join_tree(tree, patterns=full[:2])
    assert codes(diagnostics) == ["PV109"]
    assert "extraneous" in diagnostics[0].message


def test_unbound_projection_variable_pv101(prost_mixed):
    import dataclasses

    from repro.sparql.algebra import Variable

    # The parser rejects this at the syntax level; the verifier must also
    # catch it for trees assembled programmatically.
    parsed = parse_sparql("SELECT ?x WHERE { ?x <http://ex/knows> ?y }")
    tampered = dataclasses.replace(parsed, variables=(Variable("ghost"),))
    tree = prost_mixed._translator.translate_bgp(tampered.patterns)
    diagnostics = verify_query(tampered, [tree])
    assert codes(diagnostics) == ["PV101"]
    assert "?ghost" in diagnostics[0].message


# -- logical-plan mutations ---------------------------------------------------


@pytest.fixture()
def session():
    return EngineSession(SimulatedCluster(ClusterConfig(num_workers=2)))


def _register(session, name, rows, partition_columns=None, value_column="o"):
    schema = TableSchema(
        [ColumnSchema("s", "string"), ColumnSchema(value_column, "string")]
    )
    session.register_rows(name, schema, rows, partition_columns=partition_columns)
    return schema


def test_scan_partitioning_lie_pv203(session):
    schema = _register(session, "vp_t", [("a", "1"), ("b", "2")])
    scan = TableScan("vp_t", schema, partition_columns=("s",))  # catalog: None
    diagnostics = verify_logical_plan(scan, catalog=session.catalog)
    assert codes(diagnostics) == ["PV203"]
    assert diagnostics[0].node_path == "plan"


def test_declared_colocated_join_not_copartitioned_pv202(session):
    left_schema = _register(session, "left_t", [("a", "1")])
    right_schema = _register(session, "right_t", [("a", "2")], value_column="o2")
    # Both scans *claim* subject partitioning; the catalog has neither.
    left = TableScan("left_t", left_schema, partition_columns=("s",))
    right = TableScan("right_t", right_schema, partition_columns=("s",))
    plan = Join(left=left, right=right, on=("s",))
    diagnostics = verify_logical_plan(plan, catalog=session.catalog)
    assert "PV202" in codes(diagnostics)
    assert any(d.code == "PV202" and d.node_path == "plan" for d in diagnostics)


def test_shuffle_hint_discards_copartitioning_pv205(session):
    left_schema = _register(session, "lp", [("a", "1")], partition_columns=("s",))
    right_schema = _register(
        session, "rp", [("a", "2")], partition_columns=("s",), value_column="o2"
    )
    left = TableScan("lp", left_schema, partition_columns=("s",))
    right = TableScan("rp", right_schema, partition_columns=("s",))
    plan = Join(left=left, right=right, on=("s",), hint="shuffle")
    diagnostics = verify_logical_plan(plan, catalog=session.catalog)
    assert codes(diagnostics) == ["PV205"]
    assert diagnostics[0].node_path == "plan"


def test_inflated_broadcast_side_pv204(session):
    rows = [(f"s{i}", f"o{i}") for i in range(500)]
    left_schema = _register(session, "big", rows)
    right_schema = _register(session, "big2", rows, value_column="o2")
    left = TableScan("big", left_schema)
    right = TableScan("big2", right_schema)
    config = ClusterConfig(num_workers=2, broadcast_threshold_bytes=64)
    plan = Join(left=left, right=right, on=("s",), hint="broadcast")
    diagnostics = verify_logical_plan(
        plan, catalog=session.catalog, config=config
    )
    assert codes(diagnostics) == ["PV204"]
    assert "threshold" in diagnostics[0].message
    # Under the default 10 MB threshold the same plan is fine.
    assert verify_logical_plan(
        plan, catalog=session.catalog, config=ClusterConfig(num_workers=2)
    ) == []


def test_join_key_type_mismatch_pv201():
    left = InMemoryRelation(
        TableSchema([ColumnSchema("k", "string"), ColumnSchema("a", "string")]),
        (("x", "1"),),
    )
    right = InMemoryRelation(
        TableSchema([ColumnSchema("k", "int"), ColumnSchema("b", "string")]),
        ((1, "2"),),
    )
    plan = Join(left=left, right=right, on=("k",))
    diagnostics = verify_logical_plan(plan)
    assert codes(diagnostics) == ["PV201"]
    assert diagnostics[0].node_path == "plan"
    assert "'string'" in diagnostics[0].message and "'int'" in diagnostics[0].message
