"""Type-check the strictly-typed packages with the pinned pyproject config.

Skipped when mypy is not installed (the base image ships without it); the
CI "types" job installs the pinned version and runs this for real."""

from __future__ import annotations

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api")

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_strict_packages_type_check():
    stdout, stderr, status = mypy_api.run(
        [
            "--config-file",
            str(REPO_ROOT / "pyproject.toml"),
            "-p",
            "repro.analysis",
            "-p",
            "repro.obs",
        ]
    )
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"
