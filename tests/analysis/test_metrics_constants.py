"""The counter-name constants and the registry cannot drift apart."""

from __future__ import annotations

from repro.analysis.lint.metrics import COUNTER_PATTERN
from repro.obs import metrics


def test_every_exported_constant_is_registered():
    constants = {
        name: value
        for name, value in vars(metrics).items()
        if name.isupper()
        and isinstance(value, str)
        and COUNTER_PATTERN.match(value)
    }
    assert constants  # the module exports counter-name constants
    for name, value in constants.items():
        assert value in metrics.REGISTRY, f"{name} = {value!r} is unregistered"


def test_every_registered_name_matches_the_lint_pattern():
    """The lint's regex recognizes the whole registry — a counter named
    outside the pattern would silently escape the metrics lint."""
    for spec in metrics.REGISTRY:
        assert COUNTER_PATTERN.match(spec.name), spec.name


def test_snapshot_keys_are_registered():
    class FakeMetrics:
        def __getattr__(self, name):
            return 0

    for key in metrics.snapshot_execution_metrics(FakeMetrics()):
        assert key in metrics.REGISTRY
    for key in metrics.snapshot_cost(FakeMetrics()):
        assert key in metrics.REGISTRY

    class FakeHdfs:
        failover_reads = 0

    for key in metrics.snapshot_hdfs(FakeHdfs()):
        assert key in metrics.REGISTRY
