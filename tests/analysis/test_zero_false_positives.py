"""Zero-false-positive sweeps: the verifier accepts every plan the shipped
planners produce — the WatDiv basic query set on all four logical-plan
systems, and the tier-1 differential fuzz corpus.

(The corpus also runs the verifier implicitly: ``REPRO_PLAN_CHECK`` defaults
on, so every engine query in the test suite is a regression check.)"""

from __future__ import annotations

import pytest

from repro.analysis import plan_check_enabled, verify_logical_plan
from repro.baselines import S2Rdf, SparqlGx, SparqlGxDirect
from repro.core.prost import ProstEngine
from repro.sparql.parser import parse_sparql
from repro.testing import DifferentialRunner
from repro.watdiv.generator import generate_watdiv
from repro.watdiv.queries import basic_query_set

WATDIV_SCALE = 60


@pytest.fixture(scope="module")
def watdiv():
    return generate_watdiv(scale=WATDIV_SCALE, seed=7)


@pytest.mark.parametrize("strategy", ["mixed", "vp"])
def test_watdiv_sweep_prost(watdiv, strategy):
    engine = ProstEngine(num_workers=4, strategy=strategy)
    engine.load(watdiv.graph)
    for query in basic_query_set(watdiv):
        diagnostics = engine.verify(query.text)
        assert diagnostics == [], (
            f"{query.name} ({strategy}): "
            + "; ".join(d.format() for d in diagnostics)
        )


@pytest.mark.parametrize("system", [S2Rdf, SparqlGx, SparqlGxDirect])
def test_watdiv_sweep_baselines(watdiv, system):
    engine = system(num_workers=4)
    engine.load(watdiv.graph)
    for query in basic_query_set(watdiv):
        frame = engine.dataframe(parse_sparql(query.text))
        if frame is None:  # S2RDF proves the result empty at plan time
            continue
        diagnostics = verify_logical_plan(
            frame.plan,
            catalog=engine.session.catalog,
            config=engine.session.config,
        )
        assert diagnostics == [], (
            f"{query.name} ({engine.name}): "
            + "; ".join(d.format() for d in diagnostics)
        )


def test_fuzz_corpus_clean():
    """All 200 tier-1 fuzz cases verify clean under the mixed strategy."""
    runner = DifferentialRunner(queries_per_graph=10)
    checked = 0
    for seed in range(20):
        graph, queries = runner.generate_case(seed)
        engine = ProstEngine(num_workers=3, strategy="mixed")
        engine.load(graph)
        for query in queries:
            diagnostics = engine.verify(query)
            assert diagnostics == [], (
                f"seed {seed}: {query}\n"
                + "; ".join(d.format() for d in diagnostics)
            )
            checked += 1
    assert checked == 200


def test_plan_check_is_on_by_default():
    """Every other test in the suite doubles as a verifier regression."""
    assert plan_check_enabled()
