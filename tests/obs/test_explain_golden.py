"""Golden-file snapshots of the EXPLAIN renderer plus ANALYZE invariants.

The golden files pin the exact ASCII output of ``ProstEngine.explain`` on
three WatDiv query shapes — PT-only (one star), VP-only (a linear path),
and mixed (star joined to a one-pattern hop) — so any change to the
renderer, the translator's node grouping, or the priority arithmetic shows
up as a readable diff. Regenerate intentionally with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/obs/test_explain_golden.py

The ANALYZE assertions avoid byte counts on purpose (cell widths depend on
the term-ID dictionary state) and pin structure instead: actual row
annotations, executed join strategies, and the alignment with the engine
trace.
"""

import os
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: name -> (query, substrings every ANALYZE render must contain)
QUERIES = {
    "pt_only": (
        """SELECT ?v ?a ?b WHERE {
  ?v wsdbm:likes ?a .
  ?v wsdbm:follows ?b .
}""",
        ["PT[2 patterns]", "act="],
    ),
    "vp_only": (
        """SELECT ?a ?b ?c WHERE {
  ?a wsdbm:follows ?b .
  ?b wsdbm:likes ?c .
}""",
        ["VP", "join on ['b']", "act="],
    ),
    "mixed": (
        """SELECT ?v ?name ?u WHERE {
  ?v sorg:caption ?name .
  ?v rev:hasReview ?r .
  ?r rev:reviewer ?u .
}""",
        ["VP", "PT[2 patterns]", "join on ['r']", "act="],
    ),
}


class TestGoldenSnapshots:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_explain_matches_golden(self, prost_watdiv, name):
        query, _ = QUERIES[name]
        rendered = prost_watdiv.explain(query) + "\n"
        path = GOLDEN_DIR / f"{name}.txt"
        if os.environ.get("REPRO_UPDATE_GOLDENS"):
            path.write_text(rendered, encoding="utf-8")
        expected = path.read_text(encoding="utf-8")
        assert rendered == expected, (
            f"EXPLAIN output for {name} drifted from {path}; if intentional, "
            "regenerate with REPRO_UPDATE_GOLDENS=1"
        )

    def test_goldens_cover_both_node_kinds(self):
        pt = (GOLDEN_DIR / "pt_only.txt").read_text()
        vp = (GOLDEN_DIR / "vp_only.txt").read_text()
        mixed = (GOLDEN_DIR / "mixed.txt").read_text()
        assert "PT[" in pt and "VP" not in pt.split("== Engine Plan ==")[0]
        assert "VP" in vp
        assert "PT[" in mixed and "VP" in mixed


class TestExplainAnalyze:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_analyze_annotates_actuals(self, prost_watdiv, name):
        query, expected_bits = QUERIES[name]
        rendered = prost_watdiv.explain(query, analyze=True)
        for bit in expected_bits:
            assert bit in rendered, f"{name}: missing {bit!r} in:\n{rendered}"
        # The analyze render resolves every estimated-only join strategy.
        assert "(est)" not in rendered

    def test_analyze_actual_rows_match_execution(self, prost_watdiv):
        query, _ = QUERIES["mixed"]
        rendered = prost_watdiv.explain(query, analyze=True)
        result = prost_watdiv.sparql(query)
        # The root of the join tree carries the pre-projection row count of
        # the final join, which for this plain BGP equals the result rows.
        join_out = [
            line for line in rendered.splitlines() if "out=" in line
        ]
        assert join_out, rendered
        out_rows = int(join_out[0].split("out=")[1].split()[0])
        assert out_rows == len(result.rows)

    def test_vp_strategy_renders_no_pt_nodes(self, prost_watdiv_vp):
        query, _ = QUERIES["pt_only"]
        rendered = prost_watdiv_vp.explain(query, analyze=True)
        tree = rendered.split("== Engine Plan ==")[0]
        assert "PT[" not in tree
        assert "VP" in tree
