"""The configuration contract: completeness and docs sync.

``repro.obs.configdoc`` is the single source of truth for the knob surface.
These tests pin it from three directions: every ``ClusterConfig`` field must
carry a curated description (and none may be stale), every ``REPRO_*``
literal in the source tree must appear in the env-var registry (no
undocumented variables), and ``docs/CONFIGURATION.md`` must be byte-identical
to ``configdoc.markdown()`` (no drift between code and docs).
"""

import dataclasses
import pathlib
import re
import subprocess
import sys

from repro.engine.cluster import ClusterConfig
from repro.obs import configdoc

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

REGENERATE = "`prost-repro config --markdown > docs/CONFIGURATION.md`"


class TestCompleteness:
    def test_every_cluster_config_field_has_a_row(self):
        rows = {row.name for row in configdoc.config_rows()}
        declared = {f.name for f in dataclasses.fields(ClusterConfig)}
        assert rows == declared

    def test_rows_carry_defaults_rules_and_descriptions(self):
        for row in configdoc.config_rows():
            assert row.default, f"{row.name} lacks a default rendering"
            assert row.rule, f"{row.name} lacks a validation rule"
            assert row.description.strip(), f"{row.name} lacks a description"

    def test_env_fallbacks_reference_registered_variables(self):
        registered = {variable.name for variable in configdoc.ENV_VARS}
        for row in configdoc.config_rows():
            if row.env:
                assert row.env in registered, (
                    f"{row.name} references unregistered env var {row.env}"
                )

    def test_every_env_var_in_source_is_registered(self):
        """Grep the source tree for REPRO_* literals: a new variable cannot
        ship without a row in the configuration reference."""
        pattern = re.compile(r"REPRO_[A-Z_]+")
        found: set[str] = set()
        for path in (REPO_ROOT / "src").rglob("*.py"):
            found.update(pattern.findall(path.read_text(encoding="utf-8")))
        registered = {variable.name for variable in configdoc.ENV_VARS}
        assert found <= registered, (
            f"undocumented env vars in src/: {sorted(found - registered)}"
        )

    def test_registered_runtime_vars_exist_in_source(self):
        """No phantom documentation: every runtime-scope variable in the
        registry is actually read somewhere under src/."""
        pattern = re.compile(r"REPRO_[A-Z_]+")
        found: set[str] = set()
        for path in (REPO_ROOT / "src").rglob("*.py"):
            found.update(pattern.findall(path.read_text(encoding="utf-8")))
        for variable in configdoc.ENV_VARS:
            if variable.scope == "runtime":
                assert variable.name in found, (
                    f"{variable.name} documented but never read in src/"
                )

    def test_env_vars_sorted_and_scoped(self):
        names = [variable.name for variable in configdoc.ENV_VARS]
        assert names == sorted(names), "keep ENV_VARS alphabetical"
        for variable in configdoc.ENV_VARS:
            assert variable.scope in ("runtime", "tests")
            assert variable.description.strip()


class TestDocsSync:
    def test_configuration_md_matches_generator_byte_for_byte(self):
        path = REPO_ROOT / "docs" / "CONFIGURATION.md"
        assert path.exists(), (
            f"docs/CONFIGURATION.md missing; regenerate with {REGENERATE}"
        )
        assert path.read_text(encoding="utf-8") == configdoc.markdown(), (
            f"docs/CONFIGURATION.md drifted from the code; regenerate with "
            f"{REGENERATE}"
        )

    def test_cli_markdown_output_is_byte_identical(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "config", "--markdown"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout == configdoc.markdown()
