"""The metrics contract: completeness, snapshots, and docs sync.

The registry is the single source of truth for counter names. These tests
pin the contract from three directions: every numeric runtime field must be
registered (no undocumented counters), every snapshot key must resolve in
the registry (no phantom documentation), and ``docs/METRICS.md`` must be
byte-identical to ``REGISTRY.markdown()`` (no drift between code and docs).
"""

import dataclasses
import pathlib
import subprocess
import sys

from repro.engine.cluster import ClusterConfig, CostBreakdown, ExecutionMetrics
from repro.obs import (
    REGISTRY,
    snapshot_cost,
    snapshot_execution_metrics,
    snapshot_hdfs,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestCompleteness:
    def test_every_numeric_execution_metrics_field_is_registered(self):
        metrics = ExecutionMetrics()
        for spec_field in dataclasses.fields(ExecutionMetrics):
            value = getattr(metrics, spec_field.name)
            if not isinstance(value, (int, float)):
                continue  # operator_log / fault_events / fault_injector
            assert (
                f"engine.{spec_field.name}" in REGISTRY
                or f"faults.{spec_field.name}" in REGISTRY
                or f"governor.{spec_field.name}" in REGISTRY
            ), f"ExecutionMetrics.{spec_field.name} has no registered counter"

    def test_every_cost_breakdown_field_is_registered(self):
        for spec_field in dataclasses.fields(CostBreakdown):
            assert f"cost.{spec_field.name}" in REGISTRY

    def test_hdfs_failover_counter_is_registered(self):
        assert "hdfs.failover_reads" in REGISTRY

    def test_registry_layers(self):
        assert set(REGISTRY.layers()) == {
            "cost", "engine", "faults", "governor", "hdfs", "serve",
        }

    def test_every_server_stats_field_is_registered(self):
        from repro.obs.metrics import _SERVE_FIELDS
        from repro.serve import ServerStats

        declared = {f.name for f in dataclasses.fields(ServerStats)}
        assert declared == set(_SERVE_FIELDS), (
            "ServerStats fields and the serve metrics layer drifted apart"
        )
        for name in _SERVE_FIELDS:
            assert f"serve.{name}" in REGISTRY

    def test_specs_are_documented(self):
        for spec in REGISTRY:
            assert spec.description.strip(), f"{spec.name} lacks a description"
            assert spec.unit, f"{spec.name} lacks a unit"


class TestSnapshots:
    def test_execution_snapshot_keys_resolve_in_registry(self):
        snapshot = snapshot_execution_metrics(ExecutionMetrics())
        for name in snapshot:
            assert name in REGISTRY, f"snapshot emits unregistered {name}"

    def test_execution_snapshot_reflects_counter_values(self):
        metrics = ExecutionMetrics(bytes_scanned=10, task_retries=2, spills=3)
        snapshot = snapshot_execution_metrics(metrics)
        assert snapshot["engine.bytes_scanned"] == 10
        assert snapshot["faults.task_retries"] == 2
        assert snapshot["governor.spills"] == 3

    def test_cost_snapshot_keys_resolve_in_registry(self):
        cost = CostBreakdown(
            scan_sec=1.0,
            cpu_sec=2.0,
            shuffle_sec=3.0,
            broadcast_sec=4.0,
            overhead_sec=5.0,
            recovery_sec=6.0,
        )
        snapshot = snapshot_cost(cost)
        assert set(snapshot) <= {spec.name for spec in REGISTRY}
        assert snapshot["cost.recovery_sec"] == 6.0

    def test_hdfs_snapshot_keys_resolve_in_registry(self):
        class FakeHdfs:
            failover_reads = 4

        snapshot = snapshot_hdfs(FakeHdfs())
        assert snapshot == {"hdfs.failover_reads": 4}

    def test_config_is_importable(self):
        # Counter semantics reference the cluster config (data_scale etc.);
        # keep the public surface stable.
        assert ClusterConfig().num_workers > 0


class TestDocsSync:
    def test_metrics_md_matches_registry_byte_for_byte(self):
        path = REPO_ROOT / "docs" / "METRICS.md"
        assert path.exists(), "docs/METRICS.md missing; regenerate with " \
            "`prost-repro metrics --markdown > docs/METRICS.md`"
        assert path.read_text(encoding="utf-8") == REGISTRY.markdown(), (
            "docs/METRICS.md drifted from the registry; regenerate with "
            "`prost-repro metrics --markdown > docs/METRICS.md`"
        )

    def test_cli_markdown_output_is_byte_identical(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "metrics", "--markdown"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout == REGISTRY.markdown()
